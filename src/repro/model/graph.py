"""Foreign-key dependency graph and the weak-acyclicity test.

The paper (section 3.1) guarantees chase termination by requiring the foreign
keys to form a *weakly acyclic* set, with the dependency graph built as:

* a node for each attribute ``R.A`` of the schema;
* an ordinary edge ``R1.A1 → R2.A2`` for each foreign key ``R1.A1 ⊆ R2.A2``;
* a *special* edge ``R1.A1 ⇒ R2.A'`` for each such foreign key and every
  attribute ``A'`` of ``R2`` other than ``A2`` (the existentially generated
  positions).

The set is weakly acyclic iff no cycle goes through a special edge.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import WeakAcyclicityError
from .schema import Schema

Node = tuple[str, str]  # (relation, attribute)


@dataclass
class DependencyGraph:
    """The FK dependency graph of a schema, with ordinary and special edges."""

    nodes: list[Node] = field(default_factory=list)
    ordinary_edges: list[tuple[Node, Node]] = field(default_factory=list)
    special_edges: list[tuple[Node, Node]] = field(default_factory=list)

    def all_edges(self) -> list[tuple[Node, Node, bool]]:
        """All edges as ``(src, dst, is_special)`` triples."""
        edges = [(a, b, False) for a, b in self.ordinary_edges]
        edges.extend((a, b, True) for a, b in self.special_edges)
        return edges


def build_dependency_graph(schema: Schema) -> DependencyGraph:
    """Build the paper's dependency graph for ``schema``'s foreign keys."""
    graph = DependencyGraph()
    for rel in schema:
        for attr in rel.attribute_names:
            graph.nodes.append((rel.name, attr))
    for fk in schema.foreign_keys:
        target = schema.relation(fk.referenced)
        key_attr = target.key[0]
        src: Node = (fk.relation, fk.attribute)
        graph.ordinary_edges.append((src, (fk.referenced, key_attr)))
        for other in target.attribute_names:
            if other != key_attr:
                graph.special_edges.append((src, (fk.referenced, other)))
    return graph


def is_weakly_acyclic(schema: Schema) -> bool:
    """True iff the schema's foreign keys form a weakly acyclic set."""
    return find_special_cycle(schema) is None


def find_special_cycle(schema: Schema) -> list[Node] | None:
    """Return a cycle through a special edge if one exists, else ``None``.

    A cycle goes "through a special edge" iff some special edge ``u ⇒ v`` has
    ``v`` able to reach ``u``.  We compute reachability over all edges and test
    each special edge.  The returned witness is ``[u, v, ..., u]``.
    """
    graph = build_dependency_graph(schema)
    adjacency: dict[Node, list[Node]] = {n: [] for n in graph.nodes}
    for a, b, _special in graph.all_edges():
        adjacency[a].append(b)

    def path(start: Node, goal: Node) -> list[Node] | None:
        """A path from start to goal (DFS), or None."""
        stack: list[tuple[Node, list[Node]]] = [(start, [start])]
        seen = {start}
        while stack:
            node, trail = stack.pop()
            if node == goal:
                return trail
            for nxt in adjacency.get(node, ()):
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append((nxt, trail + [nxt]))
        return None

    for u, v in graph.special_edges:
        back = path(v, u)
        if back is not None:
            return [u] + back
    return None


def check_weak_acyclicity(schema: Schema) -> None:
    """Raise :class:`WeakAcyclicityError` if the schema is not weakly acyclic.

    The error carries the structured ``SCH010`` diagnostic (with the special
    cycle printed and the span of a foreign key starting it, when known).
    """
    cycle = find_special_cycle(schema)
    if cycle is not None:
        from ..analysis.diagnostics import diagnostic

        pretty = " -> ".join(f"{r}.{a}" for r, a in cycle)
        message = (
            f"schema {schema.name!r}: foreign keys are not weakly acyclic "
            f"(cycle through a special edge: {pretty})"
        )
        fk = schema.foreign_key_from(*cycle[0])
        raise WeakAcyclicityError(
            message,
            diagnostic=diagnostic(
                "SCH010",
                message,
                span=getattr(fk, "span", None),
                subject=schema.name,
            ),
        )


def chase_order(schema: Schema) -> list[str]:
    """Relations ordered so FK targets come before FK sources where possible.

    Used to pick deterministic processing orders; falls back to declaration
    order inside strongly connected components (which weak acyclicity keeps
    harmless for termination).
    """
    order: list[str] = []
    visited: set[str] = set()

    def visit(name: str, stack: set[str]) -> None:
        if name in visited or name in stack:
            return
        stack.add(name)
        for fk in schema.foreign_keys_of(name):
            visit(fk.referenced, stack)
        stack.discard(name)
        visited.add(name)
        order.append(name)

    for rel in schema.relation_names():
        visit(rel, set())
    return order
