"""Database instances: relations as sets of tuples over a schema.

Tuples are plain Python tuples whose components are constants, :data:`NULL`,
or :class:`LabeledNull` invented values.  A :class:`Relation` preserves
insertion order (useful for readable output) while enforcing set semantics,
and caches hash indexes on attribute positions for efficient joins.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Mapping

from ..errors import InstanceError
from .schema import RelationSchema, Schema
from .values import format_value

Row = tuple[Any, ...]


class Relation:
    """A set of tuples over a :class:`RelationSchema`, insertion-ordered."""

    def __init__(self, schema: RelationSchema, rows: Iterable[Row] = ()):
        self.schema = schema
        self._rows: dict[Row, None] = {}
        self._indexes: dict[tuple[int, ...], dict[Row, list[Row]]] = {}
        for row in rows:
            self.add(row)

    def add(self, row: Iterable[Any]) -> bool:
        """Add a tuple; returns True iff it was not already present."""
        row = tuple(row)
        if len(row) != self.schema.arity:
            raise InstanceError(
                f"relation {self.schema.name}: tuple {row!r} has arity {len(row)}, "
                f"expected {self.schema.arity}"
            )
        if row in self._rows:
            return False
        self._rows[row] = None
        self._indexes.clear()
        return True

    def add_named(self, **values: Any) -> bool:
        """Add a tuple given by attribute name, e.g. ``r.add_named(car='c85', model='Ford')``."""
        row = []
        for attr in self.schema.attribute_names:
            if attr not in values:
                raise InstanceError(f"relation {self.schema.name}: missing value for {attr!r}")
            row.append(values.pop(attr))
        if values:
            raise InstanceError(
                f"relation {self.schema.name}: unknown attributes {sorted(values)}"
            )
        return self.add(row)

    def discard(self, row: Iterable[Any]) -> bool:
        """Remove a tuple if present; returns True iff it was removed."""
        row = tuple(row)
        if row in self._rows:
            del self._rows[row]
            self._indexes.clear()
            return True
        return False

    @property
    def rows(self) -> tuple[Row, ...]:
        return tuple(self._rows)

    def project(self, attributes: Iterable[str]) -> set[Row]:
        """The set of projections of all rows onto the named attributes."""
        positions = [self.schema.position(a) for a in attributes]
        return {tuple(row[p] for p in positions) for row in self._rows}

    def index_on(self, positions: tuple[int, ...]) -> Mapping[Row, list[Row]]:
        """A hash index from projected key to matching rows (cached)."""
        index = self._indexes.get(positions)
        if index is None:
            index = {}
            for row in self._rows:
                key = tuple(row[p] for p in positions)
                index.setdefault(key, []).append(row)
            self._indexes[positions] = index
        return index

    def value(self, row: Row, attribute: str) -> Any:
        return row[self.schema.position(attribute)]

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def __contains__(self, row: object) -> bool:
        return row in self._rows

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Relation):
            return NotImplemented
        return self.schema == other.schema and set(self._rows) == set(other._rows)

    def __hash__(self) -> int:  # pragma: no cover - relations are mutable
        raise TypeError("Relation is not hashable")

    def __repr__(self) -> str:
        return f"Relation<{self.schema.name}, {len(self)} rows>"

    def to_text(self) -> str:
        """Render the relation as a small aligned table, paper-style."""
        header = list(self.schema.attribute_names)
        body = [[format_value(v) for v in row] for row in self._rows]
        widths = [len(h) for h in header]
        for line in body:
            for i, cell in enumerate(line):
                widths[i] = max(widths[i], len(cell))
        lines = [self.schema.name]
        lines.append("  " + "  ".join(h.ljust(widths[i]) for i, h in enumerate(header)))
        for line in body:
            lines.append("  " + "  ".join(c.ljust(widths[i]) for i, c in enumerate(line)))
        return "\n".join(lines)


class Instance:
    """A database instance over a :class:`Schema`: one relation per schema relation."""

    def __init__(self, schema: Schema):
        self.schema = schema
        self.relations: dict[str, Relation] = {
            r.name: Relation(r) for r in schema
        }

    def relation(self, name: str) -> Relation:
        try:
            return self.relations[name]
        except KeyError:
            raise InstanceError(f"instance has no relation {name!r}") from None

    def add(self, relation: str, row: Iterable[Any]) -> bool:
        return self.relation(relation).add(row)

    def add_all(self, relation: str, rows: Iterable[Iterable[Any]]) -> None:
        target = self.relation(relation)
        for row in rows:
            target.add(row)

    def total_size(self) -> int:
        """Total number of tuples over all relations."""
        return sum(len(r) for r in self.relations.values())

    def copy(self) -> "Instance":
        clone = Instance(self.schema)
        for name, relation in self.relations.items():
            clone.add_all(name, relation.rows)
        return clone

    def facts(self) -> Iterator[tuple[str, Row]]:
        """All tuples as (relation name, row) pairs."""
        for name, relation in self.relations.items():
            for row in relation:
                yield name, row

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Instance):
            return NotImplemented
        if self.schema.relation_names() != other.schema.relation_names():
            return False
        return all(
            set(self.relations[n].rows) == set(other.relations[n].rows)
            for n in self.relations
        )

    def __repr__(self) -> str:
        sizes = ", ".join(f"{n}:{len(r)}" for n, r in self.relations.items())
        return f"Instance<{self.schema.name}: {sizes}>"

    def to_text(self) -> str:
        """Render every non-empty relation as a table."""
        parts = [r.to_text() for r in self.relations.values() if len(r) > 0]
        return "\n\n".join(parts) if parts else "(empty instance)"


def instance_from_dict(schema: Schema, data: Mapping[str, Iterable[Iterable[Any]]]) -> Instance:
    """Build an instance from ``{relation: [rows]}``, validating relation names."""
    instance = Instance(schema)
    for name, rows in data.items():
        instance.add_all(name, rows)
    return instance
