"""Integrity-constraint checking for instances.

Validates an :class:`Instance` against the three constraint kinds of the
paper: mandatory (non-nullable) attributes, primary keys, and foreign keys.
Violations are reported as structured objects so the benchmarks can count,
e.g., how many key violations the *basic* algorithms produce on Figure 2.

A null foreign-key value satisfies the referential constraint (the paper's
CARS2 target stores cars without an owner as ``person = null``).  Invented
values (labeled nulls) participate in keys and foreign keys like constants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from .instance import Instance, Row
from .values import is_null


@dataclass(frozen=True)
class NullViolation:
    """A null (or missing) value in a mandatory attribute."""

    relation: str
    attribute: str
    row: Row

    def __str__(self) -> str:
        return f"{self.relation}.{self.attribute} is mandatory but null in {self.row!r}"


@dataclass(frozen=True)
class KeyViolation:
    """Two or more tuples of a relation sharing the same key value."""

    relation: str
    key_value: tuple[Any, ...]
    rows: tuple[Row, ...]

    def __str__(self) -> str:
        return (
            f"{self.relation}: key {self.key_value!r} is shared by "
            f"{len(self.rows)} tuples"
        )


@dataclass(frozen=True)
class ForeignKeyViolation:
    """A non-null foreign-key value with no matching referenced key."""

    relation: str
    attribute: str
    referenced: str
    value: Any
    row: Row

    def __str__(self) -> str:
        return (
            f"{self.relation}.{self.attribute} = {self.value!r} has no match "
            f"in {self.referenced}"
        )


@dataclass
class ValidationReport:
    """All constraint violations found in an instance.

    ``schema`` is the schema the instance was validated against; it lets
    :meth:`diagnostics` attach the DSL declaration spans of the violated
    constraints, so runtime violations render with locations (and export to
    SARIF) like static lint findings.
    """

    null_violations: list[NullViolation]
    key_violations: list[KeyViolation]
    foreign_key_violations: list[ForeignKeyViolation]
    schema: Any = None

    @property
    def ok(self) -> bool:
        return not (
            self.null_violations or self.key_violations or self.foreign_key_violations
        )

    def all_violations(self) -> list[object]:
        return [
            *self.null_violations,
            *self.key_violations,
            *self.foreign_key_violations,
        ]

    def __len__(self) -> int:
        return len(self.all_violations())

    def diagnostics(self) -> list:
        """The violations as structured ``INS*`` diagnostics.

        ``INS001`` per null violation, ``INS002`` per key violation,
        ``INS003`` per foreign-key violation (see :mod:`repro.analysis`).
        When :attr:`schema` is set, each diagnostic carries the declaration
        span of the violated constraint — the attribute for ``INS001``, the
        relation for ``INS002``, the foreign key for ``INS003``.
        """
        from ..analysis.diagnostics import diagnostic

        found = [
            diagnostic(
                "INS001",
                str(item),
                subject=f"{item.relation}.{item.attribute}",
                span=self._attribute_span(item.relation, item.attribute),
            )
            for item in self.null_violations
        ]
        found.extend(
            diagnostic(
                "INS002",
                str(item),
                subject=item.relation,
                span=self._relation_span(item.relation),
            )
            for item in self.key_violations
        )
        found.extend(
            diagnostic(
                "INS003",
                str(item),
                subject=f"{item.relation}.{item.attribute}",
                span=self._foreign_key_span(item.relation, item.attribute),
            )
            for item in self.foreign_key_violations
        )
        return found

    def _relation_span(self, relation: str):
        if self.schema is None or relation not in self.schema:
            return None
        return self.schema.relation(relation).span

    def _attribute_span(self, relation: str, attribute: str):
        if self.schema is None or relation not in self.schema:
            return None
        rel_schema = self.schema.relation(relation)
        if not rel_schema.has_attribute(attribute):
            return None
        return rel_schema.attribute(attribute).span or rel_schema.span

    def _foreign_key_span(self, relation: str, attribute: str):
        if self.schema is None:
            return None
        for fk in self.schema.foreign_keys:
            if fk.relation == relation and fk.attribute == attribute:
                return fk.span
        return self._attribute_span(relation, attribute)

    def summary(self) -> str:
        if self.ok:
            return "instance satisfies all constraints"
        return (
            f"{len(self.null_violations)} null violation(s), "
            f"{len(self.key_violations)} key violation(s), "
            f"{len(self.foreign_key_violations)} foreign-key violation(s)"
        )


def validate_instance(instance: Instance) -> ValidationReport:
    """Check ``instance`` against every constraint of its schema."""
    schema = instance.schema
    nulls: list[NullViolation] = []
    keys: list[KeyViolation] = []
    fks: list[ForeignKeyViolation] = []

    for rel_schema in schema:
        relation = instance.relation(rel_schema.name)

        for attr in rel_schema.attributes:
            if attr.nullable:
                continue
            position = rel_schema.position(attr.name)
            for row in relation:
                if is_null(row[position]):
                    nulls.append(NullViolation(rel_schema.name, attr.name, row))

        key_positions = rel_schema.key_positions()
        groups: dict[tuple[Any, ...], list[Row]] = {}
        for row in relation:
            groups.setdefault(tuple(row[p] for p in key_positions), []).append(row)
        for key_value, rows in groups.items():
            if len(rows) > 1:
                keys.append(KeyViolation(rel_schema.name, key_value, tuple(rows)))

    for fk in schema.foreign_keys:
        source = instance.relation(fk.relation)
        target_schema = schema.relation(fk.referenced)
        referenced_keys = instance.relation(fk.referenced).project([target_schema.key[0]])
        position = schema.relation(fk.relation).position(fk.attribute)
        for row in source:
            value = row[position]
            if is_null(value):
                continue
            if (value,) not in referenced_keys:
                fks.append(
                    ForeignKeyViolation(fk.relation, fk.attribute, fk.referenced, value, row)
                )

    return ValidationReport(nulls, keys, fks, schema=schema)
