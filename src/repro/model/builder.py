"""A small fluent builder for schemas.

Keeps scenario definitions compact and readable::

    schema = (
        SchemaBuilder("CARS3")
        .relation("P3", "person", "name", "email", key="person")
        .relation("C3", "car", "model", key="car")
        .relation("O3", "car", "person", key="car")
        .foreign_key("O3", "car", "C3")
        .foreign_key("O3", "person", "P3")
        .build()
    )

An attribute name ending in ``?`` declares the attribute nullable, matching
the paper's ``null`` superscript: ``"person?"`` is a nullable ``person``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from ..errors import SchemaError
from .schema import Attribute, ForeignKey, RelationSchema, Schema

if TYPE_CHECKING:  # pragma: no cover
    from ..analysis.diagnostics import SourceSpan


def parse_attribute(spec: str | Attribute) -> Attribute:
    """Parse ``"name"`` / ``"name?"`` (nullable) into an :class:`Attribute`."""
    if isinstance(spec, Attribute):
        return spec
    if spec.endswith("?"):
        return Attribute(spec[:-1], nullable=True)
    return Attribute(spec)


class SchemaBuilder:
    """Accumulates relations and foreign keys, then builds a validated Schema."""

    def __init__(self, name: str = "schema"):
        self._name = name
        self._relations: list[RelationSchema] = []
        self._foreign_keys: list[ForeignKey] = []

    def relation(
        self,
        name: str,
        *attributes: str | Attribute,
        key: str | Iterable[str] | None = None,
        span: "SourceSpan | None" = None,
    ) -> "SchemaBuilder":
        """Add a relation; the first attribute is the key unless ``key`` is given."""
        parsed = [parse_attribute(a) for a in attributes]
        self._relations.append(RelationSchema(name, parsed, key=key, span=span))
        return self

    def foreign_key(
        self,
        relation: str,
        attribute: str,
        referenced: str,
        span: "SourceSpan | None" = None,
    ) -> "SchemaBuilder":
        """Declare ``relation.attribute`` as a foreign key into ``referenced``."""
        self._foreign_keys.append(ForeignKey(relation, attribute, referenced, span=span))
        return self

    def build_relations(self) -> dict[str, RelationSchema]:
        """The accumulated relations by name, without any schema-level checks.

        Used by the lenient parse mode to probe pending foreign keys against
        the declared relations before committing them to the schema.
        """
        return {r.name: r for r in self._relations}

    def build(self, validate: bool = True) -> Schema:
        """Build the schema; by default also checks weak acyclicity."""
        if not self._relations:
            raise SchemaError(f"schema {self._name!r} has no relations")
        schema = Schema(self._relations, self._foreign_keys, name=self._name)
        if validate:
            schema.validate()
        return schema
