"""Value domain for instances: constants, SQL-style null, and labeled nulls.

The paper distinguishes two kinds of incomplete values in target instances
(section 5):

* the *null value* (unlabeled null, "no-information" semantics) — represented
  here by the singleton :data:`NULL`;
* *invented values* (labeled nulls, "unknown" semantics) — placeholders
  produced by Skolem functors, represented by :class:`LabeledNull`.

Ordinary values are plain Python strings/ints; the paper assumes a single
simple type (strings) but nothing here depends on that.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any


class NullValue:
    """The unlabeled null.  A singleton; compares equal only to itself."""

    _instance: "NullValue | None" = None

    def __new__(cls) -> "NullValue":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "null"

    def __reduce__(self):
        return (NullValue, ())


#: The unique unlabeled null value used in instances.
NULL = NullValue()


@dataclass(frozen=True)
class LabeledNull:
    """An invented value (labeled null), e.g. the result of ``f_p(c85)``.

    ``functor`` names the Skolem function that produced the value and ``args``
    are the (ground) argument values, which may themselves be labeled nulls.
    Two labeled nulls are equal iff functor and arguments are equal, which
    gives Skolem terms their intended "same inputs, same invented value"
    semantics.
    """

    functor: str
    args: tuple[Any, ...]

    def __repr__(self) -> str:
        inner = ",".join(format_value(a) for a in self.args)
        return f"{self.functor}({inner})"


def is_null(value: Any) -> bool:
    """True iff ``value`` is the unlabeled null."""
    return value is NULL or isinstance(value, NullValue)


def is_labeled_null(value: Any) -> bool:
    """True iff ``value`` is an invented value (labeled null)."""
    return isinstance(value, LabeledNull)


def is_constant(value: Any) -> bool:
    """True iff ``value`` is an ordinary (non-null, non-invented) value."""
    return not is_null(value) and not is_labeled_null(value)


def format_value(value: Any) -> str:
    """Render a value the way the paper prints it (``null``, ``f(x)``, ``c85``)."""
    if is_null(value):
        return "null"
    return str(value)
