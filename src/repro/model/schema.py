"""Relational schemas with primary keys, foreign keys and nullable attributes.

This follows the paper's data model (section 3.1):

* a relation schema is a named, ordered set of attributes;
* every relation has a primary key made of non-nullable attributes; a key is
  *simple* if it has one attribute, *composite* otherwise;
* attributes are mandatory by default and may be declared nullable;
* a foreign key is a single attribute referencing the *simple* key of another
  relation (the paper restricts foreign keys to reference simple keys only);
* the set of foreign keys must be weakly acyclic (checked in
  :mod:`repro.model.graph`, enforced by :meth:`Schema.validate`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Iterator

from ..errors import SchemaError

if TYPE_CHECKING:  # pragma: no cover
    from ..analysis.diagnostics import SourceSpan


@dataclass(frozen=True)
class Attribute:
    """A named attribute of a relation, possibly nullable.

    ``span`` records where the attribute was declared when it came from the
    text DSL; it is excluded from equality and hashing, so two schemas that
    differ only in source locations still compare equal.
    """

    name: str
    nullable: bool = False
    span: "SourceSpan | None" = field(default=None, compare=False, repr=False)

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise SchemaError(f"attribute name must be a non-empty string, got {self.name!r}")

    def __repr__(self) -> str:
        return f"{self.name}^null" if self.nullable else self.name


@dataclass(frozen=True)
class ForeignKey:
    """A referential constraint ``relation.attribute ⊆ referenced.key``.

    Only single-attribute foreign keys referencing simple keys are supported,
    per the paper's restriction ("we consider foreign keys used to reference
    simple keys only").  ``span`` carries the DSL declaration site (excluded
    from equality/hashing).
    """

    relation: str
    attribute: str
    referenced: str
    span: "SourceSpan | None" = field(default=None, compare=False, repr=False)

    def __repr__(self) -> str:
        return f"{self.relation}.{self.attribute} -> {self.referenced}"


class RelationSchema:
    """A relation schema: name, ordered attributes, and a primary key."""

    def __init__(
        self,
        name: str,
        attributes: Iterable[Attribute | str],
        key: Iterable[str] | str | None = None,
        span: "SourceSpan | None" = None,
    ):
        if not name:
            raise SchemaError("relation name must be non-empty")
        self.name = name
        self.span = span  # DSL declaration site; not part of equality
        attrs: list[Attribute] = []
        for a in attributes:
            attrs.append(Attribute(a) if isinstance(a, str) else a)
        if not attrs:
            raise SchemaError(f"relation {name} must have at least one attribute")
        names = [a.name for a in attrs]
        if len(set(names)) != len(names):
            raise SchemaError(f"relation {name} has duplicate attribute names: {names}")
        self.attributes: tuple[Attribute, ...] = tuple(attrs)
        self._by_name = {a.name: a for a in attrs}
        if key is None:
            key_names: tuple[str, ...] = (attrs[0].name,)
        elif isinstance(key, str):
            key_names = (key,)
        else:
            key_names = tuple(key)
        if not key_names:
            raise SchemaError(f"relation {name} must have a non-empty key")
        for k in key_names:
            if k not in self._by_name:
                raise SchemaError(f"relation {name}: key attribute {k!r} is not an attribute")
            if self._by_name[k].nullable:
                raise SchemaError(f"relation {name}: key attribute {k!r} cannot be nullable")
        self.key: tuple[str, ...] = key_names

    # -- queries ---------------------------------------------------------

    @property
    def attribute_names(self) -> tuple[str, ...]:
        return tuple(a.name for a in self.attributes)

    @property
    def arity(self) -> int:
        return len(self.attributes)

    @property
    def has_simple_key(self) -> bool:
        """True iff the primary key consists of a single attribute."""
        return len(self.key) == 1

    def has_attribute(self, name: str) -> bool:
        return name in self._by_name

    def attribute(self, name: str) -> Attribute:
        try:
            return self._by_name[name]
        except KeyError:
            raise SchemaError(f"relation {self.name} has no attribute {name!r}") from None

    def position(self, name: str) -> int:
        """0-based position of attribute ``name`` in the relation."""
        for i, a in enumerate(self.attributes):
            if a.name == name:
                return i
        raise SchemaError(f"relation {self.name} has no attribute {name!r}")

    def is_key_attribute(self, name: str) -> bool:
        self.attribute(name)
        return name in self.key

    def is_nullable(self, name: str) -> bool:
        return self.attribute(name).nullable

    def key_positions(self) -> tuple[int, ...]:
        return tuple(self.position(k) for k in self.key)

    def nonkey_attribute_names(self) -> tuple[str, ...]:
        return tuple(a.name for a in self.attributes if a.name not in self.key)

    def __repr__(self) -> str:
        parts = []
        for a in self.attributes:
            text = a.name
            if a.name in self.key:
                text = f"{text}*"
            if a.nullable:
                text = f"{text}^null"
            parts.append(text)
        return f"{self.name}({', '.join(parts)})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RelationSchema):
            return NotImplemented
        return (
            self.name == other.name
            and self.attributes == other.attributes
            and self.key == other.key
        )

    def __hash__(self) -> int:
        return hash((self.name, self.attributes, self.key))


class Schema:
    """A relational schema: a set of relation schemas plus integrity constraints.

    The constraints carried here are the three kinds the paper considers:
    primary keys (on :class:`RelationSchema`), nullable attributes (on
    :class:`Attribute`), and foreign keys (:class:`ForeignKey` objects).
    """

    def __init__(
        self,
        relations: Iterable[RelationSchema],
        foreign_keys: Iterable[ForeignKey] = (),
        name: str = "schema",
    ):
        self.name = name
        self.relations: dict[str, RelationSchema] = {}
        for r in relations:
            if r.name in self.relations:
                raise SchemaError(f"duplicate relation name {r.name!r}")
            self.relations[r.name] = r
        self.foreign_keys: tuple[ForeignKey, ...] = tuple(foreign_keys)
        self._fk_index: dict[tuple[str, str], ForeignKey] = {}
        for fk in self.foreign_keys:
            self._check_foreign_key(fk)
            pos = (fk.relation, fk.attribute)
            if pos in self._fk_index:
                from ..analysis.schema_lint import duplicate_foreign_key_diagnostic

                raise SchemaError(
                    f"duplicate foreign key on {fk.relation}.{fk.attribute}",
                    diagnostic=duplicate_foreign_key_diagnostic(fk),
                )
            self._fk_index[pos] = fk

    def _check_foreign_key(self, fk: ForeignKey) -> None:
        """Raise on the first structural defect, carrying its diagnostic.

        Routed through :func:`repro.analysis.schema_lint.foreign_key_diagnostics`
        so constructor raises and the linter agree on codes and messages.
        """
        from ..analysis.schema_lint import foreign_key_diagnostics

        found = foreign_key_diagnostics(self.relations, fk)
        if found:
            raise SchemaError(found[0].message, diagnostic=found[0])

    # -- queries ---------------------------------------------------------

    def relation(self, name: str) -> RelationSchema:
        try:
            return self.relations[name]
        except KeyError:
            raise SchemaError(f"schema {self.name!r} has no relation {name!r}") from None

    def relation_names(self) -> tuple[str, ...]:
        return tuple(self.relations)

    def foreign_key_from(self, relation: str, attribute: str) -> ForeignKey | None:
        """The foreign key defined on ``relation.attribute``, if any."""
        return self._fk_index.get((relation, attribute))

    def has_foreign_key_from(self, relation: str, attribute: str) -> bool:
        return (relation, attribute) in self._fk_index

    def foreign_keys_of(self, relation: str) -> tuple[ForeignKey, ...]:
        """All foreign keys originating in ``relation``, in attribute order."""
        rel = self.relation(relation)
        found = []
        for attr in rel.attribute_names:
            fk = self._fk_index.get((relation, attr))
            if fk is not None:
                found.append(fk)
        return tuple(found)

    def foreign_keys_into(self, relation: str) -> tuple[ForeignKey, ...]:
        """All foreign keys referencing ``relation``."""
        return tuple(fk for fk in self.foreign_keys if fk.referenced == relation)

    def validate(self) -> None:
        """Check structural well-formedness plus weak acyclicity of the FKs."""
        from .graph import check_weak_acyclicity

        check_weak_acyclicity(self)

    def __iter__(self) -> Iterator[RelationSchema]:
        return iter(self.relations.values())

    def __contains__(self, name: str) -> bool:
        return name in self.relations

    def __len__(self) -> int:
        return len(self.relations)

    def __repr__(self) -> str:
        rels = "; ".join(repr(r) for r in self.relations.values())
        return f"Schema<{self.name}: {rels}>"
