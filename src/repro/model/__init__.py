"""Relational model substrate: schemas, constraints, instances, validation."""

from .builder import SchemaBuilder, parse_attribute
from .diff import (
    InstanceDiff,
    RelationDiff,
    canonicalize_invented,
    diff_instances,
    diff_up_to_invented,
)
from .graph import (
    DependencyGraph,
    build_dependency_graph,
    chase_order,
    check_weak_acyclicity,
    find_special_cycle,
    is_weakly_acyclic,
)
from .instance import Instance, Relation, Row, instance_from_dict
from .schema import Attribute, ForeignKey, RelationSchema, Schema
from .validation import (
    ForeignKeyViolation,
    KeyViolation,
    NullViolation,
    ValidationReport,
    validate_instance,
)
from .values import (
    NULL,
    LabeledNull,
    NullValue,
    format_value,
    is_constant,
    is_labeled_null,
    is_null,
)

__all__ = [
    "InstanceDiff",
    "NULL",
    "RelationDiff",
    "canonicalize_invented",
    "diff_instances",
    "diff_up_to_invented",
    "Attribute",
    "DependencyGraph",
    "ForeignKey",
    "ForeignKeyViolation",
    "Instance",
    "KeyViolation",
    "LabeledNull",
    "NullValue",
    "NullViolation",
    "Relation",
    "RelationSchema",
    "Row",
    "Schema",
    "SchemaBuilder",
    "ValidationReport",
    "build_dependency_graph",
    "chase_order",
    "check_weak_acyclicity",
    "find_special_cycle",
    "format_value",
    "instance_from_dict",
    "is_constant",
    "is_labeled_null",
    "is_null",
    "is_weakly_acyclic",
    "parse_attribute",
    "validate_instance",
]
