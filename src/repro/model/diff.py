"""Instance diffing: what changed between two instances of one schema.

Useful when comparing transformation outputs (engine vs SQLite, basic vs
novel, output vs expected figure) — the tests and CLI use it to show *which*
tuples differ instead of a bare inequality.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import InstanceError
from .instance import Instance, Row
from .values import LabeledNull, format_value, is_labeled_null, is_null


@dataclass
class RelationDiff:
    """Tuples only in the left / only in the right instance, per relation."""

    relation: str
    only_left: list[Row] = field(default_factory=list)
    only_right: list[Row] = field(default_factory=list)

    @property
    def empty(self) -> bool:
        return not self.only_left and not self.only_right


@dataclass
class InstanceDiff:
    """A full diff between two instances over the same schema."""

    relations: dict[str, RelationDiff] = field(default_factory=dict)

    @property
    def empty(self) -> bool:
        return all(d.empty for d in self.relations.values())

    def changed_relations(self) -> list[str]:
        return [name for name, d in self.relations.items() if not d.empty]

    def __len__(self) -> int:
        return sum(
            len(d.only_left) + len(d.only_right) for d in self.relations.values()
        )

    def to_text(self) -> str:
        """A unified-diff-style rendering (``-`` left only, ``+`` right only)."""
        if self.empty:
            return "(instances are equal)"
        lines: list[str] = []
        for name in self.changed_relations():
            diff = self.relations[name]
            lines.append(f"@@ {name} @@")
            for row in diff.only_left:
                lines.append("- (" + ", ".join(format_value(v) for v in row) + ")")
            for row in diff.only_right:
                lines.append("+ (" + ", ".join(format_value(v) for v in row) + ")")
        return "\n".join(lines)


def _invented_masked_key(row: Row) -> tuple[str, ...]:
    """A sort key that is stable under renaming of invented values."""
    return tuple(
        "\x00?" if is_labeled_null(v) else ("\x00null" if is_null(v) else repr(v))
        for v in row
    )


def canonicalize_invented(instance: Instance) -> Instance:
    """Rename invented values to ``inv(0), inv(1), ...`` by first appearance.

    The traversal is deterministic and renaming-insensitive (relations in
    schema order, rows sorted with invented values masked), so two instances
    that differ only by a bijective renaming of their labeled nulls
    canonicalize to equal instances.
    """
    mapping: dict[LabeledNull, LabeledNull] = {}

    def rename(value):
        if is_labeled_null(value):
            canonical = mapping.get(value)
            if canonical is None:
                canonical = LabeledNull("inv", (len(mapping),))
                mapping[value] = canonical
            return canonical
        return value

    clone = Instance(instance.schema)
    for name in instance.schema.relation_names():
        rows = sorted(instance.relation(name).rows, key=_invented_masked_key)
        for row in rows:
            clone.add(name, tuple(rename(v) for v in row))
    return clone


def diff_up_to_invented(left: Instance, right: Instance) -> InstanceDiff:
    """Diff two instances up to a bijective renaming of invented values.

    Exactly equal instances short-circuit to the (empty) plain diff; the
    differential-testing harness uses this so engines only have to agree on
    target tuples *up to LabeledNull isomorphism*, not on how Skolem
    functors spell their invented values.
    """
    plain = diff_instances(left, right)
    if plain.empty:
        return plain
    return diff_instances(
        canonicalize_invented(left), canonicalize_invented(right)
    )


def diff_instances(left: Instance, right: Instance) -> InstanceDiff:
    """Compute the per-relation symmetric difference of two instances."""
    if left.schema.relation_names() != right.schema.relation_names():
        raise InstanceError(
            "cannot diff instances over different schemas: "
            f"{left.schema.name!r} vs {right.schema.name!r}"
        )
    result = InstanceDiff()
    for name in left.schema.relation_names():
        left_rows = set(left.relation(name).rows)
        right_rows = set(right.relation(name).rows)
        result.relations[name] = RelationDiff(
            relation=name,
            only_left=sorted(left_rows - right_rows, key=repr),
            only_right=sorted(right_rows - left_rows, key=repr),
        )
    return result
