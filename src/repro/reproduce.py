"""One-command reproduction of every figure and example of the paper.

:func:`reproduce_all` re-runs each experiment of the per-experiment index
(DESIGN.md) against its expected outcome and reports a verdict:

* ``exact``  — the paper's instance/program/mapping reproduced verbatim;
* ``shape``  — reproduced up to invented-value naming (the expected
  structural assertions hold);
* ``FAIL``   — the expectation does not hold (never expected).

Exposed on the command line as ``python -m repro reproduce``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from .core.pipeline import MappingSystem
from .core.schema_mapping import BASIC
from .exchange.instance_chase import canonical_universal_solution
from .exchange.metrics import measure_instance
from .model.values import is_labeled_null
from .scenarios import appendix_a, cars
from .scenarios.appendix_c import example_c4_problem


@dataclass
class ExperimentResult:
    """The verdict for one paper experiment."""

    experiment: str
    claim: str
    verdict: str  # "exact" | "shape" | "FAIL"
    detail: str = ""


def _result(experiment: str, claim: str, ok: bool, exact: bool, detail: str = ""):
    verdict = "FAIL" if not ok else ("exact" if exact else "shape")
    return ExperimentResult(experiment, claim, verdict, detail)


def _figure_2_and_3() -> list[ExperimentResult]:
    problem = cars.figure1_problem()
    source = cars.cars3_source_instance()
    novel = MappingSystem(problem).transform(source)
    basic = MappingSystem(problem, algorithm=BASIC).transform(source)
    basic_metrics = measure_instance(basic)
    results = [
        _result(
            "Figure 3",
            "novel transformation: null owner, no duplicates",
            novel == cars.figure3_expected_target(),
            exact=True,
        ),
        _result(
            "Figure 2",
            "basic transformation: 7 tuples, 1 key violation, 2 useless",
            basic_metrics.total_tuples == 7
            and basic_metrics.key_violations == 1
            and basic_metrics.useless_tuples == 2,
            exact=False,
            detail=f"{basic_metrics.as_row()}",
        ),
    ]
    canonical = canonical_universal_solution(
        MappingSystem(problem).schema_mapping,
        source,
        null_for_nullable_existentials=True,
    )
    results.append(
        _result(
            "Section 8",
            "novel output equals the canonical universal solution (null policy)",
            novel == canonical,
            exact=True,
        )
    )
    return results


def _figures_5_and_6() -> list[ExperimentResult]:
    source = cars.cars3_source_instance()
    plain = MappingSystem(cars.figure4_problem()).transform(source)
    invented = [r for r in plain.relation("C1") if is_labeled_null(r[0])]
    ra = MappingSystem(cars.figure4_ra_problem()).transform(source)
    return [
        _result(
            "Figure 5",
            "plain correspondences invent one car per person",
            len(invented) == 2 and len(plain.relation("C1")) == 4,
            exact=False,
        ),
        _result(
            "Figure 6",
            "r-a correspondence gives the natural instance",
            ra == cars.figure6_expected_target(),
            exact=True,
        ),
    ]


def _figure_8() -> list[ExperimentResult]:
    output = MappingSystem(cars.figure7_problem(), algorithm=BASIC).transform(
        cars.figure8_source_instance()
    )
    return [
        _result(
            "Figure 8",
            "baseline CARS2a -> CARS3 transformation",
            output == cars.figure8_expected_target(),
            exact=True,
        )
    ]


def _figure_9() -> list[ExperimentResult]:
    output = MappingSystem(cars.figure9_problem()).transform(
        cars.cars3_source_instance()
    )
    rows = {row[0]: row for row in output.relation("C1a")}
    ok = (
        len(rows) == 2
        and rows["c85"][2] == "MJ"
        and is_labeled_null(rows["c86"][2])
    )
    return [
        _result(
            "Figure 9 / Ex 4.1",
            "mandatory names invented only for ownerless cars",
            ok,
            exact=False,
        )
    ]


def _figure_11() -> list[ExperimentResult]:
    output = MappingSystem(cars.figure10_problem()).transform(
        cars.cars3_source_instance()
    )
    owners = {row[0]: row[2] for row in output.relation("C2a")}
    ok = (
        len(output.relation("P2a")) == 3
        and owners["c85"] == "p22"
        and is_labeled_null(owners["c86"])
    )
    return [
        _result(
            "Figure 11 / Ex C.1",
            "one invented owner, c85 keeps p22, key satisfied",
            ok,
            exact=False,
        )
    ]


def _figures_13_and_15() -> list[ExperimentResult]:
    c2 = MappingSystem(cars.figure12_problem()).transform(
        cars.figure13_source_instance()
    )
    c3 = MappingSystem(cars.figure14_problem()).transform(
        cars.figure15_source_instance()
    )
    return [
        _result(
            "Figure 13 / Ex C.2",
            "owner and driver names fused per car (names, see EXPERIMENTS.md)",
            c2 == cars.figure13_expected_target(),
            exact=True,
        ),
        _result(
            "Figure 15 / Ex C.3",
            "nullable source attribute handled by premise conditions",
            c3 == cars.figure15_expected_target(),
            exact=True,
        ),
    ]


def _example_5_2_and_6_8() -> list[ExperimentResult]:
    system = MappingSystem(cars.figure1_problem())
    mapping_count = len(system.schema_mapping)
    heads = sorted(r.head_relation for r in system.transformation.rules)
    return [
        _result(
            "Example 5.2",
            "three logical mappings survive pruning",
            mapping_count == 3,
            exact=True,
        ),
        _result(
            "Example 6.8",
            "final program: P2, C2 x2, OCtmp",
            heads == ["C2", "C2", "OCtmp", "P2"],
            exact=True,
        ),
    ]


def _example_c4() -> list[ExperimentResult]:
    system = MappingSystem(example_c4_problem())
    t_rules = system.transformation.rules_for("T")
    fused = system.query_result().resolution.fused
    return [
        _result(
            "Example C.4",
            "3 rewritten + 4 fused mappings over the three-way conflict",
            len(t_rules) == 7 and len(fused) == 4,
            exact=True,
        )
    ]


def _appendix_a() -> list[ExperimentResult]:
    results = []
    for name in sorted(appendix_a.ALL_EXAMPLES):
        problem = appendix_a.ALL_EXAMPLES[name]()
        count = len(MappingSystem(problem).schema_mapping)
        expected = appendix_a.EXPECTED_MAPPINGS[name]
        results.append(
            _result(
                f"Example {name}",
                f"{expected} desired logical mapping(s)",
                count == expected,
                exact=True,
                detail=f"got {count}",
            )
        )
    return results


def reproduce_all() -> list[ExperimentResult]:
    """Re-run every indexed experiment and collect the verdicts."""
    results: list[ExperimentResult] = []
    for section in (
        _figure_2_and_3,
        _figures_5_and_6,
        _figure_8,
        _figure_9,
        _figure_11,
        _figures_13_and_15,
        _example_5_2_and_6_8,
        _example_c4,
        _appendix_a,
    ):
        results.extend(section())
    return results


def render_reproduction_table(results: list[ExperimentResult]) -> str:
    """An aligned verdict table for terminal output."""
    name_width = max(len(r.experiment) for r in results)
    verdict_width = max(len(r.verdict) for r in results)
    lines = []
    for result in results:
        lines.append(
            f"{result.experiment.ljust(name_width)}  "
            f"[{result.verdict.ljust(verdict_width)}]  {result.claim}"
        )
    failed = sum(1 for r in results if r.verdict == "FAIL")
    exact = sum(1 for r in results if r.verdict == "exact")
    shape = sum(1 for r in results if r.verdict == "shape")
    lines.append("")
    lines.append(
        f"{len(results)} experiments: {exact} exact, {shape} shape, {failed} failed"
    )
    return "\n".join(lines)
