"""Paper-style rendering of mappings, programs and schemas.

The generators name Skolem functors ``f_<attribute>@<label>`` to keep them
globally distinct; the renderer abbreviates them back to the paper's look
(``fP``, ``fN``, ...) while keeping distinct functions distinguishable with
numeric suffixes.
"""

from __future__ import annotations

import re

from ..logic.mappings import LogicalMapping, SchemaMapping, UnitaryMapping
from ..logic.terms import Term, Variable
from ..datalog.program import DatalogProgram, Rule
from ..model.schema import Schema

_FUNCTOR = re.compile(r"f_([A-Za-z_]\w*?)@([\w.+-]+)")


class FunctorAbbreviator:
    """Consistently shortens ``f_person@m2`` to ``fP`` (with suffixes on clashes)."""

    def __init__(self) -> None:
        self._names: dict[str, str] = {}
        self._used: dict[str, int] = {}

    def shorten(self, text: str) -> str:
        def replace(match: re.Match) -> str:
            full = match.group(0)
            if full not in self._names:
                base = "f" + match.group(1)[0].upper()
                count = self._used.get(base, 0)
                self._used[base] = count + 1
                self._names[full] = base if count == 0 else f"{base}{count + 1}"
            return self._names[full]

        return _FUNCTOR.sub(replace, text)


def render_schema(schema: Schema) -> str:
    """Render a schema as DSL ``relation`` lines."""
    lines = []
    for relation in schema:
        specs = []
        for attribute in relation.attributes:
            spec = attribute.name + ("?" if attribute.nullable else "")
            if attribute.name in relation.key:
                spec += " key"
            fk = schema.foreign_key_from(relation.name, attribute.name)
            if fk is not None:
                spec += f" -> {fk.referenced}"
            specs.append(spec)
        lines.append(f"relation {relation.name} ({', '.join(specs)})")
    return "\n".join(lines)


def render_problem(problem) -> str:
    """Render a whole mapping problem as DSL text.

    The output round-trips: :func:`repro.dsl.parser.parse_problem` on the
    rendered text reproduces the schemas and correspondences (source spans
    aside).  This is how generated scenarios are persisted for replay.
    """
    lines = [f"source schema {problem.source_schema.name}:"]
    lines += [f"  {line}" for line in render_schema(problem.source_schema).splitlines()]
    lines.append("")
    lines.append(f"target schema {problem.target_schema.name}:")
    lines += [f"  {line}" for line in render_schema(problem.target_schema).splitlines()]
    lines.append("")
    lines.append("correspondences:")
    for item in problem.correspondences:
        text = f"  {item.source!r} -> {item.target!r}"
        if item.filters:
            text += " where " + " and ".join(repr(f) for f in item.filters)
        if item.label:
            text += f" [{item.label}]"
        lines.append(text)
    return "\n".join(lines) + "\n"


def _render_value(value: object) -> str:
    from ..model.values import is_null

    if is_null(value):
        return "null"
    text = str(value)
    if "#" in text or " " in text:
        return f"'{text}'"
    return text


def render_instance(instance) -> str:
    """Render an instance as ``Relation: (v1, v2), ...`` DSL lines.

    The counterpart of :func:`repro.dsl.parser.parse_instance` — unlike
    ``Instance.to_text()``, which renders human-oriented tables, this output
    parses back.  Empty relations are omitted, matching the parser's view
    that unmentioned relations are empty.
    """
    lines = []
    for relation in instance.schema:
        rows = instance.relation(relation.name).rows
        if not rows:
            continue
        rendered = ", ".join(
            "(" + ", ".join(_render_value(v) for v in row) + ")" for row in rows
        )
        lines.append(f"{relation.name}: {rendered}")
    return "\n".join(lines) + ("\n" if lines else "")


def _display_renaming(mapping: LogicalMapping) -> dict[Variable, Term]:
    """Disambiguate variables that share a display name.

    Premise and consequent tableaux are built with independent variable
    namespaces, so an existential consequent variable may carry the same
    display name as a premise variable (both named from the attribute's
    initial).  The paper distinguishes existentials with primes (``n'``,
    ``e'``); this builds the same renaming for display.
    """
    used: dict[str, Variable] = {}
    renaming: dict[Variable, Term] = {}

    def visit(variable: Variable) -> None:
        if variable in renaming:
            return
        name = variable.name
        owner = used.get(name)
        if owner is None:
            used[name] = variable
            return
        if owner is variable:
            return
        candidate = name + "'"
        while candidate in used and used[candidate] is not variable:
            candidate += "'"
        used[candidate] = variable
        renaming[variable] = Variable(candidate)

    for atom in mapping.premise.atoms:
        for variable in atom.variables():
            visit(variable)
    for atom in mapping.consequent:
        for variable in atom.variables():
            visit(variable)
    return renaming


def _displayed(mapping: LogicalMapping) -> LogicalMapping:
    renaming = _display_renaming(mapping)
    if not renaming:
        return mapping
    return LogicalMapping(
        premise=mapping.premise.substitute(renaming),
        consequent=tuple(a.substitute(renaming) for a in mapping.consequent),
        label=mapping.label,
    )


def render_logical_mapping(
    mapping: LogicalMapping | UnitaryMapping,
    abbreviator: FunctorAbbreviator | None = None,
) -> str:
    """Render one tgd as ``premise -> consequent`` with paper-like functors."""
    if isinstance(mapping, LogicalMapping):
        mapping = _displayed(mapping)
    text = repr(mapping)
    if abbreviator is not None:
        text = abbreviator.shorten(text)
    return text


def render_schema_mapping(mapping: SchemaMapping, shorten: bool = True) -> str:
    """Render a schema mapping, one tgd per line, right-aligned arrows."""
    abbreviator = FunctorAbbreviator() if shorten else None
    lines = []
    for logical in mapping:
        displayed = _displayed(logical)
        premise = repr(displayed.premise)
        consequent = ", ".join(repr(a) for a in displayed.consequent)
        text = f"{premise}  ->  {consequent}"
        if abbreviator is not None:
            text = abbreviator.shorten(text)
        lines.append(text)
    width = max((line.index("->") for line in lines), default=0)
    aligned = []
    for line in lines:
        left, _, right = line.partition("->")
        aligned.append(f"{left.rstrip().rjust(width)} -> {right.strip()}")
    return "\n".join(aligned)


def render_rule(rule: Rule, abbreviator: FunctorAbbreviator | None = None) -> str:
    parts = [repr(a) for a in rule.body]
    parts.extend(f"{v!r}=null" for v in rule.null_vars)
    parts.extend(f"{v!r}!=null" for v in rule.nonnull_vars)
    parts.extend(repr(e) for e in rule.equalities)
    parts.extend(f"not {a!r}" for a in rule.negated)
    text = f"{rule.head!r} <- {', '.join(parts)}"
    if abbreviator is not None:
        text = abbreviator.shorten(text)
    return text


def render_program(program: DatalogProgram, shorten: bool = True) -> str:
    """Render a Datalog program, one rule per line, aligned on ``<-``."""
    abbreviator = FunctorAbbreviator() if shorten else None
    lines = [render_rule(rule, abbreviator) for rule in program.rules]
    if not lines:
        return "(empty program)"
    width = max(line.index("<-") for line in lines)
    aligned = []
    for line in lines:
        left, _, right = line.partition("<-")
        aligned.append(f"{left.rstrip().rjust(width)} <- {right.strip()}")
    return "\n".join(aligned)
