"""A small line-oriented DSL for schemas, correspondences and instances.

Mapping problems can be written as plain text, close to how the paper draws
them::

    source schema CARS3:
      relation P3 (person key, name, email)
      relation C3 (car key, model)
      relation O3 (car key -> C3, person -> P3)

    target schema CARS2:
      relation P2 (person key, name, email)
      relation C2 (car key, model, person? -> P2)

    correspondences:
      P3.person -> P2.person [p1]
      P3.name -> P2.name [p2]

Attribute syntax: ``name`` (mandatory), ``name?`` (nullable), ``name key``
(part of the primary key; the first attribute is the key by default), and an
optional ``-> Relation`` foreign-key suffix.  Correspondence sources and
targets are referenced attributes: ``O3.person > P3.name -> C1.name [cn']``.

Instances use one line per relation, ``null`` for the null value::

    P3: (p21, John, j@...), (p22, MJ, mj@...)
    O3: (c85, p22)

``#`` starts a comment — except inside a single-quoted value, where it is
literal (``P3.name = '#1'`` in a filter, or ``(x, '#tag')`` in an instance).

Every parsed object (relations, attributes, foreign keys, correspondences)
carries a :class:`~repro.analysis.diagnostics.SourceSpan` naming the line it
was declared on, so static-analysis findings point back into the input.
:func:`parse_problem` raises on the first defect; :func:`parse_problem_lenient`
drops defective foreign keys and correspondences instead and reports them as
diagnostics — the form the ``repro lint`` CLI uses, so one broken file can
surface several findings at once.
"""

from __future__ import annotations

import re

from ..analysis.diagnostics import Diagnostic, SourceSpan, diagnostic
from ..analysis.schema_lint import (
    duplicate_foreign_key_diagnostic,
    foreign_key_diagnostics,
    weak_acyclicity_diagnostic,
)
from ..core.pipeline import MappingProblem
from ..errors import ParseError, ReproError
from ..model.builder import SchemaBuilder
from ..model.instance import Instance
from ..model.schema import Attribute, Schema
from ..model.values import NULL

_SCHEMA_HEADER = re.compile(r"^(source|target)\s+schema\s+([A-Za-z_][\w-]*)\s*:\s*$")
_RELATION_LINE = re.compile(r"^relation\s+([A-Za-z_]\w*)\s*\((.*)\)\s*$")
_CORRESPONDENCES_HEADER = re.compile(r"^correspondences\s*:\s*$")
_LABEL = re.compile(r"\[([^\]]*)\]\s*$")


def _strip_comment(line: str) -> str:
    """Drop a ``#`` comment — unless the ``#`` sits inside a quoted value."""
    if "#" not in line:
        return line.strip()
    in_quote = False
    for position, char in enumerate(line):
        if char == "'":
            in_quote = not in_quote
        elif char == "#" and not in_quote:
            return line[:position].strip()
    return line.strip()


def _parse_attribute_spec(spec: str, line_number: int, span: SourceSpan | None = None):
    """Parse one attribute spec; returns (Attribute, is_key, fk_target | None)."""
    spec = spec.strip()
    fk_target = None
    if "->" in spec:
        spec, _, fk_target = (p.strip() for p in spec.partition("->"))
        if not fk_target:
            raise ParseError(f"empty foreign-key target in {spec!r}", line_number)
    tokens = spec.split()
    if not tokens:
        raise ParseError("empty attribute specification", line_number)
    name = tokens[0]
    is_key = False
    for token in tokens[1:]:
        if token == "key":
            is_key = True
        else:
            raise ParseError(f"unknown attribute modifier {token!r}", line_number)
    nullable = name.endswith("?")
    if nullable:
        name = name[:-1]
    if not name.isidentifier():
        raise ParseError(f"bad attribute name {name!r}", line_number)
    return Attribute(name, nullable=nullable, span=span), is_key, fk_target


class _SchemaSection:
    def __init__(self, name: str, file: str | None = None):
        self.builder = SchemaBuilder(name)
        self.file = file
        self.pending_fks: list[tuple[str, str, str, SourceSpan]] = []
        self.saw_relation = False

    def add_relation(self, name: str, body: str, line_number: int) -> None:
        span = SourceSpan(line_number, file=self.file)
        attributes: list[Attribute] = []
        keys: list[str] = []
        for spec in body.split(","):
            attribute, is_key, fk_target = _parse_attribute_spec(
                spec, line_number, span=span
            )
            attributes.append(attribute)
            if is_key:
                keys.append(attribute.name)
            if fk_target:
                self.pending_fks.append((name, attribute.name, fk_target, span))
        self.builder.relation(name, *attributes, key=keys or None, span=span)
        self.saw_relation = True

    def build(self) -> Schema:
        for relation, attribute, target, span in self.pending_fks:
            self.builder.foreign_key(relation, attribute, target, span=span)
        return self.builder.build()

    def build_lenient(self) -> tuple[Schema, list[Diagnostic]]:
        """Build, dropping defective foreign keys and reporting them.

        Structural foreign-key defects (``SCH001``/``SCH002``/``SCH003``)
        become diagnostics and the offending declarations are dropped, so a
        schema object always comes back; a weak-acyclicity violation
        (``SCH010``) is reported but leaves the foreign keys in place.
        """
        from ..model.schema import ForeignKey

        probe = self.builder.build_relations()
        found: list[Diagnostic] = []
        seen: set[tuple[str, str]] = set()
        for relation, attribute, target, span in self.pending_fks:
            fk = ForeignKey(relation, attribute, target, span=span)
            problems = foreign_key_diagnostics(probe, fk)
            if not problems and (relation, attribute) in seen:
                problems = [duplicate_foreign_key_diagnostic(fk)]
            if problems:
                found.extend(problems)
                continue
            seen.add((relation, attribute))
            self.builder.foreign_key(relation, attribute, target, span=span)
        schema = self.builder.build(validate=False)
        cycle = weak_acyclicity_diagnostic(schema)
        if cycle is not None:
            found.append(cycle)
        return schema, found


def _parse_structure(
    text: str, file: str | None = None
) -> tuple[dict[str, _SchemaSection], list[tuple[str, str, str, str, int]]]:
    """The shared parse loop: schema sections plus raw correspondence tuples."""
    sections: dict[str, _SchemaSection] = {}
    correspondences: list[tuple[str, str, str, str, int]] = []
    current: _SchemaSection | None = None
    in_correspondences = False

    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = _strip_comment(raw)
        if not line:
            continue
        header = _SCHEMA_HEADER.match(line)
        if header:
            role, schema_name = header.groups()
            if role in sections:
                raise ParseError(f"duplicate {role} schema", line_number)
            current = _SchemaSection(schema_name, file=file)
            sections[role] = current
            in_correspondences = False
            continue
        if _CORRESPONDENCES_HEADER.match(line):
            in_correspondences = True
            current = None
            continue
        relation = _RELATION_LINE.match(line)
        if relation:
            if current is None:
                raise ParseError("relation outside a schema section", line_number)
            current.add_relation(relation.group(1), relation.group(2), line_number)
            continue
        if in_correspondences:
            label = ""
            match = _LABEL.search(line)
            if match:
                label = match.group(1).strip()
                line = line[: match.start()].strip()
            where = ""
            if " where " in line:
                line, _, where = line.partition(" where ")
                line = line.strip()
                where = where.strip()
            if "->" not in line:
                raise ParseError(f"expected 'source -> target', got {line!r}", line_number)
            source, _, target = line.rpartition("->")
            correspondences.append(
                (source.strip(), target.strip(), label, where, line_number)
            )
            continue
        raise ParseError(f"unrecognized line {line!r}", line_number)

    if "source" not in sections or "target" not in sections:
        raise ParseError("a problem needs both a source and a target schema")
    return sections, correspondences


def parse_problem(
    text: str, name: str = "parsed-problem", file: str | None = None
) -> MappingProblem:
    """Parse a full mapping problem (two schemas plus correspondences).

    ``file`` only labels the source spans attached to the parsed objects; the
    text itself is always taken from ``text``.
    """
    sections, correspondences = _parse_structure(text, file=file)
    problem = MappingProblem(
        sections["source"].build(), sections["target"].build(), name=name
    )
    for source, target, label, where, line_number in correspondences:
        try:
            problem.add_correspondence(
                source,
                target,
                label,
                where=where,
                span=SourceSpan(line_number, file=file),
            )
        except Exception as error:
            raise ParseError(str(error), line_number) from error
    return problem


def parse_problem_lenient(
    text: str, name: str = "parsed-problem", file: str | None = None
) -> tuple[MappingProblem, list[Diagnostic]]:
    """Parse a problem, reporting semantic defects instead of raising.

    Syntax errors still raise :class:`~repro.errors.ParseError` (there is no
    structure to recover); defective foreign keys and correspondences are
    dropped with diagnostics (``SCH00x`` / ``SCH010`` / ``MAP004``), so the
    linter can report every finding in a broken file at once.
    """
    sections, correspondences = _parse_structure(text, file=file)
    source_schema, found = sections["source"].build_lenient()
    target_schema, more = sections["target"].build_lenient()
    found.extend(more)
    problem = MappingProblem(source_schema, target_schema, name=name)
    for source, target, label, where, line_number in correspondences:
        span = SourceSpan(line_number, file=file)
        try:
            problem.add_correspondence(source, target, label, where=where, span=span)
        except ReproError as error:
            found.append(
                diagnostic(
                    "MAP004",
                    f"invalid correspondence {source!r} -> {target!r}: {error}",
                    span=span,
                    subject=f"{source} -> {target}",
                )
            )
    return problem, found


def parse_schema(text: str, name: str = "parsed-schema", file: str | None = None) -> Schema:
    """Parse a bare list of ``relation ...`` lines into a schema."""
    section = _SchemaSection(name, file=file)
    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = _strip_comment(raw)
        if not line:
            continue
        relation = _RELATION_LINE.match(line)
        if not relation:
            raise ParseError(f"expected a relation line, got {line!r}", line_number)
        section.add_relation(relation.group(1), relation.group(2), line_number)
    if not section.saw_relation:
        raise ParseError("no relations found")
    return section.build()


_TUPLE = re.compile(r"\(([^()]*)\)")


def parse_instance(text: str, schema: Schema) -> Instance:
    """Parse ``Relation: (v1, v2), (v3, v4)`` lines into an instance.

    Values may be single-quoted to protect special characters (``'#tag'``,
    ``'with, comma'`` is *not* supported — commas still split); surrounding
    quotes are stripped.
    """
    instance = Instance(schema)
    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = _strip_comment(raw)
        if not line:
            continue
        if ":" not in line:
            raise ParseError(f"expected 'Relation: tuples', got {line!r}", line_number)
        relation, _, body = line.partition(":")
        relation = relation.strip()
        if relation not in schema:
            raise ParseError(f"unknown relation {relation!r}", line_number)
        for match in _TUPLE.finditer(body):
            values = []
            for piece in match.group(1).split(","):
                piece = piece.strip()
                if piece.startswith("'") and piece.endswith("'") and len(piece) >= 2:
                    piece = piece[1:-1]
                    values.append(piece)
                else:
                    values.append(NULL if piece == "null" else piece)
            instance.add(relation, tuple(values))
    return instance
