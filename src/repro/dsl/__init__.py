"""Text DSL (schemas, correspondences, instances) and paper-style rendering."""

from .jsonio import (
    dump_problem,
    instance_from_dict_json,
    instance_to_dict,
    load_problem,
    problem_from_dict,
    problem_to_dict,
    program_from_dict,
    program_to_dict,
    schema_from_dict,
    schema_to_dict,
)
from .parser import parse_instance, parse_problem, parse_schema
from .report import explain, render_conflict_report, render_generation_report
from .renderer import (
    FunctorAbbreviator,
    render_instance,
    render_logical_mapping,
    render_problem,
    render_program,
    render_rule,
    render_schema,
    render_schema_mapping,
)

__all__ = [
    "FunctorAbbreviator",
    "dump_problem",
    "explain",
    "instance_from_dict_json",
    "instance_to_dict",
    "load_problem",
    "problem_from_dict",
    "problem_to_dict",
    "program_from_dict",
    "program_to_dict",
    "render_conflict_report",
    "render_generation_report",
    "schema_from_dict",
    "schema_to_dict",
    "parse_instance",
    "parse_problem",
    "parse_schema",
    "render_instance",
    "render_logical_mapping",
    "render_problem",
    "render_program",
    "render_rule",
    "render_schema",
    "render_schema_mapping",
]
