"""JSON serialization of schemas, problems, instances and programs.

A stable interchange format so mapping problems can be versioned, diffed and
exchanged with other tools.  Schemas, correspondences and instances
round-trip exactly; Datalog programs are exported structurally (terms as
tagged objects) for consumption by external executors.
"""

from __future__ import annotations

import json
from typing import Any

from ..core.correspondences import Correspondence, Filter, ReferencedAttribute
from ..core.pipeline import MappingProblem
from ..datalog.program import DatalogProgram, Rule
from ..errors import ParseError
from ..logic.terms import NULL_TERM, Constant, NullTerm, SkolemTerm, Term, Variable
from ..model.instance import Instance
from ..model.schema import Attribute, ForeignKey, RelationSchema, Schema
from ..model.values import NULL, LabeledNull, is_labeled_null, is_null


# ---------------------------------------------------------------------------
# Schemas
# ---------------------------------------------------------------------------

def schema_to_dict(schema: Schema) -> dict:
    return {
        "name": schema.name,
        "relations": [
            {
                "name": relation.name,
                "attributes": [
                    {"name": a.name, "nullable": a.nullable}
                    for a in relation.attributes
                ],
                "key": list(relation.key),
            }
            for relation in schema
        ],
        "foreign_keys": [
            {
                "relation": fk.relation,
                "attribute": fk.attribute,
                "referenced": fk.referenced,
            }
            for fk in schema.foreign_keys
        ],
    }


def schema_from_dict(data: dict) -> Schema:
    try:
        relations = [
            RelationSchema(
                relation["name"],
                [Attribute(a["name"], a.get("nullable", False)) for a in relation["attributes"]],
                key=relation.get("key"),
            )
            for relation in data["relations"]
        ]
        foreign_keys = [
            ForeignKey(fk["relation"], fk["attribute"], fk["referenced"])
            for fk in data.get("foreign_keys", ())
        ]
        return Schema(relations, foreign_keys, name=data.get("name", "schema"))
    except (KeyError, TypeError) as error:
        raise ParseError(f"malformed schema JSON: {error}") from error


# ---------------------------------------------------------------------------
# Problems
# ---------------------------------------------------------------------------

def _reference_to_list(reference: ReferencedAttribute) -> list[list[str]]:
    return [[relation, attribute] for relation, attribute in reference.steps]


def _reference_from_list(data: list) -> ReferencedAttribute:
    return ReferencedAttribute(tuple((step[0], step[1]) for step in data))


def problem_to_dict(problem: MappingProblem) -> dict:
    return {
        "name": problem.name,
        "source": schema_to_dict(problem.source_schema),
        "target": schema_to_dict(problem.target_schema),
        "correspondences": [
            {
                "source": _reference_to_list(c.source),
                "target": _reference_to_list(c.target),
                "label": c.label,
                "filters": [
                    {
                        "relation": f.relation,
                        "attribute": f.attribute,
                        "operator": f.operator,
                        "value": f.value,
                    }
                    for f in c.filters
                ],
            }
            for c in problem.correspondences
        ],
    }


def problem_from_dict(data: dict) -> MappingProblem:
    try:
        problem = MappingProblem(
            schema_from_dict(data["source"]),
            schema_from_dict(data["target"]),
            name=data.get("name", "mapping-problem"),
        )
        for entry in data.get("correspondences", ()):
            correspondence = Correspondence(
                _reference_from_list(entry["source"]),
                _reference_from_list(entry["target"]),
                entry.get("label", ""),
                tuple(
                    Filter(
                        f["relation"], f["attribute"], f["operator"], f["value"]
                    )
                    for f in entry.get("filters", ())
                ),
            )
            correspondence.validate(problem.source_schema, problem.target_schema)
            problem.correspondences.append(correspondence)
        return problem
    except (KeyError, TypeError, IndexError) as error:
        raise ParseError(f"malformed problem JSON: {error}") from error


# ---------------------------------------------------------------------------
# Instances (values: null -> None, invented -> tagged object)
# ---------------------------------------------------------------------------

def _value_to_json(value: Any) -> Any:
    if is_null(value):
        return None
    if is_labeled_null(value):
        return {
            "invented": value.functor,
            "args": [_value_to_json(a) for a in value.args],
        }
    return value


def _value_from_json(data: Any) -> Any:
    if data is None:
        return NULL
    if isinstance(data, dict) and "invented" in data:
        return LabeledNull(
            data["invented"], tuple(_value_from_json(a) for a in data.get("args", ()))
        )
    return data


def instance_to_dict(instance: Instance) -> dict:
    return {
        name: [[_value_to_json(v) for v in row] for row in relation.rows]
        for name, relation in instance.relations.items()
    }


def instance_from_dict_json(schema: Schema, data: dict) -> Instance:
    instance = Instance(schema)
    for name, rows in data.items():
        for row in rows:
            instance.add(name, tuple(_value_from_json(v) for v in row))
    return instance


# ---------------------------------------------------------------------------
# Programs (terms as tagged objects)
# ---------------------------------------------------------------------------

def _term_to_json(term: Term) -> Any:
    if isinstance(term, Variable):
        return {"var": term.name, "id": term.index}
    if isinstance(term, NullTerm):
        return {"null": True}
    if isinstance(term, Constant):
        return {"const": term.value}
    if isinstance(term, SkolemTerm):
        return {"skolem": term.functor, "args": [_term_to_json(a) for a in term.args]}
    raise TypeError(f"cannot serialize term {term!r}")  # pragma: no cover


def _term_from_json(data: Any, variables: dict[int, Variable]) -> Term:
    if isinstance(data, dict):
        if "var" in data:
            index = data.get("id", len(variables))
            if index not in variables:
                variables[index] = Variable(data["var"])
            return variables[index]
        if data.get("null"):
            return NULL_TERM
        if "const" in data:
            return Constant(data["const"])
        if "skolem" in data:
            return SkolemTerm(
                data["skolem"],
                [_term_from_json(a, variables) for a in data.get("args", ())],
            )
    raise ParseError(f"malformed term JSON: {data!r}")


def program_from_dict(
    data: dict, source_schema: Schema | None = None, target_schema: Schema | None = None
) -> DatalogProgram:
    """Rebuild a program exported by :func:`program_to_dict`.

    Variable identity is reconstructed per rule from the exported ids, so the
    program evaluates identically to the original.
    """
    from ..logic.atoms import Disequality, Equality, RelationalAtom

    try:
        rules = []
        for entry in data["rules"]:
            variables: dict[int, Variable] = {}

            def atom(payload):
                return RelationalAtom(
                    payload["relation"],
                    [_term_from_json(t, variables) for t in payload["terms"]],
                )

            rules.append(
                Rule(
                    head=atom(entry["head"]),
                    body=tuple(atom(a) for a in entry["body"]),
                    negated=tuple(atom(a) for a in entry.get("negated", ())),
                    null_vars=tuple(
                        _term_from_json(v, variables)
                        for v in entry.get("null_vars", ())
                    ),
                    nonnull_vars=tuple(
                        _term_from_json(v, variables)
                        for v in entry.get("nonnull_vars", ())
                    ),
                    equalities=tuple(
                        Equality(
                            _term_from_json(e["left"], variables),
                            _term_from_json(e["right"], variables),
                        )
                        for e in entry.get("equalities", ())
                    ),
                    disequalities=tuple(
                        Disequality(
                            _term_from_json(d["left"], variables),
                            _term_from_json(d["right"], variables),
                        )
                        for d in entry.get("disequalities", ())
                    ),
                )
            )
        return DatalogProgram(
            rules=rules,
            source_schema=source_schema,
            target_schema=target_schema,
            intermediates=dict(data.get("intermediates", {})),
        )
    except (KeyError, TypeError) as error:
        raise ParseError(f"malformed program JSON: {error}") from error


def program_to_dict(program: DatalogProgram) -> dict:
    def atom(a):
        return {"relation": a.relation, "terms": [_term_to_json(t) for t in a.terms]}

    return {
        "intermediates": dict(program.intermediates),
        "rules": [
            {
                "head": atom(rule.head),
                "body": [atom(a) for a in rule.body],
                "negated": [atom(a) for a in rule.negated],
                "null_vars": [_term_to_json(v) for v in rule.null_vars],
                "nonnull_vars": [_term_to_json(v) for v in rule.nonnull_vars],
                "equalities": [
                    {"left": _term_to_json(e.left), "right": _term_to_json(e.right)}
                    for e in rule.equalities
                ],
                "disequalities": [
                    {"left": _term_to_json(d.left), "right": _term_to_json(d.right)}
                    for d in rule.disequalities
                ],
            }
            for rule in program.rules
        ],
    }


# ---------------------------------------------------------------------------
# File-level helpers
# ---------------------------------------------------------------------------

def dump_problem(problem: MappingProblem, path: str) -> None:
    with open(path, "w") as handle:
        json.dump(problem_to_dict(problem), handle, indent=2)


def load_problem(path: str) -> MappingProblem:
    with open(path) as handle:
        return problem_from_dict(json.load(handle))
