"""Human-readable generation reports: what the algorithms decided and why.

Renders the artifacts of a pipeline run the way the paper walks through its
examples — logical relations, candidate logical mappings with their prune
reasons (Example 5.2's S1–S7 listing), the identified key conflicts, and the
final program — so a user can audit why a mapping was (not) generated.
"""

from __future__ import annotations

from ..core.pipeline import MappingSystem
from ..core.schema_mapping import SchemaMappingReport
from .renderer import render_program, render_schema_mapping


def render_generation_report(report: SchemaMappingReport) -> str:
    """The schema-mapping stage: tableaux, candidates, prune log."""
    lines: list[str] = []
    lines.append("source logical relations:")
    for tableau in report.source_tableaux:
        lines.append(f"  {tableau!r}")
    lines.append("target logical relations:")
    for tableau in report.target_tableaux:
        lines.append(f"  {tableau!r}")
    lines.append(f"skeletons examined: {report.skeleton_count}")
    lines.append("candidate logical mappings:")
    kept_names = {candidate.name for candidate in report.kept}
    for candidate in report.candidates:
        marker = "kept  " if candidate.name in kept_names else "pruned"
        lines.append(f"  [{marker}] {candidate!r}")
    if report.pruned:
        lines.append("prune log:")
        for record in report.pruned:
            via = f" (by {record.by})" if record.by else ""
            lines.append(f"  {record.name}: {record.rule}{via} — {record.reason}")
    return "\n".join(lines)


def render_conflict_report(system: MappingSystem) -> str:
    """The query-generation stage: conflicts, resolution, fusion."""
    result = system.query_result()
    lines: list[str] = []
    lines.append(f"unitary logical mappings: {len(result.unitary)}")
    for mapping in result.unitary:
        lines.append(f"  {mapping.name}: {mapping!r}")
    resolution = result.resolution
    if resolution is None:
        lines.append("(basic algorithm: no key management)")
        return "\n".join(lines)
    if resolution.conflicts:
        lines.append("key conflicts:")
        for conflict in resolution.conflicts:
            hardness = "hard" if conflict.is_hard else "soft"
            lines.append(f"  [{hardness}] {conflict}")
    else:
        lines.append("no key conflicts")
    if resolution.fused:
        lines.append("fused mappings added:")
        for mapping in resolution.fused:
            lines.append(f"  {mapping!r}")
    if resolution.functor_renaming:
        lines.append("unified Skolem functors:")
        for old, new in sorted(resolution.functor_renaming.items()):
            lines.append(f"  {old} -> {new}")
    return "\n".join(lines)


def explain(system: MappingSystem) -> str:
    """A full audit trail for one MappingSystem run.

    When the system was created with ``trace=True`` the trail ends with a
    telemetry section: the merged run report of both pipeline stages (span
    tree with timings plus counter totals, see ``docs/OBSERVABILITY.md``).
    """
    sections = [
        f"=== problem: {system.problem.name} (algorithm: {system.algorithm}) ===",
        "",
        "--- schema mapping generation ---",
        render_generation_report(system.schema_mapping_result().report),
        "",
        "--- schema mapping ---",
        render_schema_mapping(system.schema_mapping),
        "",
        "--- query generation ---",
        render_conflict_report(system),
        "",
        "--- transformation ---",
        render_program(system.transformation),
    ]
    if system.tracer is not None:
        sections.extend(["", "--- telemetry ---", system.stats().render()])
    return "\n".join(sections)
