"""Results-matrix eval runner over generated scenarios.

Sweeps a seed range through the full verification stack and records one
row per scenario: engine agreement (reference vs batch vs SQLite, DuckDB
when importable), certify verdict counts, sqlcheck statement verdicts,
cost boundedness, flow health, per-stage timings — and the seed, which with
the generator config fully reproduces the scenario (``repro eval --seed N
--replay``).

Rows separate *deterministic* content from timings: everything outside a
row's ``timings`` block is a pure function of ``(seed, config)``, asserted
across processes by the determinism suite.  The matrix serializes to JSON
(one document, with :func:`repro.bench.diff.stamp_metadata` provenance) and
JSONL (one row per line, for streaming consumers), and :meth:`EvalMatrix.gate`
is the CI predicate: on weakly acyclic scenarios the stack must produce
full engine agreement and no definite negative verdicts anywhere.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Iterable

from ..analysis.analyzer import quick_lint
from ..analysis.certify.report import PROVED, REFUTED
from ..core.pipeline import MappingSystem
from ..errors import ReproError
from ..model.diff import diff_up_to_invented
from ..model.validation import validate_instance
from ..scenarios.generator import DEFAULT, GeneratorConfig, generate_scenario
from ..sqlgen.executor import duckdb_available, run_on_duckdb, run_on_sqlite
from .diff import stamp_metadata

#: engine legs a row can carry; DuckDB joins when importable
ENGINE_LEGS = ("reference", "batch", "sqlite", "duckdb")


@dataclass
class EvalRow:
    """One scenario's trip through the verification stack."""

    scenario: str
    seed: int
    #: "ok" | "lint-error" (expected for cyclic configs) | "error"
    status: str
    error: str | None = None
    lint_codes: list[str] = field(default_factory=list)
    source_rows: int | None = None
    target_rows: int | None = None
    #: True iff every executed engine matched the reference output
    agreement: bool | None = None
    #: engine legs that diverged from the reference
    disagreements: list[str] = field(default_factory=list)
    #: engine legs that actually ran
    engines: list[str] = field(default_factory=list)
    certify: dict[str, int] | None = None
    refuted: int = 0
    #: REFUTED verdicts missing their confirmed counterexample (must be 0)
    unconfirmed_refuted: int = 0
    termination: str | None = None
    sqlcheck: dict[str, int] | None = None
    sql_ok: bool | None = None
    cost_bounded: bool | None = None
    cost_max_degree: int | None = None
    flow_ok: bool | None = None
    #: wall seconds: one entry per engine leg plus per-stage entries and a
    #: "seconds" total — everything non-deterministic lives here
    timings: dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "scenario": self.scenario,
            "seed": self.seed,
            "status": self.status,
            "error": self.error,
            "lint_codes": self.lint_codes,
            "source_rows": self.source_rows,
            "target_rows": self.target_rows,
            "agreement": self.agreement,
            "disagreements": self.disagreements,
            "engines": self.engines,
            "certify": self.certify,
            "refuted": self.refuted,
            "unconfirmed_refuted": self.unconfirmed_refuted,
            "termination": self.termination,
            "sqlcheck": self.sqlcheck,
            "sql_ok": self.sql_ok,
            "cost_bounded": self.cost_bounded,
            "cost_max_degree": self.cost_max_degree,
            "flow_ok": self.flow_ok,
            "timings": dict(self.timings),
        }

    def stable_dict(self) -> dict:
        """The deterministic part: :meth:`to_dict` without timings."""
        out = self.to_dict()
        del out["timings"]
        return out


def eval_scenario(
    seed: int,
    config: GeneratorConfig = DEFAULT,
    duckdb: bool | None = None,
) -> EvalRow:
    """Run one generated scenario through the whole stack.

    ``duckdb=None`` means "when importable"; True insists (raising if the
    package is missing); False skips the leg.
    """
    if duckdb is None:
        duckdb = duckdb_available()
    started = time.perf_counter()
    try:
        scenario = generate_scenario(seed, config)
    except Exception as error:  # noqa: BLE001 - recorded, not propagated
        return EvalRow(
            scenario=f"gen-{seed}",
            seed=seed,
            status="error",
            error=f"generation: {error}",
            timings={"seconds": time.perf_counter() - started},
        )
    row = EvalRow(scenario=scenario.name, seed=seed, status="ok")
    row.source_rows = scenario.source_instance.total_size()
    report = quick_lint(scenario.problem)
    row.lint_codes = sorted({d.code for d in report.errors})
    if report.errors:
        row.status = "lint-error"
        row.timings["seconds"] = time.perf_counter() - started
        return row
    if not validate_instance(scenario.source_instance).ok:
        row.status = "error"
        row.error = "generated source instance is invalid"
        row.timings["seconds"] = time.perf_counter() - started
        return row
    try:
        system = MappingSystem(scenario.problem)
        stage = time.perf_counter()
        program = system.compile()
        row.timings["compile"] = time.perf_counter() - stage

        source = scenario.source_instance
        outputs = {}
        stage = time.perf_counter()
        outputs["reference"] = system.run(source, engine="reference").target
        row.timings["reference"] = time.perf_counter() - stage
        stage = time.perf_counter()
        outputs["batch"] = system.run(source, engine="batch").target
        row.timings["batch"] = time.perf_counter() - stage
        stage = time.perf_counter()
        outputs["sqlite"] = run_on_sqlite(program, source)
        row.timings["sqlite"] = time.perf_counter() - stage
        if duckdb:
            stage = time.perf_counter()
            outputs["duckdb"] = run_on_duckdb(program, source)
            row.timings["duckdb"] = time.perf_counter() - stage
        row.engines = list(outputs)
        reference = outputs["reference"]
        row.target_rows = reference.total_size()
        row.disagreements = [
            leg
            for leg, target in outputs.items()
            if leg != "reference" and not diff_up_to_invented(reference, target).empty
        ]
        row.agreement = not row.disagreements

        stage = time.perf_counter()
        certification = system.certify()
        row.timings["certify"] = time.perf_counter() - stage
        row.certify = certification.counts()
        refuted = certification.refuted
        row.refuted = len(refuted)
        row.unconfirmed_refuted = sum(
            1 for v in refuted if v.counterexample is None
        )
        termination = certification.of_kind("termination")
        row.termination = termination[0].verdict if termination else None

        stage = time.perf_counter()
        sql = system.sql_report()
        row.timings["sqlcheck"] = time.perf_counter() - stage
        row.sqlcheck = sql.counts()
        row.sql_ok = sql.ok

        stage = time.perf_counter()
        cost = system.cost_report()
        row.timings["cost"] = time.perf_counter() - stage
        row.cost_bounded = cost.bounded
        row.cost_max_degree = cost.max_degree()

        stage = time.perf_counter()
        system.flow_report()
        row.flow_ok = True
        row.timings["flow"] = time.perf_counter() - stage
    except ReproError as error:
        row.status = "error"
        row.error = f"{type(error).__name__}: {error}"
    row.timings["seconds"] = time.perf_counter() - started
    return row


@dataclass
class EvalMatrix:
    """All rows of one sweep, plus the config that reproduces them."""

    rows: list[EvalRow]
    config: GeneratorConfig = DEFAULT
    duckdb: bool = False

    def summary(self) -> dict:
        rows = self.rows
        evaluated = [r for r in rows if r.agreement is not None]
        certify_totals: dict[str, int] = {}
        sql_totals: dict[str, int] = {}
        for r in rows:
            for verdict, n in (r.certify or {}).items():
                certify_totals[verdict] = certify_totals.get(verdict, 0) + n
            for verdict, n in (r.sqlcheck or {}).items():
                sql_totals[verdict] = sql_totals.get(verdict, 0) + n
        return {
            "scenarios": len(rows),
            "ok": sum(1 for r in rows if r.status == "ok"),
            "lint_error": sum(1 for r in rows if r.status == "lint-error"),
            "error": sum(1 for r in rows if r.status == "error"),
            "evaluated": len(evaluated),
            "agreeing": sum(1 for r in evaluated if r.agreement),
            "duckdb_rows": sum(1 for r in rows if "duckdb" in r.engines),
            "certify": certify_totals,
            "sqlcheck": sql_totals,
            "refuted": sum(r.refuted for r in rows),
            "unconfirmed_refuted": sum(r.unconfirmed_refuted for r in rows),
            "cost_unbounded": sum(1 for r in rows if r.cost_bounded is False),
            "flow_errors": sum(1 for r in rows if r.flow_ok is False),
            "seconds": round(
                sum(r.timings.get("seconds", 0.0) for r in rows), 6
            ),
        }

    def gate(self, fail_on: str = "disagreement") -> list[str]:
        """The CI predicate: reasons this matrix should fail the build.

        ``fail_on="disagreement"`` (the default) fails on any divergence or
        definite negative verdict; ``"error"`` additionally fails rows that
        did not complete; ``"never"`` always passes (reporting-only runs).
        """
        if fail_on == "never":
            return []
        failures = []
        for row in self.rows:
            where = f"seed {row.seed}"
            if row.agreement is False:
                failures.append(
                    f"{where}: engines disagree ({', '.join(row.disagreements)})"
                )
            if row.refuted:
                failures.append(f"{where}: {row.refuted} certify REFUTED verdict(s)")
            if row.unconfirmed_refuted:
                failures.append(
                    f"{where}: {row.unconfirmed_refuted} REFUTED without counterexample"
                )
            if row.sql_ok is False:
                failures.append(f"{where}: sqlcheck statements not all PROVED")
            if row.cost_bounded is False:
                failures.append(f"{where}: cost bounds unbounded")
            if row.flow_ok is False:
                failures.append(f"{where}: flow analysis diverged")
            if fail_on == "error" and row.status != "ok":
                failures.append(f"{where}: status {row.status} ({row.error})")
        return failures

    def to_dict(self) -> dict:
        return {
            "config": self.config.to_dict(),
            "duckdb": self.duckdb,
            "summary": self.summary(),
            "rows": [row.to_dict() for row in self.rows],
        }

    def to_json(self, stamp: bool = True) -> str:
        payload = stamp_metadata(self.to_dict()) if stamp else self.to_dict()
        return json.dumps(payload, indent=2, sort_keys=True) + "\n"

    def to_jsonl(self) -> str:
        return "".join(
            json.dumps(row.to_dict(), sort_keys=True) + "\n" for row in self.rows
        )

    def render(self) -> str:
        """A compact per-scenario table plus the summary line."""
        header = (
            f"{'seed':>6}  {'status':<10}  {'agree':<6}  {'certify P/R/U':<14}  "
            f"{'sql P/U':<8}  {'deg':>3}  {'rows':>5}  {'secs':>7}"
        )
        lines = [header, "-" * len(header)]
        for row in self.rows:
            certify = row.certify or {}
            sql = row.sqlcheck or {}
            agree = {True: "yes", False: "NO", None: "-"}[row.agreement]
            verdicts = (
                f"{certify.get(PROVED, 0)}/{certify.get(REFUTED, 0)}"
                f"/{certify.get('UNKNOWN', 0)}"
            )
            statements = f"{sql.get(PROVED, 0)}/{sql.get('UNKNOWN', 0)}"
            lines.append(
                f"{row.seed:>6}  {row.status:<10}  {agree:<6}  {verdicts:<14}  "
                f"{statements:<8}  "
                f"{'-' if row.cost_max_degree is None else row.cost_max_degree:>3}  "
                f"{'-' if row.target_rows is None else row.target_rows:>5}  "
                f"{row.timings.get('seconds', 0.0):>7.3f}"
            )
        summary = self.summary()
        lines.append("")
        lines.append(
            f"{summary['scenarios']} scenario(s): {summary['ok']} ok, "
            f"{summary['lint_error']} lint-error, {summary['error']} error; "
            f"{summary['agreeing']}/{summary['evaluated']} agree"
            + (f" ({summary['duckdb_rows']} with duckdb)" if self.duckdb else "")
            + f"; certify {summary['certify']}; sqlcheck {summary['sqlcheck']}"
        )
        return "\n".join(lines)


def run_eval(
    seeds: Iterable[int],
    config: GeneratorConfig = DEFAULT,
    duckdb: bool | None = None,
) -> EvalMatrix:
    """Evaluate every seed; see :func:`eval_scenario` for the row contract."""
    if duckdb is None:
        duckdb = duckdb_available()
    rows = [eval_scenario(seed, config, duckdb=duckdb) for seed in seeds]
    return EvalMatrix(rows=rows, config=config, duckdb=duckdb)


def parse_seed_range(text: str) -> list[int]:
    """``"0:100"`` (half-open), ``"7"``, or ``"3,5,9"`` → seed list."""
    text = text.strip()
    if ":" in text:
        lo, _, hi = text.partition(":")
        start, stop = int(lo), int(hi)
        if stop <= start:
            raise ValueError(f"empty seed range {text!r}")
        return list(range(start, stop))
    if "," in text:
        return [int(part) for part in text.split(",") if part.strip()]
    return [int(text)]
