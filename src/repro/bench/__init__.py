"""Benchmark tooling: baseline comparison and the perf-regression gate.

:mod:`repro.bench.diff` loads two benchmark report files (the
``BENCH_scaling.json`` / ``BENCH_pipeline.json`` artifacts written by the
``benchmarks/`` suite), extracts every per-scenario wall time, and compares
them against a configurable noise threshold.  ``repro bench-diff`` is the
CLI surface; CI runs it against the committed baselines and fails the build
on regressions.  See ``docs/OBSERVABILITY.md``.
"""

from .diff import (
    Comparison,
    DiffReport,
    diff_benchmarks,
    extract_timings,
    load_bench_file,
    stamp_metadata,
)
from .evalmatrix import (
    EvalMatrix,
    EvalRow,
    eval_scenario,
    parse_seed_range,
    run_eval,
)

__all__ = [
    "Comparison",
    "DiffReport",
    "EvalMatrix",
    "EvalRow",
    "diff_benchmarks",
    "eval_scenario",
    "extract_timings",
    "load_bench_file",
    "parse_seed_range",
    "run_eval",
    "stamp_metadata",
]
