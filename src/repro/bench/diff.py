"""The perf-regression gate: compare two benchmark report files.

The ``benchmarks/`` suite writes ``BENCH_scaling.json`` (per-workload
engine timings) and ``BENCH_pipeline.json`` (per-example pipeline wall
times), each wrapped as ``{"meta": {...}, "results": {...}}`` with the
commit, python version and timestamp of the run.  :func:`diff_benchmarks`
compares the wall times of two such files scenario by scenario:

* a scenario is a **regression** when ``current > baseline * threshold``
  and the baseline is above the absolute noise floor (``min_seconds`` —
  sub-millisecond timings are timer noise, not signal);
* symmetrically, ``current < baseline / threshold`` is an **improvement**
  (reported, never failing);
* scenarios present on only one side are listed, not compared.

Timings are found structurally, so both report shapes (and the legacy
bare format without the ``meta`` wrapper) work: the JSON tree is walked
and every numeric leaf under a timing key (:data:`TIMING_KEYS`) becomes a
dotted-path entry, e.g. ``figure1-cars3.1600.batch``.  Non-timing numerics
(counters, speedups, sizes) are ignored.

``repro bench-diff baseline.json current.json`` renders the report and
exits 1 when any regression was found — the CI perf gate.
"""

from __future__ import annotations

import json
import platform
import subprocess
import time
from dataclasses import dataclass, field
from typing import Any

#: Leaf keys whose numeric values are wall-time seconds worth comparing.
TIMING_KEYS = frozenset({"wall_time", "reference", "batch", "sqlite", "seconds"})

#: Baselines below this many seconds are timer noise: never compared.
DEFAULT_MIN_SECONDS = 0.001

#: current/baseline above this fails the gate (2.0 = "twice as slow").
DEFAULT_THRESHOLD = 2.0


def extract_timings(data: Any, prefix: str = "") -> dict[str, float]:
    """Every timing leaf in a benchmark report, keyed by dotted path.

    The ``meta`` stamp (and a ``results`` wrapper, when present) is
    transparent: stamped and legacy bare reports yield identical keys.
    """
    if isinstance(data, dict) and set(data) == {"meta", "results"}:
        data = data["results"]
    timings: dict[str, float] = {}

    def walk(node: Any, path: str) -> None:
        if isinstance(node, dict):
            for key, value in node.items():
                child = f"{path}.{key}" if path else str(key)
                if key in TIMING_KEYS and isinstance(value, (int, float)):
                    timings[child] = float(value)
                else:
                    walk(value, child)
        elif isinstance(node, list):
            for i, value in enumerate(node):
                walk(value, f"{path}[{i}]")

    walk(data, prefix)
    return timings


@dataclass
class Comparison:
    """One scenario's baseline-vs-current wall time."""

    key: str
    baseline: float
    current: float

    @property
    def ratio(self) -> float:
        if self.baseline <= 0:
            return float("inf") if self.current > 0 else 1.0
        return self.current / self.baseline

    def render(self) -> str:
        return (
            f"{self.key}: {self.baseline * 1000:.2f}ms -> "
            f"{self.current * 1000:.2f}ms ({self.ratio:.2f}x)"
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "key": self.key,
            "baseline": self.baseline,
            "current": self.current,
            "ratio": self.ratio,
        }


@dataclass
class DiffReport:
    """The outcome of one baseline-vs-current comparison."""

    threshold: float
    min_seconds: float
    regressions: list[Comparison] = field(default_factory=list)
    improvements: list[Comparison] = field(default_factory=list)
    unchanged: list[Comparison] = field(default_factory=list)
    #: scenarios skipped because the baseline sat under the noise floor
    skipped: list[Comparison] = field(default_factory=list)
    missing: list[str] = field(default_factory=list)  # baseline only
    added: list[str] = field(default_factory=list)  # current only

    @property
    def ok(self) -> bool:
        return not self.regressions

    def render(self) -> str:
        compared = (
            len(self.regressions) + len(self.improvements) + len(self.unchanged)
        )
        lines = [
            f"bench-diff: {compared} timing(s) compared "
            f"(threshold {self.threshold:.2f}x, noise floor "
            f"{self.min_seconds * 1000:.1f}ms)"
        ]
        for item in self.regressions:
            lines.append(f"  REGRESSION {item.render()}")
        for item in self.improvements:
            lines.append(f"  improved   {item.render()}")
        if self.skipped:
            lines.append(
                f"  {len(self.skipped)} timing(s) under the noise floor "
                "not compared"
            )
        if self.missing:
            lines.append(
                "  missing from current: " + ", ".join(sorted(self.missing))
            )
        if self.added:
            lines.append(
                "  new in current: " + ", ".join(sorted(self.added))
            )
        lines.append("PASS" if self.ok else "FAIL")
        return "\n".join(lines)

    def to_dict(self) -> dict[str, Any]:
        return {
            "ok": self.ok,
            "threshold": self.threshold,
            "min_seconds": self.min_seconds,
            "regressions": [c.to_dict() for c in self.regressions],
            "improvements": [c.to_dict() for c in self.improvements],
            "unchanged": [c.to_dict() for c in self.unchanged],
            "skipped": [c.to_dict() for c in self.skipped],
            "missing": sorted(self.missing),
            "added": sorted(self.added),
        }


def diff_benchmarks(
    baseline: Any,
    current: Any,
    threshold: float = DEFAULT_THRESHOLD,
    min_seconds: float = DEFAULT_MIN_SECONDS,
) -> DiffReport:
    """Compare two benchmark reports (parsed JSON, any supported shape)."""
    if threshold <= 1.0:
        raise ValueError(f"threshold must exceed 1.0, got {threshold}")
    base = extract_timings(baseline)
    cur = extract_timings(current)
    report = DiffReport(threshold=threshold, min_seconds=min_seconds)
    report.missing = [key for key in base if key not in cur]
    report.added = [key for key in cur if key not in base]
    for key in sorted(base.keys() & cur.keys()):
        comparison = Comparison(key=key, baseline=base[key], current=cur[key])
        if base[key] < min_seconds:
            report.skipped.append(comparison)
        elif comparison.ratio > threshold:
            report.regressions.append(comparison)
        elif comparison.ratio < 1.0 / threshold:
            report.improvements.append(comparison)
        else:
            report.unchanged.append(comparison)
    return report


def load_bench_file(path: str) -> Any:
    with open(path) as handle:
        return json.load(handle)


def _git_commit() -> str | None:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
        )
    except OSError:  # pragma: no cover - git not installed
        return None
    if out.returncode != 0:
        return None
    return out.stdout.strip() or None


def stamp_metadata(results: Any) -> dict[str, Any]:
    """Wrap benchmark results with the run's provenance.

    The ``meta`` block records the commit (when the run happened inside a
    git checkout), the python version and a UTC timestamp, so two
    ``bench-diff`` inputs are attributable.  :func:`extract_timings` makes
    the wrapper transparent to comparison.
    """
    meta: dict[str, Any] = {
        "python": platform.python_version(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    }
    commit = _git_commit()
    if commit is not None:
        meta["commit"] = commit
    return {"meta": meta, "results": results}
