"""The paper's car-registration schemas, mapping problems and instances.

Every figure of the main paper body is available as a ready-made
:class:`~repro.core.pipeline.MappingProblem` plus, where the paper shows
one, the source instance and the expected target instance:

* ``CARS3`` — persons, cars, owners (Figures 1, 4, 9, 10, 12-sibling);
* ``CARS2`` — persons, cars with a *nullable* owner FK (Figure 1 target);
* ``CARS2a`` — like CARS2 but with a *mandatory* owner (Figures 7, 10);
* ``CARS1`` / ``CARS1a`` — single-relation car list with nullable /
  mandatory owner name (Figures 4, 9);
* ``CARS4`` / ``CARSod`` — owners *and* drivers (Figure 12, Example C.2).
"""

from __future__ import annotations

from ..core.pipeline import MappingProblem
from ..model.builder import SchemaBuilder
from ..model.instance import Instance, instance_from_dict
from ..model.schema import Schema
from ..model.values import NULL


# ---------------------------------------------------------------------------
# Schemas
# ---------------------------------------------------------------------------

def cars3_schema() -> Schema:
    """CARS3: Person3 / Car3 / Owner3 (a car has at most one owner)."""
    return (
        SchemaBuilder("CARS3")
        .relation("P3", "person", "name", "email", key="person")
        .relation("C3", "car", "model", key="car")
        .relation("O3", "car", "person", key="car")
        .foreign_key("O3", "car", "C3")
        .foreign_key("O3", "person", "P3")
        .build()
    )


def cars2_schema() -> Schema:
    """CARS2: Person2 / Car2 with a nullable owner foreign key."""
    return (
        SchemaBuilder("CARS2")
        .relation("P2", "person", "name", "email", key="person")
        .relation("C2", "car", "model", "person?", key="car")
        .foreign_key("C2", "person", "P2")
        .build()
    )


def cars2a_schema() -> Schema:
    """CARS2a: like CARS2 but every car has a (mandatory) owner."""
    return (
        SchemaBuilder("CARS2a")
        .relation("P2a", "person", "name", "email", key="person")
        .relation("C2a", "car", "model", "person", key="car")
        .foreign_key("C2a", "person", "P2a")
        .build()
    )


def cars1_schema() -> Schema:
    """CARS1: a single relation, car with the (nullable) owner name."""
    return (
        SchemaBuilder("CARS1")
        .relation("C1", "car", "model", "name?", key="car")
        .build()
    )


def cars1a_schema() -> Schema:
    """CARS1a: like CARS1 but the owner name is mandatory (Figure 9)."""
    return (
        SchemaBuilder("CARS1a")
        .relation("C1a", "car", "model", "name", key="car")
        .build()
    )


def cars4_schema() -> Schema:
    """CARS4: persons, cars, owners and drivers (Figure 12, Example C.2)."""
    return (
        SchemaBuilder("CARS4")
        .relation("P4", "person", "name", "email", key="person")
        .relation("C4", "car", "model", key="car")
        .relation("O4", "car", "person", key="car")
        .relation("D4", "car", "person", key="car")
        .foreign_key("O4", "car", "C4")
        .foreign_key("O4", "person", "P4")
        .foreign_key("D4", "car", "C4")
        .foreign_key("D4", "person", "P4")
        .build()
    )


def carsod_schema() -> Schema:
    """CARSod: cars with nullable owner-name and driver-name (Figure 12)."""
    return (
        SchemaBuilder("CARSod")
        .relation("Cod", "car", "model", "o_name?", "d_name?", key="car")
        .build()
    )


# ---------------------------------------------------------------------------
# Mapping problems (one per figure)
# ---------------------------------------------------------------------------

def _problem(
    source: Schema, target: Schema, name: str, pairs: list[tuple[str, str, str]]
) -> MappingProblem:
    problem = MappingProblem(source, target, name=name)
    for source_attr, target_attr, label in pairs:
        problem.add_correspondence(source_attr, target_attr, label)
    return problem


def figure1_problem() -> MappingProblem:
    """Figure 1 / Example 2.1: CARS3 -> CARS2."""
    return _problem(
        cars3_schema(),
        cars2_schema(),
        "figure-1",
        [
            ("P3.person", "P2.person", "p1"),
            ("P3.name", "P2.name", "p2"),
            ("P3.email", "P2.email", "p3"),
            ("C3.car", "C2.car", "c1"),
            ("C3.model", "C2.model", "c2"),
            ("O3.car", "C2.car", "o1"),
            ("O3.person", "C2.person", "o2"),
        ],
    )


def figure4_problem() -> MappingProblem:
    """Figure 4 / Example 2.2: CARS3 -> CARS1 with *plain* correspondences."""
    return _problem(
        cars3_schema(),
        cars1_schema(),
        "figure-4",
        [
            ("C3.car", "C1.car", "cc"),
            ("C3.model", "C1.model", "cm"),
            ("P3.name", "C1.name", "cn"),
        ],
    )


def figure4_ra_problem() -> MappingProblem:
    """Example 2.2 continued: the referenced-attribute correspondence ``cn'``."""
    return _problem(
        cars3_schema(),
        cars1_schema(),
        "figure-4-ra",
        [
            ("C3.car", "C1.car", "cc"),
            ("C3.model", "C1.model", "cm"),
            ("O3.person > P3.name", "C1.name", "cn'"),
        ],
    )


def figure7_problem() -> MappingProblem:
    """Figure 7 (section 3.2): CARS2a -> CARS3, the baseline walkthrough."""
    return _problem(
        cars2a_schema(),
        cars3_schema(),
        "figure-7",
        [
            ("P2a.person", "P3.person", "p1"),
            ("P2a.name", "P3.name", "p2"),
            ("P2a.email", "P3.email", "p3"),
            ("C2a.car", "C3.car", "c1"),
            ("C2a.model", "C3.model", "c2"),
            ("C2a.car", "O3.car", "o1"),
            ("C2a.person", "O3.person", "o2"),
        ],
    )


def figure9_problem() -> MappingProblem:
    """Figure 9 / Example 4.1: CARS3 -> CARS1a with the r-a correspondence."""
    return _problem(
        cars3_schema(),
        cars1a_schema(),
        "figure-9",
        [
            ("C3.car", "C1a.car", "cc"),
            ("C3.model", "C1a.model", "cm"),
            ("O3.person > P3.name", "C1a.name", "cn'"),
        ],
    )


def figure10_problem() -> MappingProblem:
    """Figure 10 / Example C.1: CARS3 -> CARS2a (mandatory owner)."""
    return _problem(
        cars3_schema(),
        cars2a_schema(),
        "figure-10",
        [
            ("P3.person", "P2a.person", "p1"),
            ("P3.name", "P2a.name", "p2"),
            ("P3.email", "P2a.email", "p3"),
            ("C3.car", "C2a.car", "c1"),
            ("C3.model", "C2a.model", "c2"),
            ("O3.car", "C2a.car", "o1"),
            ("O3.person", "C2a.person", "o2"),
        ],
    )


def figure12_problem() -> MappingProblem:
    """Figure 12 / Example C.2: CARS4 -> CARSod with owner/driver r-a lines."""
    return _problem(
        cars4_schema(),
        carsod_schema(),
        "figure-12",
        [
            ("C4.car", "Cod.car", "cc"),
            ("C4.model", "Cod.model", "cm"),
            ("O4.person > P4.name", "Cod.o_name", "con"),
            ("D4.person > P4.name", "Cod.d_name", "cdn"),
        ],
    )


def figure14_problem() -> MappingProblem:
    """Figure 14 / Example C.3: CARS2 -> CARS3 (source nullable attribute)."""
    return _problem(
        cars2_schema(),
        cars3_schema(),
        "figure-14",
        [
            ("P2.person", "P3.person", "p1"),
            ("P2.name", "P3.name", "p2"),
            ("P2.email", "P3.email", "p3"),
            ("C2.car", "C3.car", "c1"),
            ("C2.model", "C3.model", "c2"),
            ("C2.person", "O3.person", "o2"),
        ],
    )


# ---------------------------------------------------------------------------
# Instances (figures 2, 3, 5, 6, 8, 11, 13, 15)
# ---------------------------------------------------------------------------

def cars3_source_instance() -> Instance:
    """The CARS3 source instance used by Figures 2, 3, 5, 6 and 11."""
    return instance_from_dict(
        cars3_schema(),
        {
            "P3": [("p21", "John", "j@..."), ("p22", "MJ", "mj@...")],
            "C3": [("c85", "Ferrari"), ("c86", "Ford")],
            "O3": [("c85", "p22")],
        },
    )


def figure3_expected_target() -> Instance:
    """The desirable CARS2 target of Figure 3 (novel algorithms)."""
    return instance_from_dict(
        cars2_schema(),
        {
            "P2": [("p21", "John", "j@..."), ("p22", "MJ", "mj@...")],
            "C2": [("c85", "Ferrari", "p22"), ("c86", "Ford", NULL)],
        },
    )


def figure6_expected_target() -> Instance:
    """The desirable CARS1 target of Figure 6 (r-a correspondence)."""
    return instance_from_dict(
        cars1_schema(),
        {
            "C1": [("c85", "Ferrari", "MJ"), ("c86", "Ford", NULL)],
        },
    )


def figure8_source_instance() -> Instance:
    """The CARS2a source instance of Figure 8 (two cars owned by p22)."""
    return instance_from_dict(
        cars2a_schema(),
        {
            "P2a": [("p21", "John", "j@..."), ("p22", "MJ", "mj@...")],
            "C2a": [("c85", "Ferrari", "p22"), ("c86", "Ford", "p22")],
        },
    )


def figure8_expected_target() -> Instance:
    """The CARS3 target of Figure 8 (baseline transformation)."""
    return instance_from_dict(
        cars3_schema(),
        {
            "P3": [("p21", "John", "j@..."), ("p22", "MJ", "mj@...")],
            "C3": [("c85", "Ferrari"), ("c86", "Ford")],
            "O3": [("c85", "p22"), ("c86", "p22")],
        },
    )


def figure13_source_instance() -> Instance:
    """The CARS4 source instance of Figure 13 (owners and drivers)."""
    return instance_from_dict(
        cars4_schema(),
        {
            "P4": [
                ("p21", "John", "j@..."),
                ("p22", "MJ", "mj@..."),
                ("p23", "Paul", "p@..."),
                ("p24", "Rick", "r@..."),
                ("p25", "Eva", "eva@..."),
            ],
            "C4": [
                ("c85", "Ferrari"),
                ("c86", "Ford"),
                ("c87", "Volkswagen"),
                ("c88", "Volvo"),
            ],
            "O4": [("c85", "p22"), ("c86", "p21")],
            "D4": [("c85", "p23"), ("c87", "p24")],
        },
    )


def figure13_expected_target() -> Instance:
    """The CARSod target of Figure 13.

    Note: the paper's figure prints person *identifiers* in the o-name and
    d-name columns; the correspondences of Figure 12 (``O4.person ▹ P4.name``)
    actually move the *names*, which is what this expectation records (see
    EXPERIMENTS.md).
    """
    return instance_from_dict(
        carsod_schema(),
        {
            "Cod": [
                ("c85", "Ferrari", "MJ", "Paul"),
                ("c86", "Ford", "John", NULL),
                ("c87", "Volkswagen", NULL, "Rick"),
                ("c88", "Volvo", NULL, NULL),
            ],
        },
    )


def figure15_source_instance() -> Instance:
    """The CARS2 source instance of Figure 15 (a car without an owner)."""
    return instance_from_dict(
        cars2_schema(),
        {
            "P2": [("p21", "John", "j@..."), ("p22", "MJ", "mj@...")],
            "C2": [("c85", "Ferrari", "p22"), ("c86", "Ford", NULL)],
        },
    )


def figure15_expected_target() -> Instance:
    """The CARS3 target of Figure 15."""
    return instance_from_dict(
        cars3_schema(),
        {
            "P3": [("p21", "John", "j@..."), ("p22", "MJ", "mj@...")],
            "C3": [("c85", "Ferrari"), ("c86", "Ford")],
            "O3": [("c85", "p22")],
        },
    )


def all_problems() -> dict[str, MappingProblem]:
    """Every CARS mapping problem, keyed by figure name."""
    return {
        "figure-1": figure1_problem(),
        "figure-4": figure4_problem(),
        "figure-4-ra": figure4_ra_problem(),
        "figure-7": figure7_problem(),
        "figure-9": figure9_problem(),
        "figure-10": figure10_problem(),
        "figure-12": figure12_problem(),
        "figure-14": figure14_problem(),
    }
