"""Random mapping problems in the paper's anchored correspondence style.

Each target relation gets an *anchor* source relation that supplies its key
(key attributes map positionally, key-to-key only — never from non-key
attributes, which could repeat and forge key violations).  On top of the
anchors:

* payload attributes are covered with probability ``coverage``, directly
  from anchor attributes or through a source foreign key as a
  referenced-attribute path ``S.g > R.a`` (paper section 4);
* a target foreign key ``T.f -> T2`` is covered only *coherently*: from an
  anchor foreign key ``g`` whose referenced relation is T2's anchor, so
  every value flowing into ``T.f`` provably lands on a ``T2`` key.
  Incoherent mandatory target foreign keys are un-declared (the attribute
  stays as plain payload); incoherent nullable ones stay declared and
  uncovered, satisfied by null;
* with probability ``secondary_anchor_fraction`` a target relation also
  receives its key from a second source relation referencing the anchor —
  figure 1's ``O3.person -> P2.person``, the soft-conflict pattern the
  novel algorithm resolves and the basic baseline does not.

Nullability is respected throughout: a source expression that can be null
(nullable attribute, or a path through a nullable foreign key) never covers
a mandatory target attribute, so generated weakly acyclic scenarios give
the certifier no NOT NULL counterexamples — the eval gate asserts zero
REFUTED verdicts over them.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from functools import cached_property

from ...core.pipeline import MappingProblem
from ...datalog.program import DatalogProgram, Rule
from ...logic.atoms import RelationalAtom
from ...logic.terms import SkolemTerm, Variable
from ...model.builder import SchemaBuilder
from ...model.instance import Instance
from ...model.schema import ForeignKey, RelationSchema, Schema
from .config import DEFAULT, GeneratorConfig
from .instances import generate_instance
from .schemas import generate_schema


@dataclass
class GeneratedScenario:
    """One seeded scenario: problem, paired valid source instance, DSL text."""

    seed: int
    config: GeneratorConfig
    problem: MappingProblem
    source_instance: Instance

    @property
    def name(self) -> str:
        return self.problem.name

    @cached_property
    def dsl(self) -> str:
        """The problem as DSL text; parses back to an equal problem."""
        from ...dsl.renderer import render_problem

        return render_problem(self.problem)

    @cached_property
    def instance_text(self) -> str:
        """The source instance as DSL lines (``parse_instance`` format)."""
        from ...dsl.renderer import render_instance

        return render_instance(self.source_instance)


def _pick_payload_source(
    rng: random.Random,
    schema: Schema,
    anchor: RelationSchema,
    nullable_ok: bool,
    config: GeneratorConfig,
) -> str | None:
    """A source expression rooted at the anchor, respecting nullability.

    Either a plain anchor attribute or a one-step referenced-attribute path
    ``anchor.g > R.a`` through one of the anchor's foreign keys.
    """
    direct = [
        f"{anchor.name}.{a.name}"
        for a in anchor.attributes
        if nullable_ok or not a.nullable
    ]
    paths = []
    for fk in schema.foreign_keys_of(anchor.name):
        fk_nullable = anchor.attribute(fk.attribute).nullable
        referenced = schema.relation(fk.referenced)
        for a in referenced.attributes:
            if a.name in referenced.key:
                continue  # the key is the foreign key's own value
            if nullable_ok or not (fk_nullable or a.nullable):
                paths.append(f"{anchor.name}.{fk.attribute} > {referenced.name}.{a.name}")
    if paths and rng.random() < config.referenced_attribute_fraction:
        return paths[rng.randrange(len(paths))]
    if direct:
        return direct[rng.randrange(len(direct))]
    if paths:
        return paths[rng.randrange(len(paths))]
    return None


def _generate_correspondences(
    rng: random.Random,
    source: Schema,
    target: Schema,
    config: GeneratorConfig,
    name: str,
) -> MappingProblem:
    sources = list(source)
    targets = list(target)

    # Anchors: a source whose whole key fits into the target key positionally
    # (relation S0 always has a simple key, so no target lacks a candidate).
    anchors: dict[str, RelationSchema] = {}
    for t in targets:
        eligible = [s for s in sources if len(s.key) <= len(t.key)]
        anchors[t.name] = eligible[rng.randrange(len(eligible))]

    pairs: list[tuple[str, str]] = []
    covered: set[tuple[str, str]] = set()
    for t in targets:
        s = anchors[t.name]
        for s_key, t_key in zip(s.key, t.key):
            pairs.append((f"{s.name}.{s_key}", f"{t.name}.{t_key}"))
            covered.add((t.name, t_key))

    # Target foreign keys: cover coherently or degrade (see module docstring).
    dropped: list[ForeignKey] = []
    for t in targets:
        s = anchors[t.name]
        for fk in target.foreign_keys_of(t.name):
            fk_nullable = t.attribute(fk.attribute).nullable
            candidates = [
                g
                for g in source.foreign_keys_of(s.name)
                if g.referenced == anchors[fk.referenced].name
                and (fk_nullable or not s.attribute(g.attribute).nullable)
            ]
            if candidates and rng.random() < config.coverage:
                g = candidates[rng.randrange(len(candidates))]
                pairs.append((f"{s.name}.{g.attribute}", f"{t.name}.{fk.attribute}"))
                covered.add((t.name, fk.attribute))
            elif not fk_nullable:
                dropped.append(fk)
            elif anchors[fk.referenced].name != s.name:
                # An uncovered nullable foreign key is safe only when both
                # ends share an anchor: then the candidate linking T.f to the
                # referenced tuple subsumes the null-assigning sibling on the
                # same premise.  With different anchors the two candidates
                # fire on different premises and Algorithm 4 rejects the
                # mapping as non-functional — so degrade to plain payload.
                dropped.append(fk)

    if dropped:
        kept = [fk for fk in target.foreign_keys if fk not in dropped]
        target = Schema(targets, kept, name=target.name)

    # Payload coverage from the anchor.
    for t in targets:
        s = anchors[t.name]
        for attribute in t.attributes:
            if attribute.name in t.key or (t.name, attribute.name) in covered:
                continue
            if target.has_foreign_key_from(t.name, attribute.name):
                continue  # uncovered nullable foreign key: stays null
            if rng.random() >= config.coverage:
                continue
            expression = _pick_payload_source(
                rng, source, s, nullable_ok=attribute.nullable, config=config
            )
            if expression is None:
                continue
            pairs.append((expression, f"{t.name}.{attribute.name}"))
            covered.add((t.name, attribute.name))

    # Secondary anchors (figure 1): a second source reaches the target key
    # through a foreign key into the primary anchor.
    for t in targets:
        if len(t.key) != 1:
            continue
        s = anchors[t.name]
        referencing = [
            fk
            for fk in source.foreign_keys
            if fk.referenced == s.name and fk.relation != s.name
        ]
        if not referencing:
            continue
        if rng.random() >= config.secondary_anchor_fraction:
            continue
        h = referencing[rng.randrange(len(referencing))]
        pairs.append((f"{h.relation}.{h.attribute}", f"{t.name}.{t.key[0]}"))

    problem = MappingProblem(source, target, name=name)
    for i, (src, tgt) in enumerate(pairs):
        problem.add_correspondence(src, tgt, label=f"c{i}")
    return problem


def generate_scenario(seed: int, config: GeneratorConfig = DEFAULT) -> GeneratedScenario:
    """The scenario for ``(seed, config)`` — deterministic, replayable.

    Seeded with strings so the streams do not depend on ``PYTHONHASHSEED``.
    The source instance uses an independent stream, so scenario shape and
    instance content can be varied separately.
    """
    rng = random.Random(f"repro-generator-{seed}")
    source = generate_schema(
        rng,
        name=f"GENSRC{seed}",
        prefix="S",
        relations_range=config.source_relations,
        config=config,
        weakly_acyclic=config.weakly_acyclic,
        simple_key_first=True,
    )
    target = generate_schema(
        rng,
        name=f"GENTGT{seed}",
        prefix="T",
        relations_range=config.target_relations,
        config=config,
        weakly_acyclic=True,
    )
    problem = _generate_correspondences(rng, source, target, config, name=f"gen-{seed}")
    instance = generate_instance(
        problem.source_schema, seed, rows=config.rows, null_fraction=config.null_fraction
    )
    return GeneratedScenario(
        seed=seed, config=config, problem=problem, source_instance=instance
    )


def generate_unbounded_program(seed: int = 0) -> DatalogProgram:
    """``T(f(x)) <- T(x)``: recursive Skolem invention, no chase-depth bound.

    The cyclic-mode counterpart at the program level: certification of this
    program yields a TRM001 termination verdict and downgrades every other
    verdict to UNKNOWN — the negative case the eval matrix and tests pin.
    """
    target = (
        SchemaBuilder(f"unbounded{seed}").relation("T", "x", key="x").build(validate=False)
    )
    x = Variable("x")
    rule = Rule(
        head=RelationalAtom("T", (SkolemTerm(f"f_x@gen{seed}", (x,)),)),
        body=(RelationalAtom("T", (x,)),),
    )
    return DatalogProgram(rules=[rule], target_schema=target)
