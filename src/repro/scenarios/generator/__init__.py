"""Seeded scenario generator: randomized mapping problems with instances.

The bundled scenarios cover every figure of the paper; this package covers
the *space* the paper's algorithms quantify over.  :func:`generate_scenario`
maps ``(seed, config)`` deterministically to a :class:`GeneratedScenario` —
a random source/target schema pair (composite keys, foreign-key chains that
are weakly acyclic by construction, nullable/mandatory attribute patterns),
a correspondence set of tunable coverage in the paper's anchored style
(including figure-1's two-sources-one-target pattern and referenced-attribute
paths), the equivalent DSL problem text, and a paired random *valid* source
instance (key-unique, foreign-key-closed).

Determinism is a contract, not an accident: the same seed and config produce
byte-identical DSL text, plans and evaluation results in any process,
regardless of ``PYTHONHASHSEED`` (asserted by the test suite).  Every
scenario is therefore replayable from its seed alone — the property the
results-matrix eval runner (:mod:`repro.bench.evalmatrix`) builds on.

``weakly_acyclic=False`` opts into *cyclic mode*: the source schema gets a
reciprocal foreign-key pair (a special cycle), exercising the ``SCH010``
schema check, and :func:`generate_unbounded_program` builds the matching
recursive-Skolem Datalog program that trips the certifier's ``TRM001``
termination precondition.
"""

from .config import GeneratorConfig, SMALL, DEFAULT
from .instances import RandomChooser, build_instance, generate_instance
from .problems import GeneratedScenario, generate_scenario, generate_unbounded_program
from .schemas import generate_schema

__all__ = [
    "DEFAULT",
    "GeneratedScenario",
    "GeneratorConfig",
    "RandomChooser",
    "SMALL",
    "build_instance",
    "generate_instance",
    "generate_scenario",
    "generate_schema",
    "generate_unbounded_program",
]
