"""Tunable knobs for the scenario generator.

Every knob is a plain value or an inclusive ``(lo, hi)`` range, so a config
is hashable, comparable and trivially serializable — the eval matrix records
it next to the seed, which together fully determine a scenario.
"""

from __future__ import annotations

from dataclasses import dataclass, fields


@dataclass(frozen=True)
class GeneratorConfig:
    """Shape parameters for :func:`repro.scenarios.generator.generate_scenario`.

    Ranges are inclusive.  Fractions are probabilities in ``[0, 1]`` drawn
    independently per opportunity (per attribute, per relation, ...).
    """

    #: how many relations each side gets
    source_relations: tuple[int, int] = (2, 4)
    target_relations: tuple[int, int] = (1, 3)
    #: non-key, non-foreign-key attributes per relation
    payload_attributes: tuple[int, int] = (1, 3)
    #: chance a relation nothing references gets a two-attribute key
    #: (referenced relations keep simple keys — the paper restricts foreign
    #: keys to reference simple keys only)
    composite_key_fraction: float = 0.3
    #: chance each foreign-key slot of a relation is filled with a reference
    #: to an earlier relation (earlier-only keeps the schema a DAG, hence
    #: weakly acyclic by construction)
    fk_fraction: float = 0.5
    #: chance a payload attribute is nullable
    nullable_fraction: float = 0.4
    #: chance a foreign-key attribute is nullable
    nullable_fk_fraction: float = 0.3
    #: chance each target payload attribute gets a covering correspondence
    coverage: float = 0.8
    #: chance a payload correspondence reads through a source foreign key
    #: (a referenced-attribute path ``S.g > R.a``, paper section 4)
    referenced_attribute_fraction: float = 0.3
    #: chance a target relation additionally receives its key from a second
    #: source relation that references the anchor (figure 1's ``O3.person ->
    #: P2.person`` pattern — the soft-conflict case the novel algorithm
    #: resolves and the basic baseline does not)
    secondary_anchor_fraction: float = 0.3
    #: when False, the source schema gets a reciprocal foreign-key pair — a
    #: special cycle that trips the SCH010 weak-acyclicity check
    weakly_acyclic: bool = True
    #: rows per source relation in generated instances
    rows: tuple[int, int] = (2, 6)
    #: chance a nullable attribute of a generated instance row is null
    null_fraction: float = 0.3

    def __post_init__(self) -> None:
        for name in ("source_relations", "target_relations", "payload_attributes", "rows"):
            lo, hi = getattr(self, name)
            if not (isinstance(lo, int) and isinstance(hi, int) and 1 <= lo <= hi):
                raise ValueError(f"{name} must be an inclusive range 1 <= lo <= hi, got ({lo}, {hi})")
        for name in (
            "composite_key_fraction",
            "fk_fraction",
            "nullable_fraction",
            "nullable_fk_fraction",
            "coverage",
            "referenced_attribute_fraction",
            "secondary_anchor_fraction",
            "null_fraction",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")

    def to_dict(self) -> dict:
        """A JSON-ready mapping (ranges become two-element lists)."""
        out: dict = {}
        for f in fields(self):
            value = getattr(self, f.name)
            out[f.name] = list(value) if isinstance(value, tuple) else value
        return out


#: the default shape: a handful of relations per side, mixed constraints
DEFAULT = GeneratorConfig()

#: a smaller shape for property-based tests, where example count matters
#: more than per-example size
SMALL = GeneratorConfig(
    source_relations=(2, 3),
    target_relations=(1, 2),
    payload_attributes=(1, 2),
    rows=(1, 3),
)
