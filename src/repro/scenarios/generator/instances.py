"""Random source instances that are valid by construction.

Instances are built in two phases: first every relation's key tuples are
fixed, then rows are filled in with foreign-key values drawn from the
referenced relation's already-decided keys (so foreign keys are closed) and
nulls only on nullable attributes.  Key attributes that are themselves
foreign keys (``O3(car key -> C3)`` in the paper's figures) draw their key
components from the referenced keys instead, with colliding rows dropped
rather than repaired — so keys stay unique by construction either way.  The
two-phase shape also works on cyclic schemas, where no row-by-row fill
order could satisfy foreign keys.

Decisions go through a small chooser interface so the same construction
serves two masters: :class:`RandomChooser` for the seeded generator, and a
hypothesis-draw-backed chooser in ``tests/strategies.py`` for the
property-based suites — one valid-instance builder instead of per-test
copies.
"""

from __future__ import annotations

import random

from ...model.instance import Instance
from ...model.schema import Schema
from ...model.values import NULL
from .config import DEFAULT

#: small shared pool so payload values collide across rows and relations,
#: exercising joins and value equalities
PAYLOAD_POOL = ("u", "v", "w")


class RandomChooser:
    """Decision source backed by a seeded :class:`random.Random`."""

    def __init__(self, rng: random.Random):
        self._rng = rng

    def size(self, lo: int, hi: int) -> int:
        """How many rows a relation gets (inclusive range)."""
        return self._rng.randint(lo, hi)

    def index(self, n: int) -> int:
        """Pick one of ``n`` alternatives."""
        return self._rng.randrange(n)

    def flag(self, probability: float) -> bool:
        """An independent biased coin (null-vs-value draws)."""
        return self._rng.random() < probability

    def value(self, relation: str, attribute: str, row: int) -> str:
        """A payload value: pooled half the time, row-unique otherwise."""
        if self._rng.random() < 0.5:
            return PAYLOAD_POOL[self._rng.randrange(len(PAYLOAD_POOL))]
        return f"{relation}.{attribute}.{row}"


def _key_fill_order(schema: Schema) -> list[str]:
    """Relations ordered so key-attribute foreign keys point backwards.

    Only dependencies through *key* attributes force an order; plain
    foreign keys are resolved in phase 2 against already-decided keys, so
    even reciprocal (cyclic) references are fine there.
    """
    depends: dict[str, set[str]] = {r.name: set() for r in schema}
    for relation in schema:
        for key_attr in relation.key:
            fk = schema.foreign_key_from(relation.name, key_attr)
            if fk is not None:
                depends[relation.name].add(fk.referenced)
    order: list[str] = []
    done: set[str] = set()
    in_progress: set[str] = set()

    def visit(name: str) -> None:
        if name in done:
            return
        if name in in_progress:
            raise ValueError(
                f"cannot build an instance: key foreign keys of {name!r} form a cycle"
            )
        in_progress.add(name)
        for dep in sorted(depends[name]):
            visit(dep)
        in_progress.discard(name)
        done.add(name)
        order.append(name)

    for relation in schema:
        visit(relation.name)
    return order


def build_instance(
    schema: Schema,
    chooser,
    rows: tuple[int, int] = DEFAULT.rows,
    null_fraction: float = DEFAULT.null_fraction,
) -> Instance:
    """A key-unique, foreign-key-closed instance of ``schema``.

    ``chooser`` provides the decisions (see :class:`RandomChooser`); rows per
    relation are drawn from the inclusive ``rows`` range, and each nullable
    attribute is null with probability ``null_fraction``.  When ``rows``
    allows empty relations, rows that would need a mandatory reference into
    an empty relation are dropped, preserving validity by construction.
    """
    counts = {r.name: chooser.size(*rows) for r in schema}
    # Phase 1: key tuples.  Fresh row-indexed names are distinct by
    # construction; key components that traverse a foreign key draw from the
    # referenced keys instead, dropping rows whose key tuple collides.
    keys: dict[str, list[tuple[str, ...]]] = {}
    for name in _key_fill_order(schema):
        relation = schema.relation(name)
        seen: set[tuple[str, ...]] = set()
        decided: list[tuple[str, ...]] = []
        for i in range(counts[name]):
            parts = []
            for key_attr in relation.key:
                fk = schema.foreign_key_from(name, key_attr)
                if fk is None:
                    parts.append(f"{name}.{key_attr}.{i}")
                else:
                    referenced = keys[fk.referenced]
                    if not referenced:
                        break  # nothing to reference: drop the row
                    # referenced keys are simple (paper restriction)
                    parts.append(referenced[chooser.index(len(referenced))][0])
            else:
                key = tuple(parts)
                if key in seen:
                    continue  # drop rather than repair: keys stay unique
                seen.add(key)
                decided.append(key)
        keys[name] = decided
    instance = Instance(schema)
    # Phase 2: full rows, foreign keys resolved against phase-1 keys.
    for relation in schema:
        key_position = {attr: i for i, attr in enumerate(relation.key)}
        for i, key in enumerate(keys[relation.name]):
            row = []
            for attr in relation.attributes:
                if attr.name in key_position:
                    row.append(key[key_position[attr.name]])
                    continue
                if attr.nullable and chooser.flag(null_fraction):
                    row.append(NULL)
                    continue
                fk = schema.foreign_key_from(relation.name, attr.name)
                if fk is not None:
                    referenced = keys[fk.referenced]
                    if not referenced:
                        if attr.nullable:
                            row.append(NULL)
                            continue
                        break  # mandatory reference into an empty relation
                    row.append(referenced[chooser.index(len(referenced))][0])
                else:
                    row.append(chooser.value(relation.name, attr.name, i))
            else:
                instance.add(relation.name, tuple(row))
    return instance


def generate_instance(
    schema: Schema,
    seed: int,
    rows: tuple[int, int] = DEFAULT.rows,
    null_fraction: float = DEFAULT.null_fraction,
) -> Instance:
    """The seeded form of :func:`build_instance`.

    Seeded with a string so the stream is independent of ``PYTHONHASHSEED``
    (string seeds are hashed with sha512, not the per-process ``hash``).
    """
    rng = random.Random(f"repro-generator-instance-{seed}")
    return build_instance(schema, RandomChooser(rng), rows=rows, null_fraction=null_fraction)
