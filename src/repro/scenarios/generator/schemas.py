"""Random schemas that are weakly acyclic by construction.

Foreign keys only ever reference relations with a *smaller* index, so the
dependency graph is a DAG and weak acyclicity (paper section 3.1) holds
without a search.  Relations some foreign key references are forced to
simple keys — the paper restricts foreign keys to reference simple keys
only — and composite keys are drawn for the remaining relations.

Cyclic mode (``weakly_acyclic=False``) appends a reciprocal foreign-key
pair between the first two relations on fresh non-key attributes.  Each of
the two foreign keys emits a special edge into the other's non-key position
in the dependency graph, so the pair forms a special cycle and
:meth:`Schema.validate` raises ``SCH010``; the schema object itself is
still built (unvalidated) so lint and rendering can observe it.
"""

from __future__ import annotations

import random

from ...model.builder import SchemaBuilder
from ...model.schema import Schema
from .config import DEFAULT, GeneratorConfig


def generate_schema(
    rng: random.Random,
    name: str,
    prefix: str,
    relations_range: tuple[int, int],
    config: GeneratorConfig = DEFAULT,
    weakly_acyclic: bool = True,
    simple_key_first: bool = False,
) -> Schema:
    """One random schema; relations are named ``{prefix}0 .. {prefix}{n-1}``.

    ``simple_key_first`` forces relation 0 to a simple key — the source side
    uses it so every target relation has at least one anchor candidate whose
    key fits (see :mod:`.problems`).
    """
    count = rng.randint(*relations_range)
    names = [f"{prefix}{i}" for i in range(count)]

    # Decide foreign keys first: referenced relations must keep simple keys.
    # Targets are chosen so that from any relation there is at most ONE
    # foreign-key path to any other (pairwise-disjoint reachability sets):
    # a tableau whose chase reaches the same relation twice activates the
    # same correspondences against both occurrences, which Algorithm 4
    # rejects as non-functional — a legitimate paper outcome, but not the
    # shape this generator aims for.
    fk_targets: dict[int, list[int]] = {i: [] for i in range(count)}
    closures: dict[int, frozenset[int]] = {}
    for i in range(count):
        taken: set[int] = set()
        for _slot in range(min(i, 2)):
            if rng.random() < config.fk_fraction:
                candidates = [j for j in range(i) if not (closures[j] & taken)]
                if not candidates:
                    continue
                j = candidates[rng.randrange(len(candidates))]
                fk_targets[i].append(j)
                taken |= closures[j]
        closures[i] = frozenset({i}) | frozenset(taken)
    referenced = {j for targets in fk_targets.values() for j in targets}

    builder = SchemaBuilder(name)
    fk_specs: list[tuple[str, str, str, bool]] = []
    for i, rel_name in enumerate(names):
        composite = (
            i not in referenced
            and not (simple_key_first and i == 0)
            # the reciprocal pair of cyclic mode references relations 0 and 1
            and not (not weakly_acyclic and i < 2)
            and rng.random() < config.composite_key_fraction
        )
        key_attrs = ["k0", "k1"] if composite else ["k"]
        attrs: list[str] = list(key_attrs)
        for p in range(rng.randint(*config.payload_attributes)):
            nullable = rng.random() < config.nullable_fraction
            attrs.append(f"a{p}?" if nullable else f"a{p}")
        for slot, j in enumerate(fk_targets[i]):
            nullable = rng.random() < config.nullable_fk_fraction
            fk_attr = f"r{slot}"
            attrs.append(f"{fk_attr}?" if nullable else fk_attr)
            fk_specs.append((rel_name, fk_attr, names[j], nullable))
        builder.relation(rel_name, *attrs, key=key_attrs)
    for rel_name, attr, target, _nullable in fk_specs:
        builder.foreign_key(rel_name, attr, target)

    if weakly_acyclic:
        return builder.build()

    # Reciprocal foreign keys: a special cycle through the two cyc attributes.
    if count < 2:
        raise ValueError("cyclic mode needs at least two relations")
    rebuilt = SchemaBuilder(name)
    schema = builder.build(validate=False)
    for i, rel_name in enumerate(names):
        attrs = list(schema.relation(rel_name).attributes)
        if i < 2:
            attrs.append("cyc?" if rng.random() < 0.5 else "cyc")
        rebuilt.relation(rel_name, *attrs, key=schema.relation(rel_name).key)
    for fk in schema.foreign_keys:
        rebuilt.foreign_key(fk.relation, fk.attribute, fk.referenced)
    rebuilt.foreign_key(names[0], "cyc", names[1])
    rebuilt.foreign_key(names[1], "cyc", names[0])
    return rebuilt.build(validate=False)
