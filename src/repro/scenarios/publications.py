"""A bibliography-consolidation scenario (not from the paper).

A normalized publication database — persons, venues, papers, authorships
(composite key), awards — is consolidated into a flat digest.  The mapping
exercises most features at once: referenced-attribute correspondences
(venue name/year through the ``Paper.venue`` foreign key), a nullable target
attribute fed by a separate source relation (awards → soft key conflict →
negation), and a Clio-style filter (only current venues).
"""

from __future__ import annotations

from ..core.pipeline import MappingProblem
from ..model.builder import SchemaBuilder
from ..model.instance import Instance, instance_from_dict
from ..model.schema import Schema
from ..model.values import NULL


def pubs_schema() -> Schema:
    """The normalized source: persons, venues, papers, authorships, awards."""
    return (
        SchemaBuilder("PUBS")
        .relation("Person", "pid", "name", "email?")
        .relation("Venue", "vid", "vname", "year")
        .relation("Paper", "doi", "title", "venue")
        .relation("Authorship", "doi", "pid", "rank", key=["doi", "pid"])
        .relation("Award", "doi", "prize")
        .foreign_key("Paper", "venue", "Venue")
        .foreign_key("Authorship", "doi", "Paper")
        .foreign_key("Authorship", "pid", "Person")
        .foreign_key("Award", "doi", "Paper")
        .build()
    )


def digest_schema() -> Schema:
    """The consolidated target: one row per paper, plus a venue shortlist."""
    return (
        SchemaBuilder("DIGEST")
        .relation("Pub", "doi", "title", "venue_name", "year", "prize?")
        .relation("CurrentVenue", "vid", "vname")
        .build()
    )


def digest_problem(current_year: str = "2024") -> MappingProblem:
    """Consolidate PUBS into DIGEST."""
    problem = MappingProblem(pubs_schema(), digest_schema(), name="pubs-digest")
    problem.add_correspondence("Paper.doi", "Pub.doi")
    problem.add_correspondence("Paper.title", "Pub.title")
    problem.add_correspondence("Paper.venue > Venue.vname", "Pub.venue_name")
    problem.add_correspondence("Paper.venue > Venue.year", "Pub.year")
    problem.add_correspondence("Award.doi", "Pub.doi")
    problem.add_correspondence("Award.prize", "Pub.prize")
    problem.add_correspondence(
        "Venue.vid", "CurrentVenue.vid", where=f"Venue.year = '{current_year}'"
    )
    problem.add_correspondence(
        "Venue.vname", "CurrentVenue.vname", where=f"Venue.year = '{current_year}'"
    )
    return problem


def pubs_source_instance() -> Instance:
    return instance_from_dict(
        pubs_schema(),
        {
            "Person": [
                ("p1", "Ada", "ada@x"),
                ("p2", "Alan", NULL),
            ],
            "Venue": [
                ("v1", "EDBT", "2024"),
                ("v2", "VLDB", "2023"),
            ],
            "Paper": [
                ("d1", "On Keys", "v1"),
                ("d2", "On Nulls", "v2"),
                ("d3", "On Chases", "v1"),
            ],
            "Authorship": [
                ("d1", "p1", "1"),
                ("d1", "p2", "2"),
                ("d2", "p2", "1"),
            ],
            "Award": [("d1", "best-paper")],
        },
    )


def digest_expected_target() -> Instance:
    return instance_from_dict(
        digest_schema(),
        {
            "Pub": [
                ("d1", "On Keys", "EDBT", "2024", "best-paper"),
                ("d2", "On Nulls", "VLDB", "2023", NULL),
                ("d3", "On Chases", "EDBT", "2024", NULL),
            ],
            "CurrentVenue": [("v1", "EDBT")],
        },
    )
