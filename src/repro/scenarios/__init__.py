"""Every scenario of the paper plus synthetic scaled workloads."""

from . import appendix_a, appendix_b, appendix_c, cars, composite, publications, synthetic
from .cars import all_problems

__all__ = [
    "all_problems",
    "appendix_a",
    "appendix_b",
    "appendix_c",
    "bundled_problems",
    "cars",
    "composite",
    "publications",
    "synthetic",
]


def bundled_problems():
    """Every bundled :class:`~repro.core.pipeline.MappingProblem` by name.

    The figures of the paper body, the Appendix A examples, the Appendix C
    examples, and the composite-key / publications scenarios — everything
    ``repro lint --all-scenarios`` checks in CI.
    """
    problems = dict(cars.all_problems())
    for label, factory in appendix_a.ALL_EXAMPLES.items():
        problems[f"appendix-{label}"] = factory()
    problems["appendix-c4"] = appendix_c.example_c4_problem()
    problems["example-6-6"] = appendix_c.example_6_6_problem()
    problems["example-6-7"] = appendix_c.example_6_7_problem()
    problems["enrollment"] = composite.enrollment_problem()
    problems["composite-skolem"] = composite.composite_skolem_problem()
    problems["publications"] = publications.digest_problem()
    return problems
