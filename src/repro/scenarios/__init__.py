"""Every scenario of the paper plus synthetic scaled workloads."""

from . import appendix_a, appendix_b, appendix_c, cars, composite, publications, synthetic
from .cars import all_problems

__all__ = [
    "all_problems",
    "appendix_a",
    "appendix_b",
    "appendix_c",
    "cars",
    "composite",
    "publications",
    "synthetic",
]
