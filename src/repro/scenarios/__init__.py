"""Every scenario of the paper plus synthetic scaled workloads.

Beyond the hand-written suites, :mod:`repro.scenarios.generator` produces
seeded random scenarios; :func:`generated_problems` is the convenience
bridge that mirrors :func:`bundled_problems` for a seed range, so "all
scenarios" test suites can sweep both with one shape of code.
"""

from . import appendix_a, appendix_b, appendix_c, cars, composite, generator, publications, synthetic
from .cars import all_problems

__all__ = [
    "all_problems",
    "appendix_a",
    "appendix_b",
    "appendix_c",
    "bundled_problems",
    "cars",
    "composite",
    "generated_problems",
    "generator",
    "publications",
    "synthetic",
]


def bundled_problems():
    """Every bundled :class:`~repro.core.pipeline.MappingProblem` by name.

    The figures of the paper body, the Appendix A examples, the Appendix C
    examples, and the composite-key / publications scenarios — everything
    ``repro lint --all-scenarios`` checks in CI.
    """
    problems = dict(cars.all_problems())
    for label, factory in appendix_a.ALL_EXAMPLES.items():
        problems[f"appendix-{label}"] = factory()
    problems["appendix-c4"] = appendix_c.example_c4_problem()
    problems["example-6-6"] = appendix_c.example_6_6_problem()
    problems["example-6-7"] = appendix_c.example_6_7_problem()
    problems["enrollment"] = composite.enrollment_problem()
    problems["composite-skolem"] = composite.composite_skolem_problem()
    problems["publications"] = publications.digest_problem()
    return problems


def generated_problems(seeds=range(8), config=None):
    """Generated :class:`~repro.core.pipeline.MappingProblem` objects by name.

    The counterpart of :func:`bundled_problems` for the seeded generator:
    ``{"gen-0": problem, ...}`` for the given seeds, deterministic per
    ``(seed, config)``.  Use :func:`generator.generate_scenario` directly
    when the paired source instance or DSL text is needed too.
    """
    from .generator import DEFAULT, generate_scenario

    config = DEFAULT if config is None else config
    scenarios = (generate_scenario(seed, config) for seed in seeds)
    return {scenario.name: scenario.problem for scenario in scenarios}
