"""Composite-key scenarios.

The paper's procedures all note "a minor modification in the procedure is
needed to consider composite keys"; these scenarios exercise that
modification end to end: functionality checks, key-conflict identification,
negation correlation and mapping fusion over a two-attribute key.

The running example is a university enrollment database: grades and mentors
recorded separately per (course, student), consolidated into one relation.
"""

from __future__ import annotations

from ..core.pipeline import MappingProblem
from ..model.builder import SchemaBuilder
from ..model.instance import Instance, instance_from_dict
from ..model.schema import Schema
from ..model.values import NULL


def enrollment_source_schema() -> Schema:
    """Grades and mentors per (course, student), in separate relations."""
    return (
        SchemaBuilder("ENROLL-SRC")
        .relation("Grade", "course", "student", "grade", key=["course", "student"])
        .relation("Mentor", "course", "student", "mentor", key=["course", "student"])
        .build()
    )


def enrollment_target_schema() -> Schema:
    """One consolidated relation with nullable grade and mentor columns."""
    return (
        SchemaBuilder("ENROLL-TGT")
        .relation(
            "Enrollment",
            "course",
            "student",
            "grade?",
            "mentor?",
            key=["course", "student"],
        )
        .build()
    )


def enrollment_problem() -> MappingProblem:
    """Consolidate grades and mentors; the composite-key analogue of C.2."""
    problem = MappingProblem(
        enrollment_source_schema(), enrollment_target_schema(), name="enrollment"
    )
    problem.add_correspondence("Grade.course", "Enrollment.course")
    problem.add_correspondence("Grade.student", "Enrollment.student")
    problem.add_correspondence("Grade.grade", "Enrollment.grade")
    problem.add_correspondence("Mentor.course", "Enrollment.course")
    problem.add_correspondence("Mentor.student", "Enrollment.student")
    problem.add_correspondence("Mentor.mentor", "Enrollment.mentor")
    return problem


def enrollment_source_instance() -> Instance:
    return instance_from_dict(
        enrollment_source_schema(),
        {
            "Grade": [
                ("db", "ada", "A"),
                ("db", "alan", "B"),
                ("ml", "ada", "A"),
            ],
            "Mentor": [
                ("db", "ada", "codd"),
                ("os", "alan", "ritchie"),
            ],
        },
    )


def enrollment_expected_target() -> Instance:
    """Per (course, student): grade and mentor fused, null where unknown."""
    return instance_from_dict(
        enrollment_target_schema(),
        {
            "Enrollment": [
                ("db", "ada", "A", "codd"),
                ("db", "alan", "B", NULL),
                ("ml", "ada", "A", NULL),
                ("os", "alan", NULL, "ritchie"),
            ]
        },
    )


def composite_skolem_problem() -> MappingProblem:
    """An unmapped mandatory attribute under a composite key.

    The Skolem functor for the missing ``room`` must depend on *both* key
    attributes (All-Source-Or-Key-Vars, composite case).
    """
    source = (
        SchemaBuilder("TT-SRC")
        .relation("Slot", "day", "hour", "teacher", key=["day", "hour"])
        .build()
    )
    target = (
        SchemaBuilder("TT-TGT")
        .relation("Timetable", "day", "hour", "teacher", "room", key=["day", "hour"])
        .build()
    )
    problem = MappingProblem(source, target, name="timetable")
    problem.add_correspondence("Slot.day", "Timetable.day")
    problem.add_correspondence("Slot.hour", "Timetable.hour")
    problem.add_correspondence("Slot.teacher", "Timetable.teacher")
    return problem
