"""Appendix C scenarios: query generation, fusion and Skolem unification.

* Example C.1 reuses the Figure 10 problem (CARS3 → CARS2a).
* Example C.2 reuses the Figure 12 problem (CARS4 → CARSod).
* Example C.3 reuses the Figure 14 problem (CARS2 → CARS3).
* Example C.4 is the three-way soft key conflict; :func:`example_c4_problem`
  reconstructs it from correspondences (each source relation maps its key
  plus one distinct non-key attribute).
* Examples 6.6 and 6.7 (section 6) are also provided here because they
  exercise the same machinery (fusion and Skolem unification).
"""

from __future__ import annotations

from ..core.pipeline import MappingProblem
from ..model.builder import SchemaBuilder
from .cars import figure10_problem, figure12_problem, figure14_problem

example_c1_problem = figure10_problem
example_c2_problem = figure12_problem
example_c3_problem = figure14_problem


def example_c4_problem() -> MappingProblem:
    """C.4: three sources conflicting over different target attributes."""
    source = (
        SchemaBuilder("C4s")
        .relation("S1", "k", "a", "b", "c")
        .relation("S2", "k", "a", "b", "c")
        .relation("S3", "k", "a", "b", "c")
        .build()
    )
    target = SchemaBuilder("C4t").relation("T", "k", "a", "b", "c?").build()
    problem = MappingProblem(source, target, name="C.4")
    problem.add_correspondence("S1.k", "T.k")
    problem.add_correspondence("S1.a", "T.a")
    problem.add_correspondence("S2.k", "T.k")
    problem.add_correspondence("S2.b", "T.b")
    problem.add_correspondence("S3.k", "T.k")
    problem.add_correspondence("S3.c", "T.c")
    return problem


def example_6_7_problem() -> MappingProblem:
    """Example 6.7: two sources each inventing the same target attribute x."""
    source = (
        SchemaBuilder("E67s")
        .relation("S1", "k", "a")
        .relation("S2", "k", "b")
        .build()
    )
    target = SchemaBuilder("E67t").relation("T", "k", "a", "b", "x").build()
    problem = MappingProblem(source, target, name="6.7")
    problem.add_correspondence("S1.k", "T.k")
    problem.add_correspondence("S1.a", "T.a")
    problem.add_correspondence("S2.k", "T.k")
    problem.add_correspondence("S2.b", "T.b")
    return problem


def example_6_6_problem() -> MappingProblem:
    """Example 6.6: a nullable source attribute vs an invented one.

    ``S1`` carries a nullable ``b``, ``S2`` carries ``c``; both reference the
    hub ``S0`` providing ``a``.  The target ``T(k, a, b?, c)`` receives ``b``
    from ``S1`` (or null) and ``c`` from ``S2`` (or an invented value).
    """
    source = (
        SchemaBuilder("E66s")
        .relation("S0", "k", "a")
        .relation("S1", "k", "b?")
        .relation("S2", "k", "c")
        .foreign_key("S1", "k", "S0")
        .foreign_key("S2", "k", "S0")
        .build()
    )
    target = SchemaBuilder("E66t").relation("T", "k", "a", "b?", "c").build()
    problem = MappingProblem(source, target, name="6.6")
    problem.add_correspondence("S0.k", "T.k")
    problem.add_correspondence("S0.a", "T.a")
    problem.add_correspondence("S1.b", "T.b")
    problem.add_correspondence("S2.c", "T.c")
    return problem
