"""Appendix A micro-scenarios: the nullable-attribute case analysis.

Examples A.1–A.10 of the paper motivate each nullable-related pruning rule
with a tiny person schema.  Each function returns the
:class:`~repro.core.pipeline.MappingProblem`; :data:`EXPECTED_MAPPINGS`
records how many logical mappings the desired schema mapping has, which the
tests and the Appendix-A benchmark assert.
"""

from __future__ import annotations

from ..core.pipeline import MappingProblem
from ..model.builder import SchemaBuilder
from ..model.schema import Schema


def _schema(name: str, *relations) -> Schema:
    """Build a schema from ``(relation, attributes[, foreign_keys])`` triples."""
    builder = SchemaBuilder(name)
    for relation in relations:
        builder.relation(relation[0], *relation[1])
    for relation in relations:
        if len(relation) > 2:
            for attribute, referenced in relation[2]:
                builder.foreign_key(relation[0], attribute, referenced)
    return builder.build()


def _problem(name, source, target, pairs) -> MappingProblem:
    problem = MappingProblem(source, target, name=name)
    for s, t in pairs:
        problem.add_correspondence(s, t)
    return problem


def example_a1() -> MappingProblem:
    """A.1: all-mandatory copy, the simplest case."""
    source = _schema("A1s", ("Ps", ("person", "name", "email")))
    target = _schema("A1t", ("Pt", ("person", "name", "email")))
    return _problem(
        "A.1", source, target,
        [("Ps.person", "Pt.person"), ("Ps.name", "Pt.name"), ("Ps.email", "Pt.email")],
    )


def example_a2() -> MappingProblem:
    """A.2: the target key is not mapped (skolemized key)."""
    source = _schema("A2s", ("Ps", ("person", "name", "email")))
    target = _schema("A2t", ("Pt", ("pid", "name", "email")))
    return _problem(
        "A.2", source, target, [("Ps.name", "Pt.name"), ("Ps.email", "Pt.email")]
    )


def example_a3() -> MappingProblem:
    """A.3: an unmapped mandatory target attribute (skolemized)."""
    source = _schema("A3s", ("Ps", ("person", "name")))
    target = _schema("A3t", ("Pt", ("person", "name", "email")))
    return _problem(
        "A.3", source, target, [("Ps.person", "Pt.person"), ("Ps.name", "Pt.name")]
    )


def example_a4() -> MappingProblem:
    """A.4: an unmapped *nullable* target attribute gets null, not a Skolem."""
    source = _schema("A4s", ("Ps", ("person", "name")))
    target = _schema("A4t", ("Pt", ("person", "name", "email?")))
    return _problem(
        "A.4", source, target, [("Ps.person", "Pt.person"), ("Ps.name", "Pt.name")]
    )


def example_a5() -> MappingProblem:
    """A.5: a nullable FK that must be followed (data moves behind it)."""
    source = _schema("A5s", ("Ps", ("person", "name", "email")))
    target = _schema(
        "A5t",
        ("Pt", ("person", "data?"), [("data", "PDt")]),
        ("PDt", ("data", "name", "email")),
    )
    return _problem(
        "A.5", source, target,
        [("Ps.person", "Pt.person"), ("Ps.name", "PDt.name"), ("Ps.email", "PDt.email")],
    )


def example_a6() -> MappingProblem:
    """A.6: a nullable FK that must be nulled (nothing moves behind it)."""
    source = _schema("A6s", ("Ps", ("person", "name")))
    target = _schema(
        "A6t",
        ("Pt", ("person", "data?"), [("data", "PDt")]),
        ("PDt", ("data", "email")),
    )
    return _problem("A.6", source, target, [("Ps.person", "Pt.person")])


def example_a7() -> MappingProblem:
    """A.7: nullable source, mandatory target — split on the source null."""
    source = _schema("A7s", ("Ps", ("person", "name", "email?")))
    target = _schema("A7t", ("Pt", ("person", "name", "email")))
    return _problem(
        "A.7", source, target,
        [("Ps.person", "Pt.person"), ("Ps.name", "Pt.name"), ("Ps.email", "Pt.email")],
    )


def example_a8() -> MappingProblem:
    """A.8: mandatory source, nullable target — a single non-null mapping."""
    source = _schema("A8s", ("Ps", ("person", "name", "email")))
    target = _schema("A8t", ("Pt", ("person", "name", "email?")))
    return _problem(
        "A.8", source, target,
        [("Ps.person", "Pt.person"), ("Ps.name", "Pt.name"), ("Ps.email", "Pt.email")],
    )


def example_a9() -> MappingProblem:
    """A.9: nullable on both sides — null propagates, non-null copies."""
    source = _schema("A9s", ("Ps", ("person", "name", "email?")))
    target = _schema("A9t", ("Pt", ("person", "name", "email?")))
    return _problem(
        "A.9", source, target,
        [("Ps.person", "Pt.person"), ("Ps.name", "Pt.name"), ("Ps.email", "Pt.email")],
    )


def example_a10() -> MappingProblem:
    """A.10: nullable source attribute absent from the target."""
    source = _schema("A10s", ("Ps", ("person", "name", "email?")))
    target = _schema("A10t", ("Pt", ("person", "name")))
    return _problem(
        "A.10", source, target, [("Ps.person", "Pt.person"), ("Ps.name", "Pt.name")]
    )


ALL_EXAMPLES = {
    "A.1": example_a1,
    "A.2": example_a2,
    "A.3": example_a3,
    "A.4": example_a4,
    "A.5": example_a5,
    "A.6": example_a6,
    "A.7": example_a7,
    "A.8": example_a8,
    "A.9": example_a9,
    "A.10": example_a10,
}

#: Number of logical mappings in each example's desired schema mapping.
EXPECTED_MAPPINGS = {
    "A.1": 1,
    "A.2": 1,
    "A.3": 1,
    "A.4": 1,
    "A.5": 1,
    "A.6": 1,
    "A.7": 2,
    "A.8": 1,
    "A.9": 2,
    "A.10": 2,
}
