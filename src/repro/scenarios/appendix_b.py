"""Appendix B scenarios: the skolemization-strategy comparison.

Examples B.1–B.5 start from a *given* logical schema mapping (not from
correspondences) and compare the target instances computed under the four
skolemization procedures.  Each scenario here provides the schemas, the
logical mapping (built directly, as in the paper), and the student source
instance the appendix evaluates on.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..logic.atoms import RelationalAtom
from ..logic.mappings import LogicalMapping, Premise, SchemaMapping
from ..logic.terms import Variable
from ..model.builder import SchemaBuilder
from ..model.instance import Instance, instance_from_dict
from ..model.schema import Schema


@dataclass
class SkolemScenario:
    """One Appendix-B example: schemas, the logical mapping, the instance."""

    name: str
    source_schema: Schema
    target_schema: Schema
    schema_mapping: SchemaMapping
    source_instance: Instance


def _mapping(source, target, premise_atoms, consequent_atoms) -> SchemaMapping:
    mapping = SchemaMapping(source, target)
    mapping.mappings.append(
        LogicalMapping(
            premise=Premise(atoms=tuple(premise_atoms)),
            consequent=tuple(consequent_atoms),
            label="m1",
        )
    )
    return mapping


def _students_instance(schema: Schema) -> Instance:
    return instance_from_dict(
        schema,
        {
            "Students": [
                ("a", "john", "math"),
                ("b", "john", "math"),
                ("c", "mary", "math"),
                ("d", "mary", "cs"),
            ]
        },
    )


def example_b1() -> SkolemScenario:
    """B.1: invented target key, copied name and school."""
    source = SchemaBuilder("B1s").relation("Students", "id", "name", "school").build()
    target = SchemaBuilder("B1t").relation("Studentt", "key", "name", "school").build()
    i, n, s, k = Variable("id"), Variable("n"), Variable("s"), Variable("key")
    mapping = _mapping(
        source, target,
        [RelationalAtom("Students", (i, n, s))],
        [RelationalAtom("Studentt", (k, n, s))],
    )
    return SkolemScenario("B.1", source, target, mapping, _students_instance(source))


def example_b2() -> SkolemScenario:
    """B.2: invented key *and* invented non-key email."""
    source = SchemaBuilder("B2s").relation("Students", "id", "name", "school").build()
    target = SchemaBuilder("B2t").relation("Studentt", "key", "name", "email").build()
    i, n, s = Variable("id"), Variable("n"), Variable("s")
    k, e = Variable("key"), Variable("e")
    mapping = _mapping(
        source, target,
        [RelationalAtom("Students", (i, n, s))],
        [RelationalAtom("Studentt", (k, n, e))],
    )
    return SkolemScenario("B.2", source, target, mapping, _students_instance(source))


def example_b3() -> SkolemScenario:
    """B.3: an invented value linking a foreign key to a referenced key."""
    source = SchemaBuilder("B3s").relation("Students", "id", "name", "schoolname").build()
    target = (
        SchemaBuilder("B3t")
        .relation("Studentt", "id", "name", "sid")
        .relation("Schoolt", "sid", "schoolname")
        .foreign_key("Studentt", "sid", "Schoolt")
        .build()
    )
    i, n, sn, sid = Variable("id"), Variable("n"), Variable("sn"), Variable("sid")
    mapping = _mapping(
        source, target,
        [RelationalAtom("Students", (i, n, sn))],
        [
            RelationalAtom("Studentt", (i, n, sid)),
            RelationalAtom("Schoolt", (sid, sn)),
        ],
    )
    return SkolemScenario("B.3", source, target, mapping, _students_instance(source))


def example_b4() -> SkolemScenario:
    """B.4: an invented non-key value in a relation whose key is copied."""
    source = (
        SchemaBuilder("B4s")
        .relation("Students", "id", "name", "sid")
        .relation("Schools", "sid", "scname")
        .foreign_key("Students", "sid", "Schools")
        .build()
    )
    target = (
        SchemaBuilder("B4t")
        .relation("Studentt", "id", "name", "sid")
        .relation("Schoolt", "sid", "scname", "city")
        .foreign_key("Studentt", "sid", "Schoolt")
        .build()
    )
    i, n, s, sc, city = (
        Variable("id"),
        Variable("n"),
        Variable("sid"),
        Variable("sc"),
        Variable("city"),
    )
    mapping = _mapping(
        source, target,
        [
            RelationalAtom("Students", (i, n, s)),
            RelationalAtom("Schools", (s, sc)),
        ],
        [
            RelationalAtom("Studentt", (i, n, s)),
            RelationalAtom("Schoolt", (s, sc, city)),
        ],
    )
    instance = instance_from_dict(
        source,
        {
            "Schools": [("m", "math"), ("c", "cs")],
            "Students": [
                ("a", "john", "m"),
                ("b", "john", "m"),
                ("c", "mary", "m"),
                ("d", "mary", "c"),
            ],
        },
    )
    return SkolemScenario("B.4", source, target, mapping, instance)


def example_b5() -> SkolemScenario:
    """B.5: an invented key with nothing but a copied non-key attribute."""
    source = SchemaBuilder("B5s").relation("Students", "id", "name", "schoolname").build()
    target = SchemaBuilder("B5t").relation("Schoolt", "sid", "schoolname").build()
    i, n, sn, sid = Variable("id"), Variable("n"), Variable("sn"), Variable("sid")
    mapping = _mapping(
        source, target,
        [RelationalAtom("Students", (i, n, sn))],
        [RelationalAtom("Schoolt", (sid, sn))],
    )
    return SkolemScenario("B.5", source, target, mapping, _students_instance(source))


ALL_SCENARIOS = {
    "B.1": example_b1,
    "B.2": example_b2,
    "B.3": example_b3,
    "B.4": example_b4,
    "B.5": example_b5,
}
