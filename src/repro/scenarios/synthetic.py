"""Synthetic workload generators for the scaling and ablation benchmarks.

The paper evaluates on worked examples only; these generators extend its own
CARS schemas to arbitrary sizes so runtime and output-quality trends (target
size, invented values, key violations) can be measured.  All generators are
deterministic given a seed.
"""

from __future__ import annotations

import random

from ..core.pipeline import MappingProblem
from ..model.builder import SchemaBuilder
from ..model.instance import Instance
from ..model.schema import Schema
from ..model.values import NULL
from .cars import cars2_schema, cars3_schema, cars4_schema


def cars3_instance(
    n_persons: int, n_cars: int, ownership: float = 0.6, seed: int = 0
) -> Instance:
    """A CARS3 instance: ``n_persons`` persons, ``n_cars`` cars, a fraction owned."""
    rng = random.Random(seed)
    instance = Instance(cars3_schema())
    for i in range(n_persons):
        instance.add("P3", (f"p{i}", f"name{i}", f"mail{i}@x"))
    models = ["Ferrari", "Ford", "Fiat", "Volvo", "VW", "Toyota"]
    for i in range(n_cars):
        instance.add("C3", (f"c{i}", models[i % len(models)]))
        if n_persons and rng.random() < ownership:
            owner = rng.randrange(n_persons)
            instance.add("O3", (f"c{i}", f"p{owner}"))
    return instance


def cars2_instance(
    n_persons: int, n_cars: int, null_fraction: float = 0.4, seed: int = 0
) -> Instance:
    """A CARS2 instance where a fraction of cars has a null owner."""
    rng = random.Random(seed)
    instance = Instance(cars2_schema())
    for i in range(n_persons):
        instance.add("P2", (f"p{i}", f"name{i}", f"mail{i}@x"))
    models = ["Ferrari", "Ford", "Fiat", "Volvo", "VW", "Toyota"]
    for i in range(n_cars):
        if n_persons and rng.random() >= null_fraction:
            owner = f"p{rng.randrange(n_persons)}"
        else:
            owner = NULL
        instance.add("C2", (f"c{i}", models[i % len(models)], owner))
    return instance


def cars4_instance(
    n_persons: int,
    n_cars: int,
    ownership: float = 0.5,
    drivership: float = 0.5,
    seed: int = 0,
) -> Instance:
    """A CARS4 instance with independent owner and driver fractions."""
    rng = random.Random(seed)
    instance = Instance(cars4_schema())
    for i in range(n_persons):
        instance.add("P4", (f"p{i}", f"name{i}", f"mail{i}@x"))
    models = ["Ferrari", "Ford", "Fiat", "Volvo", "VW", "Toyota"]
    for i in range(n_cars):
        instance.add("C4", (f"c{i}", models[i % len(models)]))
        if n_persons and rng.random() < ownership:
            instance.add("O4", (f"c{i}", f"p{rng.randrange(n_persons)}"))
        if n_persons and rng.random() < drivership:
            instance.add("D4", (f"c{i}", f"p{rng.randrange(n_persons)}"))
    return instance


def chain_schema(
    depth: int,
    nullable_links: bool = True,
    name: str = "chain",
    prefix: str = "R",
) -> Schema:
    """A chain of relations linked by (optionally nullable) foreign keys.

    ``R0(k, a, next) -> R1(k, a, next) -> ... -> R<depth>(k, a)``.  With
    nullable links the modified chase of ``R0`` produces ``depth + 1``
    partial tableaux (one per prefix), making chase and candidate-generation
    cost scale with depth — the workload for the chase benchmarks.
    """
    builder = SchemaBuilder(name)
    for level in range(depth + 1):
        if level < depth:
            link = "next?" if nullable_links else "next"
            builder.relation(f"{prefix}{level}", "k", "a", link)
        else:
            builder.relation(f"{prefix}{level}", "k", "a")
    for level in range(depth):
        builder.foreign_key(f"{prefix}{level}", "next", f"{prefix}{level + 1}")
    return builder.build()


def chain_instance(schema: Schema, rows_per_relation: int, seed: int = 0) -> Instance:
    """Rows for a chain schema; each row links to a random next-level row."""
    rng = random.Random(seed)
    instance = Instance(schema)
    names = list(schema.relation_names())
    for index, name in enumerate(names):
        is_last = index == len(names) - 1
        for row in range(rows_per_relation):
            if is_last:
                instance.add(name, (f"{name}k{row}", f"a{row}"))
            else:
                if rng.random() < 0.5:
                    link = f"{names[index + 1]}k{rng.randrange(rows_per_relation)}"
                else:
                    link = NULL
                instance.add(name, (f"{name}k{row}", f"a{row}", link))
    return instance


def chain_problem(depth: int, nullable_links: bool = True) -> MappingProblem:
    """A chain-to-chain copy problem exercising deep FK traversal.

    Source relations are ``S0..Sn`` and target relations ``T0..Tn`` (the
    mapping system requires disjoint relation namespaces).
    """
    source = chain_schema(depth, nullable_links, name="chain-src", prefix="S")
    target = chain_schema(depth, nullable_links, name="chain-tgt", prefix="T")
    problem = MappingProblem(source, target, name=f"chain-{depth}")
    for level in range(depth + 1):
        problem.add_correspondence(f"S{level}.k", f"T{level}.k")
        problem.add_correspondence(f"S{level}.a", f"T{level}.a")
        if level < depth:
            problem.add_correspondence(f"S{level}.next", f"T{level}.next")
    return problem


def wide_problem(n_nullable: int) -> MappingProblem:
    """A single-relation problem with ``n_nullable`` nullable target attributes.

    The modified chase of the target relation produces ``2**n_nullable``
    partial tableaux — the ablation workload for nullable-related pruning.
    """
    source_builder = SchemaBuilder("wide-src")
    target_builder = SchemaBuilder("wide-tgt")
    attrs = ["k"] + [f"a{i}" for i in range(n_nullable)]
    source_builder.relation("S", *attrs)
    target_builder.relation("T", "k", *[f"a{i}?" for i in range(n_nullable)])
    problem = MappingProblem(source_builder.build(), target_builder.build(), name=f"wide-{n_nullable}")
    problem.add_correspondence("S.k", "T.k")
    for i in range(n_nullable):
        problem.add_correspondence(f"S.a{i}", f"T.a{i}")
    return problem
