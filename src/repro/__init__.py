"""repro — a relational mapping system with keys, foreign keys and nullable attributes.

A faithful, from-scratch implementation of Luca Cabibbo's EDBT 2009 paper
"On Keys, Foreign Keys and Nullable Attributes in Relational Mapping
Systems" (extended technical report RT-DIA-138-2008): given a source schema,
a target schema and a set of (referenced-attribute) value correspondences,
generate a declarative schema mapping (source-to-target tgds) and an
executable transformation (non-recursive Datalog with Skolem functors and
safe stratified negation), managing primary keys, foreign keys and nullable
attributes comprehensively.

Quickstart::

    from repro import SchemaBuilder, MappingProblem, MappingSystem

    source = (SchemaBuilder("S").relation("P", "person", "name").build())
    target = (SchemaBuilder("T").relation("Q", "person", "name").build())
    problem = MappingProblem(source, target)
    problem.add_correspondence("P.person", "Q.person")
    problem.add_correspondence("P.name", "Q.name")
    system = MappingSystem(problem)
    print(system.schema_mapping)
    print(system.transformation)
"""

from .core import (
    ALL_SOURCE_OR_KEY_VARS,
    Filter,
    check_round_trip,
    reverse_problem,
    suggest_correspondences,
    ALL_SOURCE_VARS,
    BASIC,
    NOVEL,
    SOURCE_AND_RHS_VARS,
    SOURCE_HERE_AND_REF_VARS,
    Correspondence,
    MappingProblem,
    MappingSystem,
    ReferencedAttribute,
    correspondence,
    correspondences,
    generate_queries,
    generate_schema_mapping,
    logical_relations,
)
from .datalog import DatalogProgram, Rule, evaluate
from .errors import (
    HardKeyConflictError,
    NonFunctionalMappingError,
    ReproError,
    WeakAcyclicityError,
)
from .exchange import analyze_transformation, certain_answers
from .obs import RunReport, Tracer, use_tracer
from .model import (
    NULL,
    diff_instances,
    Attribute,
    ForeignKey,
    Instance,
    LabeledNull,
    RelationSchema,
    Schema,
    SchemaBuilder,
    validate_instance,
)

__version__ = "1.0.0"

__all__ = [
    "ALL_SOURCE_OR_KEY_VARS",
    "ALL_SOURCE_VARS",
    "Attribute",
    "BASIC",
    "Correspondence",
    "DatalogProgram",
    "Filter",
    "ForeignKey",
    "HardKeyConflictError",
    "Instance",
    "LabeledNull",
    "MappingProblem",
    "MappingSystem",
    "NOVEL",
    "NULL",
    "NonFunctionalMappingError",
    "ReferencedAttribute",
    "RelationSchema",
    "ReproError",
    "Rule",
    "RunReport",
    "Tracer",
    "use_tracer",
    "SOURCE_AND_RHS_VARS",
    "SOURCE_HERE_AND_REF_VARS",
    "Schema",
    "SchemaBuilder",
    "WeakAcyclicityError",
    "correspondence",
    "correspondences",
    "analyze_transformation",
    "certain_answers",
    "check_round_trip",
    "diff_instances",
    "evaluate",
    "generate_queries",
    "reverse_problem",
    "suggest_correspondences",
    "generate_schema_mapping",
    "logical_relations",
    "validate_instance",
    "__version__",
]
