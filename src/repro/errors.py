"""Exception hierarchy for the mapping system.

All library errors derive from :class:`ReproError` so callers can catch one
base class.  The two "signal an error and stop" situations of the paper's
query-generation algorithm (Algorithm 4) have dedicated subclasses:
:class:`NonFunctionalMappingError` (functionality check fails, paper section 6)
and :class:`HardKeyConflictError` (an unresolvable key conflict between two
logical mappings).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover
    from .analysis.diagnostics import Diagnostic


class ReproError(Exception):
    """Base class for every error raised by this library.

    Raise sites that correspond to a stable static-analysis code (see
    :mod:`repro.analysis.diagnostics`) pass the structured diagnostic via
    the ``diagnostic`` keyword; it is exposed as ``error.diagnostic`` so the
    CLI and the linter can surface the code, severity and source span.
    """

    def __init__(self, *args: Any, diagnostic: "Diagnostic | None" = None):
        super().__init__(*args)
        self.diagnostic = diagnostic


class SchemaError(ReproError):
    """An ill-formed schema: unknown attributes, bad keys, dangling foreign keys."""


class WeakAcyclicityError(SchemaError):
    """The foreign-key constraints do not form a weakly acyclic set.

    The paper requires weak acyclicity (section 3.1) so the modified chase
    procedure terminates; this error rejects schemas outside that class.
    """


class InstanceError(ReproError):
    """An instance does not fit its schema (wrong arity, unknown relation)."""


class ConstraintViolationError(InstanceError):
    """An instance violates a declared integrity constraint."""


class CorrespondenceError(ReproError):
    """An ill-formed (referenced-attribute) correspondence."""


class MappingGenerationError(ReproError):
    """Schema-mapping generation could not produce a mapping."""


class QueryGenerationError(ReproError):
    """Query generation failed for a reason other than the two paper errors."""


class NonFunctionalMappingError(QueryGenerationError):
    """A unitary logical mapping can violate the key of its target relation.

    Raised by the functionality check of Algorithm 4, step 2 ("If this is not
    the case, signal an error and stop").
    """


class HardKeyConflictError(QueryGenerationError):
    """Two logical mappings copy distinct source values into the same key.

    Raised by Algorithm 4, step 3 for hard (or otherwise unsolvable) key
    conflicts.
    """


class DatalogError(ReproError):
    """An ill-formed Datalog program (unsafe rule, unstratifiable negation)."""


class EvaluationError(DatalogError):
    """A runtime failure while evaluating a Datalog program."""


class ParseError(ReproError):
    """A syntax error in the schema / correspondence DSL."""

    def __init__(
        self,
        message: str,
        line: int | None = None,
        diagnostic: "Diagnostic | None" = None,
    ):
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message, diagnostic=diagnostic)
