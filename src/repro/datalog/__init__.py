"""Datalog substrate: programs, stratification, evaluation, optimization."""

from .engine import EvaluationResult, evaluate, evaluate_rule
from .optimize import remove_subsumed_rules, subsumes_rule
from .program import DatalogProgram, Rule
from .stratify import dependencies, stratify

__all__ = [
    "DatalogProgram",
    "EvaluationResult",
    "Rule",
    "dependencies",
    "evaluate",
    "evaluate_rule",
    "remove_subsumed_rules",
    "stratify",
    "subsumes_rule",
]
