"""Datalog substrate: programs, stratification, evaluation, optimization.

Two evaluation runtimes share one semantics: the tuple-at-a-time reference
interpreter (:func:`evaluate`, the differential-testing oracle) and the
planned, set-oriented batch runtime (:func:`evaluate_batch`,
:mod:`repro.datalog.exec`).
"""

from .engine import EvaluationResult, evaluate, evaluate_rule
from .exec import ProgramPlan, evaluate_batch, plan_program
from .optimize import remove_subsumed_rules, subsumes_rule
from .program import DatalogProgram, Rule
from .stratify import dependencies, stratify

__all__ = [
    "DatalogProgram",
    "EvaluationResult",
    "ProgramPlan",
    "Rule",
    "dependencies",
    "evaluate",
    "evaluate_batch",
    "evaluate_rule",
    "plan_program",
    "remove_subsumed_rules",
    "stratify",
    "subsumes_rule",
]
