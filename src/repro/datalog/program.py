"""Non-recursive Datalog programs with Skolem functors and safe negation.

This is the execution language the paper's query-generation algorithms emit:
each rule has a head over a target (or intermediate) relation whose terms may
include Skolem functor terms and ``null``, a positive body of relational
atoms over source and intermediate relations, equality / null / non-null
conditions, and negated atoms over intermediate relations (safe stratified
negation).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import DatalogError
from ..logic.atoms import Disequality, Equality, RelationalAtom, atoms_variables
from ..logic.terms import Variable
from ..model.schema import Schema


@dataclass(frozen=True)
class Rule:
    """``head ← body, conditions, ¬negated``."""

    head: RelationalAtom
    body: tuple[RelationalAtom, ...]
    negated: tuple[RelationalAtom, ...] = ()
    null_vars: tuple[Variable, ...] = ()
    nonnull_vars: tuple[Variable, ...] = ()
    equalities: tuple[Equality, ...] = ()
    disequalities: tuple[Disequality, ...] = ()

    @property
    def head_relation(self) -> str:
        return self.head.relation

    def body_variables(self) -> list[Variable]:
        return atoms_variables(self.body)

    def check_safety(self) -> None:
        """Heads, negations and conditions may only use positive body variables.

        Raises :class:`DatalogError` carrying the structured ``DLG001``
        diagnostic of the first unbound variable (see :mod:`repro.analysis`).
        """
        problems = unsafe_rule_variables(self)
        if problems:
            from ..analysis.diagnostics import diagnostic

            kind, var = problems[0]
            raise DatalogError(
                f"unsafe rule: {kind} variable {var!r} not bound in body: {self!r}",
                diagnostic=diagnostic(
                    "DLG001",
                    f"unsafe rule: {kind} variable {var!r} is not bound by a "
                    f"positive body atom in {self!r}",
                    subject=self.head_relation,
                ),
            )

    def __repr__(self) -> str:
        parts = [repr(a) for a in self.body]
        parts.extend(f"{v!r}=null" for v in self.null_vars)
        parts.extend(f"{v!r}!=null" for v in self.nonnull_vars)
        parts.extend(repr(e) for e in self.equalities)
        parts.extend(repr(d) for d in self.disequalities)
        parts.extend(f"not {a!r}" for a in self.negated)
        return f"{self.head!r} <- {', '.join(parts)}"


def unsafe_rule_variables(rule: Rule) -> list[tuple[str, Variable]]:
    """All safety violations of one rule as ``(kind, variable)`` pairs.

    ``kind`` is ``"head"``, ``"negated"`` or ``"condition"``.  Shared by
    :meth:`Rule.check_safety` (which raises on the first) and the ``DLG001``
    check of :mod:`repro.analysis.datalog_lint` (which reports them all).
    """
    bound = set(rule.body_variables())
    problems: list[tuple[str, Variable]] = []
    for var in rule.head.variables():
        if var not in bound:
            problems.append(("head", var))
    for atom in rule.negated:
        for var in atom.variables():
            if var not in bound:
                problems.append(("negated", var))
    for var in list(rule.null_vars) + list(rule.nonnull_vars):
        if var not in bound:
            problems.append(("condition", var))
    for condition in list(rule.equalities) + list(rule.disequalities):
        for var in condition.variables():
            if var not in bound:
                problems.append(("condition", var))
    return problems


@dataclass
class DatalogProgram:
    """A set of rules plus schema bookkeeping."""

    rules: list[Rule] = field(default_factory=list)
    source_schema: Schema | None = None
    target_schema: Schema | None = None
    #: name -> arity for intermediate (tmp) relations introduced by negation
    intermediates: dict[str, int] = field(default_factory=dict)

    def defined_relations(self) -> list[str]:
        """Relations appearing in some head, in first-definition order."""
        seen: dict[str, None] = {}
        for rule in self.rules:
            seen.setdefault(rule.head_relation, None)
        return list(seen)

    def rules_for(self, relation: str) -> list[Rule]:
        return [r for r in self.rules if r.head_relation == relation]

    def relation_arity(self, name: str) -> int | None:
        """The arity of ``name``, from any layer that knows it.

        Intermediates record their arity directly; schema relations take it
        from their attribute list; a defined relation known to neither falls
        back to its first rule's head width.  ``None`` for relations this
        program has never heard of.
        """
        if name in self.intermediates:
            return self.intermediates[name]
        for schema in (self.source_schema, self.target_schema):
            if schema is not None and name in schema:
                return schema.relation(name).arity
        for rule in self.rules:
            if rule.head_relation == name:
                return len(rule.head.terms)
        return None

    def target_rules(self) -> list[Rule]:
        """Rules defining target relations (not intermediates)."""
        return [r for r in self.rules if r.head_relation not in self.intermediates]

    def validate(self) -> None:
        """Check safety, definedness of negated relations, and non-recursion."""
        from .stratify import stratify

        for rule in self.rules:
            rule.check_safety()
        defined = set(self.defined_relations())
        for rule in self.rules:
            for atom in rule.negated:
                if atom.relation not in defined:
                    raise DatalogError(
                        f"negated relation {atom.relation!r} has no defining rules"
                    )
        stratify(self)  # raises on recursion

    def __iter__(self):
        return iter(self.rules)

    def __len__(self) -> int:
        return len(self.rules)

    def __repr__(self) -> str:
        return "DatalogProgram[\n  " + "\n  ".join(repr(r) for r in self.rules) + "\n]"
