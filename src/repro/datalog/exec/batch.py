"""The batch evaluation runtime: set-oriented execution of compiled plans.

Where the reference interpreter (:mod:`repro.datalog.engine`) re-derives the
join order for every partial binding and threads ``dict``-based environments
through a recursive generator, this runtime executes each rule's compiled
:class:`~repro.datalog.exec.plan.RulePlan` over **row batches**: bindings are
plain tuples of slot values, operators are applied batch-at-a-time, and the
per-binding work in the hot probe loop is a tuple build plus one dict lookup.

Three ingredients carry the speedup:

* **planned joins** — the join order is chosen once per rule from live
  relation statistics (each stratum is planned right before it runs, so
  intermediate relations have exact counts);
* **interned values** — every value loaded into the store is canonicalized
  through an :class:`Interner`, so equal values share one object and tuple
  comparisons in hash probes short-circuit on identity;
* **reusable indexes** — hash indexes are keyed ``(relation, positions)``
  and shared across all rules of a stratum and across strata until the
  indexed relation changes; cache hits are counted as ``eval.index_reuse``.

Observability: ``eval.batches`` counts processed scan batches,
``eval.index_reuse`` counts index cache hits, and the counters the reference
engine emits (``eval.source_tuples``, ``eval.rules_evaluated``,
``eval.derived_tuples``, ``eval.strata``, ``eval.tuples``) keep their
meaning, so run reports are comparable across engines.  With
``analyze=True`` — or whenever a metrics registry is active (see
:mod:`repro.obs.metrics`) — every operator additionally records rows
in/out, batches, wall seconds and index build-vs-probe splits into an
:class:`~repro.datalog.exec.profile.ExecutionProfile` (the data behind
``repro run --explain-analyze``), and the profile is folded into the
registry's ``exec.*`` / ``eval.*`` metric families on completion.
"""

from __future__ import annotations

from operator import itemgetter
from time import perf_counter
from typing import Any, Callable, Iterator

from ...errors import EvaluationError
from ...model.instance import Instance, Row
from ...model.values import NULL, LabeledNull
from ...obs import count, metrics_enabled, span, stage_report
from ..engine import EvaluationResult
from ..program import DatalogProgram
from ..stratify import stratify
from .plan import RulePlan, ValueExpr, plan_rule
from .profile import (
    ExecutionProfile,
    OperatorStats,
    RuleProfile,
    StratumProfile,
    emit_profile_metrics,
    operators_for_plan,
)

#: Rows per scan batch.  Large enough to amortize per-batch overhead, small
#: enough to keep intermediate buffers cache-friendly.
BATCH_SIZE = 1024


class Interner:
    """Canonicalizes equal values to one object (identity fast paths)."""

    __slots__ = ("_seen",)

    def __init__(self) -> None:
        self._seen: dict[Any, Any] = {}

    def intern(self, value: Any) -> Any:
        try:
            return self._seen.setdefault(value, value)
        except TypeError:  # pragma: no cover - unhashable values stay as-is
            return value

    def intern_row(self, row: Row) -> Row:
        seen = self._seen
        return tuple(seen.setdefault(v, v) for v in row)


class BatchStore:
    """Interned rows plus reusable hash indexes for every readable relation."""

    def __init__(self) -> None:
        self._rows: dict[str, list[Row]] = {}
        self._sets: dict[str, set[Row]] = {}
        self._indexes: dict[tuple[str, tuple[int, ...]], dict] = {}
        self.interner = Interner()

    def add_relation(
        self, name: str, rows, intern: bool = True
    ) -> None:
        interned = self.interner.intern_row if intern else tuple
        unique: dict[Row, None] = {}
        for row in rows:
            unique.setdefault(interned(row), None)
        self._rows[name] = list(unique)
        self._sets[name] = set(unique)
        # Replacing a relation invalidates every index built over it.
        for key in [k for k in self._indexes if k[0] == name]:
            del self._indexes[key]

    def rows(self, name: str) -> list[Row]:
        try:
            return self._rows[name]
        except KeyError:
            raise EvaluationError(f"unknown relation {name!r} in rule body") from None

    def row_set(self, name: str) -> set[Row]:
        return self._sets.get(name, set())

    def size(self, name: str) -> int:
        return len(self._rows.get(name, ()))

    def sizes(self) -> dict[str, int]:
        return {name: len(rows) for name, rows in self._rows.items()}

    def index(self, name: str, positions: tuple[int, ...]) -> dict:
        key = (name, positions)
        index = self._indexes.get(key)
        if index is not None:
            count("eval.index_reuse")
            return index
        index = {}
        if len(positions) == 1:
            position = positions[0]
            for row in self.rows(name):
                index.setdefault((row[position],), []).append(row)
        else:
            project = itemgetter(*positions)
            for row in self.rows(name):
                index.setdefault(project(row), []).append(row)
        self._indexes[key] = index
        return index


def _compile_expr(expr: ValueExpr) -> Callable[[Row], Any]:
    """Compile a :data:`ValueExpr` into a closure over the slot tuple."""
    kind = expr[0]
    if kind == "slot":
        position = expr[1]
        return lambda slots: slots[position]
    if kind == "const":
        value = expr[1]
        return lambda slots: value
    if kind == "null":
        return lambda slots: NULL
    functor = expr[1]
    args = tuple(_compile_expr(a) for a in expr[2])
    return lambda slots: LabeledNull(functor, tuple(f(slots) for f in args))


def _capture_extractor(capture: tuple[tuple[int, int], ...]):
    """Row -> tuple of captured values, or None when nothing is captured."""
    if not capture:
        return None
    positions = tuple(p for p, _ in capture)
    if len(positions) == 1:
        position = positions[0]
        return lambda row: (row[position],)
    return itemgetter(*positions)


def _scan_batches(
    scan, rows: list[Row], batch_size: int
) -> Iterator[list[Row]]:
    """Filtered, captured slot tuples of the scanned relation, in batches."""
    plain = not (scan.const_eq or scan.null_eq or scan.same)
    identity = plain and [p for p, _ in scan.capture] == list(
        range(len(scan.capture))
    )
    if identity and scan.capture:
        # Common case: first atom binds all-new distinct variables over the
        # full row — the stored rows *are* the slot tuples, zero copies.
        for start in range(0, len(rows), batch_size):
            yield rows[start:start + batch_size]
        return
    extract = _capture_extractor(scan.capture)
    const_eq = scan.const_eq
    null_eq = scan.null_eq
    same = scan.same
    batch: list[Row] = []
    append = batch.append
    for row in rows:
        ok = True
        for position, value in const_eq:
            if row[position] != value:
                ok = False
                break
        if ok and null_eq:
            for position in null_eq:
                if row[position] != NULL:
                    ok = False
                    break
        if ok and same:
            for left, right in same:
                if row[left] != row[right]:
                    ok = False
                    break
        if not ok:
            continue
        append(extract(row) if extract is not None else ())
        if len(batch) >= batch_size:
            yield batch
            batch = []
            append = batch.append
    if batch:
        yield batch


def _row_builder(exprs: tuple[ValueExpr, ...]) -> Callable[[Row], Row]:
    """Slot tuple -> output row.  All-slot templates compile to itemgetter."""
    if all(e[0] == "slot" for e in exprs):
        positions = tuple(e[1] for e in exprs)
        if len(positions) == 1:
            position = positions[0]
            return lambda slots: (slots[position],)
        if positions:
            return itemgetter(*positions)
        return lambda slots: ()
    build = tuple(_compile_expr(e) for e in exprs)
    return lambda slots: tuple(f(slots) for f in build)


def _join_stage(
    join, store: BatchStore, stats: OperatorStats | None = None
) -> Callable[[list[Row]], list[Row]]:
    """Compile one join into a batch -> batch callable (index built now)."""
    if stats is None:
        index = store.index(join.relation, join.key_positions)
    else:
        cached = (join.relation, join.key_positions) in store._indexes
        build_started = perf_counter()
        index = store.index(join.relation, join.key_positions)
        stats.build_seconds += perf_counter() - build_started
        if cached:
            stats.index_hits += 1
        else:
            stats.index_misses += 1
    key_slots = [e[1] if e[0] == "slot" else None for e in join.key_exprs]
    if all(s is not None for s in key_slots):
        if len(key_slots) == 1:
            position = key_slots[0]
            probe = lambda slots: (slots[position],)
        else:
            probe = itemgetter(*key_slots)
    else:
        key_funcs = tuple(_compile_expr(e) for e in join.key_exprs)
        probe = lambda slots: tuple(f(slots) for f in key_funcs)
    extract = _capture_extractor(join.capture)
    same = join.same

    def stage(batch: list[Row]) -> list[Row]:
        out: list[Row] = []
        append = out.append
        get = index.get
        if same:
            for slots in batch:
                matches = get(probe(slots))
                if not matches:
                    continue
                for row in matches:
                    if any(row[a] != row[b] for a, b in same):
                        continue
                    append(slots + extract(row) if extract else slots)
        elif extract is not None:
            for slots in batch:
                matches = get(probe(slots))
                if not matches:
                    continue
                for row in matches:
                    append(slots + extract(row))
        else:  # pure semi-join: keep each binding once per any match
            for slots in batch:
                if get(probe(slots)):
                    append(slots)
        return out

    return stage


def _filter_stage(filter_op) -> Callable[[list[Row]], list[Row]]:
    kind = filter_op.kind
    left = _compile_expr(filter_op.left)
    if kind == "null":
        return lambda batch: [s for s in batch if left(s) == NULL]
    if kind == "nonnull":
        return lambda batch: [s for s in batch if left(s) != NULL]
    right = _compile_expr(filter_op.right)
    if kind == "eq":
        return lambda batch: [s for s in batch if left(s) == right(s)]
    return lambda batch: [s for s in batch if left(s) != right(s)]


def _antijoin_stage(antijoin, store: BatchStore) -> Callable[[list[Row]], list[Row]]:
    negated = store.row_set(antijoin.relation)
    if not negated:
        return lambda batch: batch
    build = _row_builder(antijoin.exprs)
    return lambda batch: [s for s in batch if build(s) not in negated]


def run_plan(
    plan: RulePlan,
    store: BatchStore,
    batch_size: int = BATCH_SIZE,
    scan_rows: list[Row] | None = None,
    profile: RuleProfile | None = None,
) -> list[Row]:
    """All head rows derived by one compiled rule against the store.

    ``scan_rows`` overrides the scanned relation's rows — the partitioned
    workers mode feeds each worker its slice of the outer scan while every
    joined or negated relation stays complete.

    ``profile`` switches on per-operator measurement: its
    :class:`~repro.datalog.exec.profile.OperatorStats` (created with
    :func:`~repro.datalog.exec.profile.operators_for_plan`, so they mirror
    this plan's pipeline) accumulate rows in/out, batches and wall seconds.
    When ``profile`` is None the original uninstrumented loop runs.
    """
    if profile is not None:
        return _run_plan_profiled(plan, store, batch_size, scan_rows, profile)
    derived: dict[Row, None] = {}
    if plan.scan is None:
        batches: Iterator[list[Row]] = iter([[()]])
    else:
        rows = scan_rows if scan_rows is not None else store.rows(plan.scan.relation)
        batches = _scan_batches(plan.scan, rows, batch_size)
    # Compile every stage once per rule: joins build (or reuse) their index
    # here, filters/antijoins/projection become batch -> batch closures.
    stages: list[Callable[[list[Row]], list[Row]]] = []
    for join in plan.joins:
        stages.append(_join_stage(join, store))
    for filter_op in plan.filters:
        stages.append(_filter_stage(filter_op))
    for antijoin in plan.antijoins:
        stages.append(_antijoin_stage(antijoin, store))
    project = _row_builder(plan.project.exprs)
    setdefault = derived.setdefault
    for batch in batches:
        count("eval.batches")
        for stage in stages:
            batch = stage(batch)
            if not batch:
                break
        else:
            for slots in batch:
                setdefault(project(slots), None)
    return list(derived)


_DONE = object()  # sentinel: the profiled loop times each batch fetch


def _run_plan_profiled(
    plan: RulePlan,
    store: BatchStore,
    batch_size: int,
    scan_rows: list[Row] | None,
    profile: RuleProfile,
) -> list[Row]:
    """The measured twin of :func:`run_plan`.

    Timing is batch-granular (two ``perf_counter`` reads per operator per
    batch), which keeps the overhead well under the 5% budget pinned by
    ``benchmarks/test_bench_scaling.py`` while preserving the invariant the
    EXPLAIN ANALYZE tests rely on: each operator's ``rows_in`` equals the
    previous operator's ``rows_out`` (a batch that empties out early simply
    contributes zero to both sides downstream).
    """
    started = perf_counter()
    ops = profile.operators
    scan_stats = ops[0] if plan.scan is not None else None
    pipeline_stats = ops[1:-1] if scan_stats is not None else ops[:-1]
    project_stats = ops[-1]
    derived: dict[Row, None] = {}
    if plan.scan is None:
        batches: Iterator[list[Row]] = iter([[()]])
    else:
        rows = scan_rows if scan_rows is not None else store.rows(plan.scan.relation)
        scan_stats.rows_in += len(rows)
        batches = _scan_batches(plan.scan, rows, batch_size)
    stages: list[tuple[Callable[[list[Row]], list[Row]], OperatorStats]] = []
    cursor = iter(pipeline_stats)
    for join in plan.joins:
        stats = next(cursor)
        stages.append((_join_stage(join, store, stats), stats))
    for filter_op in plan.filters:
        stages.append((_filter_stage(filter_op), next(cursor)))
    for antijoin in plan.antijoins:
        stages.append((_antijoin_stage(antijoin, store), next(cursor)))
    project = _row_builder(plan.project.exprs)
    setdefault = derived.setdefault
    while True:
        fetch_started = perf_counter()
        batch = next(batches, _DONE)
        if scan_stats is not None:
            scan_stats.seconds += perf_counter() - fetch_started
        if batch is _DONE:
            break
        count("eval.batches")
        if scan_stats is not None:
            scan_stats.batches += 1
            scan_stats.rows_out += len(batch)
        emptied = False
        for stage, stats in stages:
            stats.rows_in += len(batch)
            stats.batches += 1
            stage_started = perf_counter()
            batch = stage(batch)
            stats.seconds += perf_counter() - stage_started
            stats.rows_out += len(batch)
            if not batch:
                emptied = True
                break
        if emptied:
            continue
        project_stats.rows_in += len(batch)
        project_stats.batches += 1
        project_started = perf_counter()
        for slots in batch:
            setdefault(project(slots), None)
        project_stats.seconds += perf_counter() - project_started
        project_stats.rows_out += len(batch)
    profile.rows_unique += len(derived)
    profile.seconds += perf_counter() - started
    return list(derived)


def evaluate_batch(
    program: DatalogProgram,
    source: Instance,
    workers: int | None = None,
    batch_size: int = BATCH_SIZE,
    min_partition_rows: int | None = None,
    analyze: bool = False,
) -> EvaluationResult:
    """Run the transformation on the batch runtime.

    Drop-in equivalent of :func:`repro.datalog.engine.evaluate` — same
    :class:`EvaluationResult`, same counters plus ``eval.batches`` and
    ``eval.index_reuse`` — but each stratum is compiled to operator plans
    (with exact statistics) before it runs.  With ``workers=N > 1`` the
    outer scan of sufficiently large rules is partitioned across a process
    pool (see :mod:`repro.datalog.exec.workers`).

    ``analyze=True`` — or an active metrics registry — collects an
    :class:`~repro.datalog.exec.profile.ExecutionProfile` (per-operator
    rows/batches/seconds, EXPLAIN ANALYZE's data) on
    ``EvaluationResult.profile`` and records its totals into the registry.
    """
    if program.target_schema is None:
        raise EvaluationError("program has no target schema")
    program.validate()
    if workers is not None and workers > 1:
        from .workers import run_plan_partitioned
    collect = analyze or metrics_enabled()
    profile = (
        ExecutionProfile(engine="batch", workers=workers) if collect else None
    )
    run_started = perf_counter()
    with span("stage.evaluate", rules=len(program.rules), engine="batch") as trace:
        store = BatchStore()
        source_rows = 0
        for name, relation in source.relations.items():
            store.add_relation(name, relation.rows)
            source_rows += store.size(name)
        count("eval.source_tuples", source_rows)

        order = stratify(program)
        computed: dict[str, list[Row]] = {}
        rule_counts: dict[int, int] = {}
        rule_index = {id(rule): i for i, rule in enumerate(program.rules)}
        for stratum, relation in enumerate(order):
            with span(
                "eval.stratum", stratum=stratum, relation=relation
            ) as stratum_trace:
                stratum_profile: StratumProfile | None = None
                if profile is not None:
                    stratum_started = perf_counter()
                    stratum_profile = StratumProfile(
                        stratum=stratum, relation=relation
                    )
                    profile.strata.append(stratum_profile)
                stats = store.sizes()
                rows: dict[Row, None] = {}
                for rule in program.rules_for(relation):
                    plan = plan_rule(rule, stats)
                    rule_profile: RuleProfile | None = None
                    if stratum_profile is not None:
                        rule_profile = RuleProfile(
                            relation=relation,
                            rule_index=rule_index[id(rule)],
                            n_slots=plan.n_slots,
                            operators=operators_for_plan(plan),
                        )
                        stratum_profile.rules.append(rule_profile)
                    if workers is not None and workers > 1:
                        kwargs = {"batch_size": batch_size}
                        if min_partition_rows is not None:
                            kwargs["min_partition_rows"] = min_partition_rows
                        derived = run_plan_partitioned(
                            plan, store, workers, profile=rule_profile, **kwargs
                        )
                    else:
                        derived = run_plan(
                            plan,
                            store,
                            batch_size=batch_size,
                            profile=rule_profile,
                        )
                    rule_counts[rule_index[id(rule)]] = len(derived)
                    count("eval.rules_evaluated")
                    count("eval.derived_tuples", len(derived))
                    for row in derived:
                        rows.setdefault(row, None)
                count("eval.strata")
                count("eval.tuples", len(rows))
                stratum_trace.set(tuples=len(rows))
                if stratum_profile is not None:
                    stratum_profile.rows = len(rows)
                    stratum_profile.seconds = perf_counter() - stratum_started
                computed[relation] = list(rows)
                # Derived rows are built from already-interned slot values
                # (plus fresh LabeledNulls), so re-interning buys nothing.
                store.add_relation(relation, list(rows), intern=False)

        target = Instance(program.target_schema)
        for relation in program.target_schema.relation_names():
            if relation in computed:
                target.add_all(relation, computed[relation])
        intermediates = {
            name: computed.get(name, []) for name in program.intermediates
        }
    if profile is not None:
        profile.source_rows = source_rows
        profile.target_rows = target.total_size()
        profile.seconds = perf_counter() - run_started
        emit_profile_metrics(profile)
    return EvaluationResult(
        target=target,
        intermediates=intermediates,
        rule_counts=[rule_counts.get(i, 0) for i in range(len(program.rules))],
        run_report=stage_report(trace, "evaluation"),
        profile=profile,
    )
