"""Planned, set-oriented evaluation runtime for generated Datalog programs.

Layers:

* :mod:`repro.datalog.exec.plan` — per-rule operator trees
  (``scan -> hash-join* -> filter* -> antijoin* -> project``) with the join
  order chosen once per rule from relation statistics;
* :mod:`repro.datalog.exec.batch` — the batch executor: operators over row
  batches with interned values and per-stratum reusable hash indexes;
* :mod:`repro.datalog.exec.workers` — opt-in ``workers=N`` mode partitioning
  the outer scan across a process pool for large sources;
* :mod:`repro.datalog.exec.profile` — the measured operator/rule/stratum
  profiles behind ``repro run --explain-analyze`` and the ``exec.*``
  metric families.

The reference interpreter (:mod:`repro.datalog.engine`) stays the oracle:
``tests/test_engine_differential.py`` proves both engines and the SQLite
backend agree on every bundled scenario, the synthetic workloads and
hypothesis-generated problems.  See ``docs/ENGINE.md``.
"""

from .batch import BATCH_SIZE, BatchStore, Interner, evaluate_batch, run_plan
from .profile import (
    ExecutionProfile,
    OperatorStats,
    RuleProfile,
    StratumProfile,
    emit_profile_metrics,
    operators_for_plan,
)
from .plan import (
    AntiJoinOp,
    FilterOp,
    JoinOp,
    ProgramPlan,
    ProjectOp,
    RulePlan,
    ScanOp,
    order_atoms,
    plan_program,
    plan_rule,
)
from .workers import MIN_PARTITION_ROWS, run_plan_partitioned

__all__ = [
    "AntiJoinOp",
    "BATCH_SIZE",
    "BatchStore",
    "ExecutionProfile",
    "FilterOp",
    "Interner",
    "JoinOp",
    "MIN_PARTITION_ROWS",
    "OperatorStats",
    "ProgramPlan",
    "ProjectOp",
    "RulePlan",
    "RuleProfile",
    "ScanOp",
    "StratumProfile",
    "emit_profile_metrics",
    "evaluate_batch",
    "operators_for_plan",
    "order_atoms",
    "plan_program",
    "plan_rule",
    "run_plan",
    "run_plan_partitioned",
]
