"""Opt-in partitioned execution: the outer scan across a process pool.

``evaluate_batch(program, source, workers=N)`` routes every sufficiently
large rule through :func:`run_plan_partitioned`: the rows of the rule's
outer scan are split round-robin into ``N`` slices, each slice is evaluated
by a worker process against a store holding the *complete* joined and
negated relations (only the scan is partitioned — joins and anti-joins must
see every row), and the parent merges the per-slice results in slice order,
deduplicating across slice boundaries.

The payload shipped to a worker is ``(plan, scan slice, {relation: rows},
collect_profile)``.  Plans are picklable by construction (tagged tuples, no
closures) and evaluation results (constants, ``NULL``, ``LabeledNull``)
round-trip through pickle by value, so merging preserves set semantics.

Worker processes start without the parent's contextvars, so each worker
runs its slice under a private :class:`~repro.obs.tracer.Tracer` and ships
the counters (``eval.batches``, ``eval.index_reuse``) back with the rows;
the parent replays them into its active tracer.  Per-operator profiles
(when EXPLAIN ANALYZE or a metrics registry is collecting) come back the
same way and are folded with :meth:`RuleProfile.merge` — rows and seconds
add across disjoint slices, while the parent's post-merge deduplication
count overwrites ``rows_unique``.  Note that ``eval.batches`` and index
hit/miss splits are *not* comparable with a serial run: each worker batches
its own slice and builds its own indexes.

Partitioning only pays off when the scan is large; rules whose outer
relation has fewer than :data:`MIN_PARTITION_ROWS` rows run inline in the
parent.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from time import perf_counter

from ...model.instance import Row
from ...obs import Tracer, count, use_tracer
from .batch import BATCH_SIZE, BatchStore, run_plan
from .plan import RulePlan
from .profile import RuleProfile, operators_for_plan

#: Below this many outer-scan rows the pool overhead dominates: run inline.
MIN_PARTITION_ROWS = 2048


def _relations_read(plan: RulePlan) -> list[str]:
    """Relations the plan probes or negates (the scan is shipped separately)."""
    names: dict[str, None] = {}
    for join in plan.joins:
        names.setdefault(join.relation, None)
    for antijoin in plan.antijoins:
        names.setdefault(antijoin.relation, None)
    return list(names)


def _run_slice(payload) -> tuple[list[Row], dict[str, int], RuleProfile | None]:
    """Worker entry point: evaluate one plan over one scan slice.

    Returns ``(rows, tracer counters, slice profile or None)`` so nothing
    measured inside the pool is lost: the parent replays the counters and
    merges the profile.
    """
    plan, scan_rows, relations, collect_profile = payload
    store = BatchStore()
    for name, rows in relations.items():
        store.add_relation(name, rows)
    if plan.scan is not None and plan.scan.relation not in relations:
        store.add_relation(plan.scan.relation, scan_rows)
    profile = None
    if collect_profile:
        profile = RuleProfile(
            relation=plan.project.relation,
            rule_index=-1,  # a slice: the parent's profile has the real index
            n_slots=plan.n_slots,
            operators=operators_for_plan(plan),
        )
    tracer = Tracer()
    with use_tracer(tracer):
        derived = run_plan(plan, store, scan_rows=scan_rows, profile=profile)
    return derived, tracer.counters, profile


def run_plan_partitioned(
    plan: RulePlan,
    store: BatchStore,
    workers: int,
    batch_size: int = BATCH_SIZE,
    min_partition_rows: int = MIN_PARTITION_ROWS,
    profile: RuleProfile | None = None,
) -> list[Row]:
    """Derive one rule's head rows, partitioning the outer scan over a pool.

    Falls back to the inline :func:`run_plan` when the rule has no scan,
    the pool would have one slice, or the scan is too small to amortize
    process startup and payload pickling.  With ``profile`` set, the
    per-slice profiles are merged into it (see module docstring).
    """
    if plan.scan is None or workers <= 1:
        return run_plan(plan, store, batch_size=batch_size, profile=profile)
    scan_rows = store.rows(plan.scan.relation)
    if len(scan_rows) < min_partition_rows:
        return run_plan(plan, store, batch_size=batch_size, profile=profile)
    started = perf_counter()
    relations = {name: store.rows(name) for name in _relations_read(plan)}
    slices = [scan_rows[i::workers] for i in range(workers)]
    payloads = [
        (plan, part, relations, profile is not None)
        for part in slices
        if part
    ]
    derived: dict[Row, None] = {}
    with ProcessPoolExecutor(max_workers=workers) as pool:
        for rows, counters, slice_profile in pool.map(_run_slice, payloads):
            for name, value in counters.items():
                count(name, value)
            if profile is not None and slice_profile is not None:
                profile.merge(slice_profile)
            for row in rows:
                derived.setdefault(row, None)
    if profile is not None:
        # Slice-local uniques overcount rows shared across slices; the
        # merged dict here is the rule's real post-dedup row count.  The
        # rule's wall time is the parent's, not the sum of worker CPU.
        profile.rows_unique = len(derived)
        profile.seconds = perf_counter() - started
    return list(derived)
