"""Opt-in partitioned execution: the outer scan across a process pool.

``evaluate_batch(program, source, workers=N)`` routes every sufficiently
large rule through :func:`run_plan_partitioned`: the rows of the rule's
outer scan are split round-robin into ``N`` slices, each slice is evaluated
by a worker process against a store holding the *complete* joined and
negated relations (only the scan is partitioned — joins and anti-joins must
see every row), and the parent merges the per-slice results in slice order,
deduplicating across slice boundaries.

The payload shipped to a worker is ``(plan, scan slice, {relation: rows})``.
Plans are picklable by construction (tagged tuples, no closures) and
evaluation results (constants, ``NULL``, ``LabeledNull``) round-trip through
pickle by value, so merging preserves set semantics.  Worker processes run
without the parent's tracer: ``eval.batches`` / ``eval.index_reuse`` only
count the parent's share under ``workers=N`` (documented in
``docs/ENGINE.md``).

Partitioning only pays off when the scan is large; rules whose outer
relation has fewer than :data:`MIN_PARTITION_ROWS` rows run inline in the
parent.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor

from ...model.instance import Row
from .batch import BATCH_SIZE, BatchStore, run_plan
from .plan import RulePlan

#: Below this many outer-scan rows the pool overhead dominates: run inline.
MIN_PARTITION_ROWS = 2048


def _relations_read(plan: RulePlan) -> list[str]:
    """Relations the plan probes or negates (the scan is shipped separately)."""
    names: dict[str, None] = {}
    for join in plan.joins:
        names.setdefault(join.relation, None)
    for antijoin in plan.antijoins:
        names.setdefault(antijoin.relation, None)
    return list(names)


def _run_slice(payload) -> list[Row]:
    """Worker entry point: evaluate one plan over one scan slice."""
    plan, scan_rows, relations = payload
    store = BatchStore()
    for name, rows in relations.items():
        store.add_relation(name, rows)
    if plan.scan is not None and plan.scan.relation not in relations:
        store.add_relation(plan.scan.relation, scan_rows)
    return run_plan(plan, store, scan_rows=scan_rows)


def run_plan_partitioned(
    plan: RulePlan,
    store: BatchStore,
    workers: int,
    batch_size: int = BATCH_SIZE,
    min_partition_rows: int = MIN_PARTITION_ROWS,
) -> list[Row]:
    """Derive one rule's head rows, partitioning the outer scan over a pool.

    Falls back to the inline :func:`run_plan` when the rule has no scan,
    the pool would have one slice, or the scan is too small to amortize
    process startup and payload pickling.
    """
    if plan.scan is None or workers <= 1:
        return run_plan(plan, store, batch_size=batch_size)
    scan_rows = store.rows(plan.scan.relation)
    if len(scan_rows) < min_partition_rows:
        return run_plan(plan, store, batch_size=batch_size)
    relations = {name: store.rows(name) for name in _relations_read(plan)}
    slices = [scan_rows[i::workers] for i in range(workers)]
    payloads = [(plan, part, relations) for part in slices if part]
    derived: dict[Row, None] = {}
    with ProcessPoolExecutor(max_workers=workers) as pool:
        for rows in pool.map(_run_slice, payloads):
            for row in rows:
                derived.setdefault(row, None)
    return list(derived)
