"""Execution profiles: the data behind EXPLAIN ANALYZE.

A profile is the *measured* twin of a compiled plan: one
:class:`OperatorStats` per operator of every :class:`RulePlan` (rows in and
out, batches, wall seconds, index build-vs-probe split), rolled up into
:class:`RuleProfile`, :class:`StratumProfile` and :class:`ExecutionProfile`.
The batch runtime fills these in when ``evaluate_batch(..., analyze=True)``
or an active metrics registry asks for collection; the reference
interpreter produces the rule-level rollups (it has no static operator
pipeline to annotate).

Invariants the differential tests pin down (``tests/test_explain_analyze.py``):

* within one rule pipeline, every operator's ``rows_in`` equals the
  previous operator's ``rows_out`` (batches that empty out early contribute
  zero to both sides);
* a rule's ``rows_unique`` equals the engine's per-rule derived count
  (``EvaluationResult.rule_counts``);
* a stratum's ``rows`` equals the materialized relation's size after
  cross-rule deduplication.

Profiles are plain picklable dataclasses, so ``workers=N`` subprocesses
ship their per-slice profiles back to the parent, which folds them with
:meth:`RuleProfile.merge` (all fields are additive).  Rendering
(:meth:`ExecutionProfile.render`) produces the annotated operator trees of
``repro run --explain-analyze`` / ``repro plan --analyze``;
:meth:`ExecutionProfile.to_dict` is the JSON form.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ...obs import metric_inc, metric_observe, metrics_enabled
from .plan import RulePlan


@dataclass
class OperatorStats:
    """Measured totals for one operator of one rule pipeline."""

    kind: str  # scan | join | filter | antijoin | project
    description: str  # the operator's static rendering (plan text)
    relation: str | None = None  # the relation read (scan/join/antijoin)
    rows_in: int = 0
    rows_out: int = 0
    batches: int = 0
    seconds: float = 0.0
    #: joins only: seconds spent building (or fetching) the hash index
    build_seconds: float = 0.0
    index_hits: int = 0
    index_misses: int = 0

    @property
    def selectivity(self) -> float | None:
        """rows_out / rows_in, or None when nothing flowed in."""
        if self.rows_in <= 0:
            return None
        return self.rows_out / self.rows_in

    def merge(self, other: "OperatorStats") -> None:
        self.rows_in += other.rows_in
        self.rows_out += other.rows_out
        self.batches += other.batches
        self.seconds += other.seconds
        self.build_seconds += other.build_seconds
        self.index_hits += other.index_hits
        self.index_misses += other.index_misses

    def annotate(self) -> str:
        """The measured annotation appended to the static operator text."""
        parts = [f"rows_in={self.rows_in}", f"rows_out={self.rows_out}"]
        if self.kind == "scan":
            parts.append(f"batches={self.batches}")
        selectivity = self.selectivity
        if self.kind in ("filter", "antijoin") and selectivity is not None:
            parts.append(f"sel={selectivity:.2f}")
        if self.kind == "join":
            source = "hit" if self.index_hits else "built"
            parts.append(
                f"index={source} build={self.build_seconds * 1000:.2f}ms"
            )
        parts.append(f"{self.seconds * 1000:.2f}ms")
        return "  ".join(parts)

    def to_dict(self) -> dict[str, Any]:
        data: dict[str, Any] = {
            "kind": self.kind,
            "operator": self.description,
            "rows_in": self.rows_in,
            "rows_out": self.rows_out,
            "batches": self.batches,
            "seconds": self.seconds,
        }
        if self.relation is not None:
            data["relation"] = self.relation
        if self.kind == "join":
            data["build_seconds"] = self.build_seconds
            data["index_hits"] = self.index_hits
            data["index_misses"] = self.index_misses
        selectivity = self.selectivity
        if selectivity is not None:
            data["selectivity"] = selectivity
        return data


def operators_for_plan(plan: RulePlan) -> list[OperatorStats]:
    """Fresh, zeroed operator stats mirroring one compiled rule plan."""
    stats: list[OperatorStats] = []
    if plan.scan is not None:
        stats.append(
            OperatorStats(
                kind="scan",
                description=plan.scan.render(),
                relation=plan.scan.relation,
            )
        )
    for join in plan.joins:
        stats.append(
            OperatorStats(
                kind="join", description=join.render(), relation=join.relation
            )
        )
    for filter_op in plan.filters:
        stats.append(OperatorStats(kind="filter", description=filter_op.render()))
    for antijoin in plan.antijoins:
        stats.append(
            OperatorStats(
                kind="antijoin",
                description=antijoin.render(),
                relation=antijoin.relation,
            )
        )
    stats.append(
        OperatorStats(
            kind="project",
            description=plan.project.render(),
            relation=plan.project.relation,
        )
    )
    return stats


@dataclass
class RuleProfile:
    """One rule's measured pipeline: operator stats plus derived-row totals."""

    relation: str  # the head relation
    rule_index: int  # index into ``program.rules``
    n_slots: int = 0
    operators: list[OperatorStats] = field(default_factory=list)
    #: distinct head rows after the rule's own deduplication
    rows_unique: int = 0
    seconds: float = 0.0

    def merge(self, other: "RuleProfile") -> None:
        """Fold a partitioned slice's profile into this one (additive)."""
        if len(other.operators) != len(self.operators):
            raise ValueError(
                f"cannot merge rule profiles with {len(other.operators)} vs "
                f"{len(self.operators)} operators"
            )
        for mine, theirs in zip(self.operators, other.operators):
            mine.merge(theirs)
        self.rows_unique += other.rows_unique
        self.seconds += other.seconds

    def to_dict(self) -> dict[str, Any]:
        return {
            "relation": self.relation,
            "rule": self.rule_index,
            "slots": self.n_slots,
            "rows_unique": self.rows_unique,
            "seconds": self.seconds,
            "operators": [op.to_dict() for op in self.operators],
        }


@dataclass
class StratumProfile:
    """One stratum: its rules plus the post-deduplication relation size."""

    stratum: int
    relation: str
    rules: list[RuleProfile] = field(default_factory=list)
    rows: int = 0  # materialized rows after cross-rule deduplication
    seconds: float = 0.0

    def to_dict(self) -> dict[str, Any]:
        return {
            "stratum": self.stratum,
            "relation": self.relation,
            "rows": self.rows,
            "seconds": self.seconds,
            "rules": [rule.to_dict() for rule in self.rules],
        }


@dataclass
class ExecutionProfile:
    """The whole run: per-stratum profiles plus run-level totals."""

    engine: str = "batch"
    workers: int | None = None
    source_rows: int = 0
    target_rows: int = 0
    seconds: float = 0.0
    strata: list[StratumProfile] = field(default_factory=list)

    def rule_profiles(self) -> list[RuleProfile]:
        return [rule for stratum in self.strata for rule in stratum.rules]

    def operator_totals(self) -> dict[str, OperatorStats]:
        """Per-kind rollups over every rule (for the metrics exporters)."""
        totals: dict[str, OperatorStats] = {}
        for rule in self.rule_profiles():
            for op in rule.operators:
                rollup = totals.get(op.kind)
                if rollup is None:
                    totals[op.kind] = rollup = OperatorStats(
                        kind=op.kind, description=f"all {op.kind} operators"
                    )
                rollup.merge(op)
        return totals

    def render(self) -> str:
        """The annotated operator trees (EXPLAIN ANALYZE text output)."""
        header = f"explain analyze ({self.engine} engine"
        if self.workers:
            header += f", workers={self.workers}"
        header += (
            f"): {self.source_rows} source rows -> {self.target_rows} "
            f"target rows in {self.seconds * 1000:.2f} ms"
        )
        lines = [header]
        for stratum in self.strata:
            lines.append(
                f"stratum {stratum.stratum}: {stratum.relation}  "
                f"(rows={stratum.rows}, {stratum.seconds * 1000:.2f} ms)"
            )
            for rule in stratum.rules:
                lines.append(
                    f" rule {rule.rule_index} ({rule.n_slots} slots, "
                    f"unique={rule.rows_unique}, {rule.seconds * 1000:.2f} ms):"
                )
                if not rule.operators:
                    lines.append("  (no operator pipeline: reference engine)")
                for op in rule.operators:
                    lines.append(f"  {op.description}")
                    lines.append(f"    -> {op.annotate()}")
        return "\n".join(lines)

    def to_dict(self) -> dict[str, Any]:
        data: dict[str, Any] = {
            "engine": self.engine,
            "source_rows": self.source_rows,
            "target_rows": self.target_rows,
            "seconds": self.seconds,
            "strata": [stratum.to_dict() for stratum in self.strata],
        }
        if self.workers is not None:
            data["workers"] = self.workers
        return data


def emit_profile_metrics(profile: ExecutionProfile) -> None:
    """Record a finished profile into the active metrics registry.

    Both engines call this once per evaluation, so the metric families are
    engine-comparable: ``eval.rows{kind,engine}``, ``eval.run.seconds``,
    ``eval.rule.seconds{relation}``, and — batch engine only, since only it
    has an operator pipeline — ``exec.operator.rows_in/rows_out/seconds{op}``,
    ``exec.batches`` and ``exec.index.lookups{result}``.  A no-op when no
    registry is installed (:func:`repro.obs.metrics_enabled`).
    """
    if not metrics_enabled():
        return
    engine = profile.engine
    metric_inc("eval.rows", profile.source_rows, engine=engine, kind="source")
    metric_inc("eval.rows", profile.target_rows, engine=engine, kind="target")
    metric_inc("eval.strata", len(profile.strata), engine=engine)
    metric_observe("eval.run.seconds", profile.seconds, engine=engine)
    for stratum in profile.strata:
        for rule in stratum.rules:
            metric_inc("eval.rules", 1, engine=engine)
            metric_inc(
                "eval.rows", rule.rows_unique, engine=engine, kind="derived"
            )
            metric_observe(
                "eval.rule.seconds",
                rule.seconds,
                engine=engine,
                relation=rule.relation,
            )
    for kind, totals in sorted(profile.operator_totals().items()):
        metric_inc(
            "exec.operator.rows_in", totals.rows_in, engine=engine, op=kind
        )
        metric_inc(
            "exec.operator.rows_out", totals.rows_out, engine=engine, op=kind
        )
        metric_observe(
            "exec.operator.seconds", totals.seconds, engine=engine, op=kind
        )
        if kind == "scan":
            metric_inc("exec.batches", totals.batches, engine=engine)
        elif kind == "join":
            metric_inc(
                "exec.index.lookups",
                totals.index_hits,
                engine=engine,
                result="hit",
            )
            metric_inc(
                "exec.index.lookups",
                totals.index_misses,
                engine=engine,
                result="miss",
            )
