"""Rule compilation: explicit set-oriented operator trees.

Every rule of a generated program is compiled once into a linear operator
pipeline::

    scan -> indexed hash-join* -> filter* -> antijoin* -> project

* the *scan* reads one body atom's relation, applies its constant / null
  position filters, and captures the atom's variables into numbered slots;
* each *join* probes a hash index of another body atom's relation on the
  positions already bound (by slots or constants) and extends the slot
  tuple with the atom's new variables;
* *filters* evaluate the rule's ``=null`` / ``!=null`` / equality /
  disequality conditions over slots;
* *antijoins* implement safe stratified negation: a candidate binding is
  dropped when the negated relation contains the instantiated tuple;
* the *project* builds the head row, turning Skolem functor terms into
  :class:`repro.model.values.LabeledNull` invented values.

The join order is chosen **once per rule** from relation statistics (row
counts), not per binding like the reference interpreter: the planner greedily
starts from the most selective atom (smallest relation after constant
filters) and repeatedly picks the atom with the most bound positions,
breaking ties by relation size and original atom order.  Plans mention only
slot numbers, relation names, positions, constants and Skolem functors, so
their rendering is deterministic across runs (logical variable display names
are not).

Value expressions (probe keys, filter operands, head templates) are small
tagged tuples — ``("slot", i)``, ``("const", v)``, ``("null",)`` and
``("skolem", functor, args)`` — kept picklable so whole plans can be shipped
to worker processes by :mod:`repro.datalog.exec.workers`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from ...errors import EvaluationError
from ...logic.atoms import RelationalAtom
from ...logic.terms import Constant, NullTerm, SkolemTerm, Term, Variable
from ..program import DatalogProgram, Rule
from ..stratify import stratify

#: A compiled value expression: ("slot", i) | ("const", v) | ("null",)
#: | ("skolem", functor, tuple[ValueExpr, ...]).
ValueExpr = tuple


def compile_term(term: Term, slots: Mapping[Variable, int]) -> ValueExpr:
    """Compile a head/condition term to a :data:`ValueExpr` over slots."""
    if isinstance(term, Variable):
        try:
            return ("slot", slots[term])
        except KeyError:
            raise EvaluationError(f"unbound variable {term!r}") from None
    if isinstance(term, NullTerm):
        return ("null",)
    if isinstance(term, Constant):
        return ("const", term.value)
    if isinstance(term, SkolemTerm):
        return (
            "skolem",
            term.functor,
            tuple(compile_term(a, slots) for a in term.args),
        )
    raise EvaluationError(f"cannot compile term {term!r}")  # pragma: no cover


def render_expr(expr: ValueExpr) -> str:
    """Deterministic text for one value expression (``s0``, ``'MJ'``, ``f(s0)``)."""
    kind = expr[0]
    if kind == "slot":
        return f"s{expr[1]}"
    if kind == "const":
        return repr(expr[1])
    if kind == "null":
        return "null"
    inner = ",".join(render_expr(a) for a in expr[2])
    return f"{expr[1]}({inner})"


@dataclass(frozen=True)
class ScanOp:
    """Read one relation, filter on constants/nulls, capture variables."""

    relation: str
    rows_estimate: int
    #: positions that must equal a constant value
    const_eq: tuple[tuple[int, Any], ...]
    #: positions that must hold the unlabeled null
    null_eq: tuple[int, ...]
    #: repeated variable inside the atom: both positions must agree
    same: tuple[tuple[int, int], ...]
    #: (position, slot) pairs, in slot order
    capture: tuple[tuple[int, int], ...]

    def render(self) -> str:
        parts = [f"scan {self.relation}"]
        for position, value in self.const_eq:
            parts.append(f"[{position}]={value!r}")
        for position in self.null_eq:
            parts.append(f"[{position}]=null")
        for left, right in self.same:
            parts.append(f"[{left}]==[{right}]")
        captured = ", ".join(f"[{p}]->s{s}" for p, s in self.capture)
        parts.append(f"-> ({captured})")
        parts.append(f"est={self.rows_estimate}")
        return " ".join(parts)


@dataclass(frozen=True)
class JoinOp:
    """Probe a hash index of ``relation`` on the already-bound positions."""

    relation: str
    rows_estimate: int
    #: index key: positions of the relation, parallel to ``key_exprs``
    key_positions: tuple[int, ...]
    key_exprs: tuple[ValueExpr, ...]
    #: repeated *new* variable inside the atom: both positions must agree
    same: tuple[tuple[int, int], ...]
    #: (position, slot) pairs for the atom's new variables, in slot order
    capture: tuple[tuple[int, int], ...]

    def render(self) -> str:
        keys = ", ".join(
            f"[{p}]={render_expr(e)}"
            for p, e in zip(self.key_positions, self.key_exprs)
        )
        parts = [f"join {self.relation} on ({keys})"]
        for left, right in self.same:
            parts.append(f"[{left}]==[{right}]")
        if self.capture:
            captured = ", ".join(f"[{p}]->s{s}" for p, s in self.capture)
            parts.append(f"-> ({captured})")
        parts.append(f"est={self.rows_estimate}")
        return " ".join(parts)


@dataclass(frozen=True)
class FilterOp:
    """A compiled condition: ``null`` / ``nonnull`` / ``eq`` / ``ne``."""

    kind: str
    left: ValueExpr
    right: ValueExpr | None = None

    def render(self) -> str:
        if self.kind == "null":
            return f"filter {render_expr(self.left)} = null"
        if self.kind == "nonnull":
            return f"filter {render_expr(self.left)} != null"
        op = "=" if self.kind == "eq" else "!="
        assert self.right is not None
        return f"filter {render_expr(self.left)} {op} {render_expr(self.right)}"


@dataclass(frozen=True)
class AntiJoinOp:
    """Safe negation: drop bindings present in the negated relation."""

    relation: str
    exprs: tuple[ValueExpr, ...]

    def render(self) -> str:
        inner = ", ".join(render_expr(e) for e in self.exprs)
        return f"antijoin {self.relation}({inner})"


@dataclass(frozen=True)
class ProjectOp:
    """Build the (skolemizing) head row."""

    relation: str
    exprs: tuple[ValueExpr, ...]

    def render(self) -> str:
        inner = ", ".join(render_expr(e) for e in self.exprs)
        return f"project {self.relation}({inner})"


@dataclass
class RulePlan:
    """One rule compiled to ``scan -> join* -> filter* -> antijoin* -> project``."""

    rule: Rule
    scan: ScanOp | None
    joins: tuple[JoinOp, ...]
    filters: tuple[FilterOp, ...]
    antijoins: tuple[AntiJoinOp, ...]
    project: ProjectOp
    n_slots: int

    def operators(self) -> list:
        ops: list = []
        if self.scan is not None:
            ops.append(self.scan)
        ops.extend(self.joins)
        ops.extend(self.filters)
        ops.extend(self.antijoins)
        ops.append(self.project)
        return ops

    def render(self) -> str:
        lines = [op.render() for op in self.operators()]
        return "\n".join("  " + line for line in lines)


@dataclass
class ProgramPlan:
    """Per-stratum rule plans for a whole program, in evaluation order."""

    program: DatalogProgram
    order: list[str] = field(default_factory=list)
    #: relation -> plans of its defining rules, in rule order
    plans: dict[str, list[RulePlan]] = field(default_factory=dict)

    def all_plans(self) -> list[RulePlan]:
        return [plan for relation in self.order for plan in self.plans[relation]]

    def render(self) -> str:
        lines: list[str] = []
        for stratum, relation in enumerate(self.order):
            lines.append(f"stratum {stratum}: {relation}")
            for i, plan in enumerate(self.plans[relation]):
                lines.append(f" rule {i} ({plan.n_slots} slots):")
                lines.append(plan.render())
        return "\n".join(lines)


def _atom_bound_positions(
    atom: RelationalAtom, bound: set[Variable]
) -> tuple[int, ...]:
    """Positions of the atom already determined by constants, nulls or slots."""
    positions = []
    for i, term in enumerate(atom.terms):
        if not isinstance(term, Variable) or term in bound:
            positions.append(i)
    return tuple(positions)


def order_atoms(
    atoms: tuple[RelationalAtom, ...],
    stats: Mapping[str, int],
    advisor=None,
) -> list[int]:
    """The join order: greedy most-bound-first, chosen once from statistics.

    The first atom is the one with the smallest relation (preferring atoms
    with constant filters at equal size); each following atom maximizes the
    number of bound positions, breaking ties by relation size then original
    order.  Deterministic: depends only on the rule and the statistics.

    When *no* statistics are available (the static path) and a cost
    ``advisor`` (:class:`repro.analysis.cost.advisor.JoinOrderAdvisor`) is
    supplied, its symbolically cheapest order wins instead — live row
    counts, when present, stay authoritative.
    """
    remaining = list(range(len(atoms)))
    if not remaining:
        return []
    if advisor is not None and not stats:
        advised = advisor.order(atoms)
        if advised is not None:
            return advised

    def size(i: int) -> int:
        return stats.get(atoms[i].relation, 0)

    first = min(
        remaining,
        key=lambda i: (size(i), -len(_atom_bound_positions(atoms[i], set())), i),
    )
    order = [first]
    remaining.remove(first)
    bound: set[Variable] = {
        t for t in atoms[first].terms if isinstance(t, Variable)
    }
    while remaining:
        best = min(
            remaining,
            key=lambda i: (
                -len(_atom_bound_positions(atoms[i], bound)),
                size(i),
                i,
            ),
        )
        order.append(best)
        remaining.remove(best)
        bound.update(t for t in atoms[best].terms if isinstance(t, Variable))
    return order


def _compile_scan(
    atom: RelationalAtom, slots: dict[Variable, int], stats: Mapping[str, int]
) -> ScanOp:
    const_eq: list[tuple[int, Any]] = []
    null_eq: list[int] = []
    same: list[tuple[int, int]] = []
    capture: list[tuple[int, int]] = []
    first_seen: dict[Variable, int] = {}
    for position, term in enumerate(atom.terms):
        if isinstance(term, Variable):
            if term in first_seen:
                same.append((first_seen[term], position))
            else:
                first_seen[term] = position
                slot = len(slots)
                slots[term] = slot
                capture.append((position, slot))
        elif isinstance(term, Constant):
            const_eq.append((position, term.value))
        elif isinstance(term, NullTerm):
            null_eq.append(position)
        else:  # pragma: no cover - Skolem terms never occur in bodies
            raise EvaluationError(f"unexpected body term {term!r}")
    return ScanOp(
        relation=atom.relation,
        rows_estimate=stats.get(atom.relation, 0),
        const_eq=tuple(const_eq),
        null_eq=tuple(null_eq),
        same=tuple(same),
        capture=tuple(capture),
    )


def _compile_join(
    atom: RelationalAtom, slots: dict[Variable, int], stats: Mapping[str, int]
) -> JoinOp:
    key_positions: list[int] = []
    key_exprs: list[ValueExpr] = []
    same: list[tuple[int, int]] = []
    capture: list[tuple[int, int]] = []
    first_seen: dict[Variable, int] = {}
    for position, term in enumerate(atom.terms):
        if isinstance(term, Variable):
            if term in slots:
                key_positions.append(position)
                key_exprs.append(("slot", slots[term]))
            elif term in first_seen:
                same.append((first_seen[term], position))
            else:
                first_seen[term] = position
                slot = len(slots)
                slots[term] = slot
                capture.append((position, slot))
        elif isinstance(term, Constant):
            key_positions.append(position)
            key_exprs.append(("const", term.value))
        elif isinstance(term, NullTerm):
            key_positions.append(position)
            key_exprs.append(("null",))
        else:  # pragma: no cover - Skolem terms never occur in bodies
            raise EvaluationError(f"unexpected body term {term!r}")
    return JoinOp(
        relation=atom.relation,
        rows_estimate=stats.get(atom.relation, 0),
        key_positions=tuple(key_positions),
        key_exprs=tuple(key_exprs),
        same=tuple(same),
        capture=tuple(capture),
    )


def plan_rule(
    rule: Rule, stats: Mapping[str, int] | None = None, advisor=None
) -> RulePlan:
    """Compile one rule into a :class:`RulePlan`.

    ``stats`` maps relation names to row counts; missing relations count as
    empty.  The batch runtime plans each stratum right before evaluating it,
    so every relation a rule reads — sources *and* already-computed
    intermediates — has exact statistics.  ``advisor`` is consulted for the
    join order only when ``stats`` is empty (see :func:`order_atoms`).
    """
    stats = stats or {}
    order = order_atoms(rule.body, stats, advisor)
    slots: dict[Variable, int] = {}
    scan: ScanOp | None = None
    joins: list[JoinOp] = []
    for step, atom_index in enumerate(order):
        atom = rule.body[atom_index]
        if step == 0:
            scan = _compile_scan(atom, slots, stats)
        else:
            joins.append(_compile_join(atom, slots, stats))
    filters: list[FilterOp] = []
    for var in rule.null_vars:
        filters.append(FilterOp("null", compile_term(var, slots)))
    for var in rule.nonnull_vars:
        filters.append(FilterOp("nonnull", compile_term(var, slots)))
    for equality in rule.equalities:
        filters.append(
            FilterOp(
                "eq",
                compile_term(equality.left, slots),
                compile_term(equality.right, slots),
            )
        )
    for disequality in rule.disequalities:
        filters.append(
            FilterOp(
                "ne",
                compile_term(disequality.left, slots),
                compile_term(disequality.right, slots),
            )
        )
    antijoins = tuple(
        AntiJoinOp(
            relation=atom.relation,
            exprs=tuple(compile_term(t, slots) for t in atom.terms),
        )
        for atom in rule.negated
    )
    project = ProjectOp(
        relation=rule.head.relation,
        exprs=tuple(compile_term(t, slots) for t in rule.head.terms),
    )
    return RulePlan(
        rule=rule,
        scan=scan,
        joins=tuple(joins),
        filters=tuple(filters),
        antijoins=antijoins,
        project=project,
        n_slots=len(slots),
    )


def plan_program(
    program: DatalogProgram,
    stats: Mapping[str, int] | None = None,
    cost_advice: bool = True,
) -> ProgramPlan:
    """Compile every rule of a (validated) program, in stratification order.

    This is the static entry point behind ``repro plan``: statistics default
    to empty, and the join order then comes from the symbolic cost advisor
    (key-aware, deterministic), keeping the rendering stable without an
    instance.  Pass ``cost_advice=False`` for the bare greedy ordering.
    The batch runtime instead compiles stratum by stratum with live counts
    (see :mod:`repro.datalog.exec.batch`).
    """
    program.validate()
    order = stratify(program)
    advisor = None
    if cost_advice and not stats:
        # Imported lazily: the cost analyzer imports this module at load
        # time, so the planner reaches back only at call time.
        from ...analysis.cost.advisor import JoinOrderAdvisor

        advisor = JoinOrderAdvisor.for_program(program)
    plans = {
        relation: [
            plan_rule(rule, stats, advisor)
            for rule in program.rules_for(relation)
        ]
        for relation in order
    }
    return ProgramPlan(program=program, order=order, plans=plans)
