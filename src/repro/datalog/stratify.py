"""Stratification / evaluation ordering for non-recursive Datalog programs.

The programs emitted by query generation are non-recursive by construction
(intermediate ``tmp`` relations depend only on source relations; target
relations depend on source and ``tmp`` relations).  :func:`stratify` verifies
this — any dependency cycle among defined relations is rejected — and
returns the defined relations in a safe evaluation order (dependencies
first), which doubles as a stratification for the safe negation.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..errors import DatalogError

if TYPE_CHECKING:  # pragma: no cover
    from .program import DatalogProgram


def dependencies(program: "DatalogProgram") -> dict[str, set[str]]:
    """For each defined relation, the defined relations its rules read.

    The returned dict preserves first-definition order (stratification and
    therefore SQL statement order must be deterministic across runs).
    """
    defined_order = program.defined_relations()
    defined = set(defined_order)
    graph: dict[str, set[str]] = {name: set() for name in defined_order}
    for rule in program.rules:
        reads = {a.relation for a in rule.body} | {a.relation for a in rule.negated}
        graph[rule.head_relation].update(reads & defined)
    return graph


def stratify(program: "DatalogProgram") -> list[str]:
    """Defined relations in evaluation order; raises on recursion."""
    graph = dependencies(program)
    order: list[str] = []
    state: dict[str, int] = {}  # 0 = visiting, 1 = done

    def visit(name: str, trail: list[str]) -> None:
        status = state.get(name)
        if status == 1:
            return
        if status == 0:
            cycle = " -> ".join(trail[trail.index(name):] + [name])
            raise DatalogError(f"recursive Datalog program: {cycle}")
        state[name] = 0
        for dependency in sorted(graph[name]):
            visit(dependency, trail + [name])
        state[name] = 1
        order.append(name)

    for name in graph:
        visit(name, [])
    return order
