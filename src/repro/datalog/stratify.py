"""Stratification / evaluation ordering for non-recursive Datalog programs.

The programs emitted by query generation are non-recursive by construction
(intermediate ``tmp`` relations depend only on source relations; target
relations depend on source and ``tmp`` relations).  :func:`stratify` verifies
this — any dependency cycle among defined relations is rejected — and
returns the defined relations in a safe evaluation order (dependencies
first), which doubles as a stratification for the safe negation.

On recursion the error names the relation cycle *and* the rule that closes
it, and carries the structured ``DLG002`` diagnostic of
:mod:`repro.analysis.diagnostics`; :func:`find_recursion_cycle` exposes the
same witness non-destructively for the linter.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..errors import DatalogError

if TYPE_CHECKING:  # pragma: no cover
    from .program import DatalogProgram, Rule


def dependencies(program: "DatalogProgram") -> dict[str, set[str]]:
    """For each defined relation, the defined relations its rules read.

    The returned dict preserves first-definition order (stratification and
    therefore SQL statement order must be deterministic across runs).
    """
    defined_order = program.defined_relations()
    defined = set(defined_order)
    graph: dict[str, set[str]] = {name: set() for name in defined_order}
    for rule in program.rules:
        reads = {a.relation for a in rule.body} | {a.relation for a in rule.negated}
        graph[rule.head_relation].update(reads & defined)
    return graph


def readers(program: "DatalogProgram") -> dict[str, set[str]]:
    """The reverse dependency graph: who reads each defined relation.

    ``readers(p)[r]`` is the set of defined relations with a rule whose body
    or negation mentions ``r``.  Shared by the flow engine's worklist solver
    (re-enqueue the readers of a relation whose abstract state changed) and
    kept here next to :func:`dependencies` so both directions of the graph
    come from one definition.
    """
    graph = dependencies(program)
    reverse: dict[str, set[str]] = {name: set() for name in graph}
    for reader, reads in graph.items():
        for read in reads:
            reverse[read].add(reader)
    return reverse


def _closing_rule(
    program: "DatalogProgram", reader: str, read: str
) -> "Rule | None":
    """A rule with head ``reader`` whose body or negation reads ``read``."""
    for rule in program.rules_for(reader):
        if any(
            atom.relation == read
            for atom in list(rule.body) + list(rule.negated)
        ):
            return rule
    return None


def find_recursion_cycle(
    program: "DatalogProgram",
) -> tuple[list[str], "Rule | None"] | None:
    """A dependency cycle among defined relations, or ``None`` if acyclic.

    Returns the cycle as a relation list ``[r1, ..., rn, r1]`` plus the rule
    that closes it (the rule with head ``rn`` reading ``r1``).
    """
    graph = dependencies(program)
    state: dict[str, int] = {}  # 0 = visiting, 1 = done

    def visit(name: str, trail: list[str]) -> tuple[list[str], "Rule | None"] | None:
        status = state.get(name)
        if status == 1:
            return None
        if status == 0:
            cycle = trail[trail.index(name):] + [name]
            return cycle, _closing_rule(program, cycle[-2], name)
        state[name] = 0
        for dependency in sorted(graph[name]):
            found = visit(dependency, trail + [name])
            if found is not None:
                return found
        state[name] = 1
        return None

    for name in graph:
        found = visit(name, [])
        if found is not None:
            return found
    return None


def stratify(program: "DatalogProgram") -> list[str]:
    """Defined relations in evaluation order; raises on recursion.

    The order is deterministic: it depends only on the rule list (first
    definition order) and relation names, never on hashing or object
    identity.
    """
    graph = dependencies(program)
    order: list[str] = []
    state: dict[str, int] = {}  # 0 = visiting, 1 = done

    def visit(name: str, trail: list[str]) -> None:
        status = state.get(name)
        if status == 1:
            return
        if status == 0:
            cycle = trail[trail.index(name):] + [name]
            pretty = " -> ".join(cycle)
            rule = _closing_rule(program, cycle[-2], name)
            closed_by = f" (closed by rule {rule!r})" if rule is not None else ""
            from ..analysis.diagnostics import diagnostic

            raise DatalogError(
                f"recursive Datalog program: {pretty}{closed_by}",
                diagnostic=diagnostic(
                    "DLG002",
                    f"recursive Datalog program: {pretty}{closed_by}",
                    subject=name,
                ),
            )
        state[name] = 0
        for dependency in sorted(graph[name]):
            visit(dependency, trail + [name])
        state[name] = 1
        order.append(name)

    for name in graph:
        visit(name, [])
    return order
