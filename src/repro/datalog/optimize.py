"""Standard query optimization on generated programs.

The paper's Example 6.8 notes that "it is then possible to perform some
standard query optimization, e.g., the second rule can be dropped, since it
is subsumed by the first rule".  :func:`remove_subsumed_rules` implements
exactly that: a rule ``r`` is dropped when another rule ``r'`` with the same
head relation derives every tuple ``r`` derives — witnessed by a
homomorphism θ with ``θ(head') = head``, ``θ(body') ⊆ body``, the conditions
of ``r'`` implied by those of ``r``, and ``θ(negations') ⊆ negations``.
"""

from __future__ import annotations

from ..logic.atoms import RelationalAtom
from ..logic.homomorphism import find_homomorphism
from ..logic.terms import Term, Variable
from .program import DatalogProgram, Rule

_HEAD = "__head__"


def _with_head_marker(rule: Rule) -> list[RelationalAtom]:
    return [RelationalAtom(_HEAD, rule.head.terms), *rule.body]


def subsumes_rule(general: Rule, specific: Rule) -> bool:
    """True iff every tuple derived by ``specific`` is derived by ``general``."""
    if general.head_relation != specific.head_relation:
        return False
    if general.head.arity != specific.head.arity:
        return False

    def var_check(var: Variable, image: Term) -> bool:
        if var in general.null_vars:
            return isinstance(image, Variable) and image in specific.null_vars
        if var in general.nonnull_vars:
            return isinstance(image, Variable) and image in specific.nonnull_vars
        return True

    assignment = find_homomorphism(
        _with_head_marker(general),
        _with_head_marker(specific),
        var_check=var_check,
    )
    if assignment is None:
        return False
    specific_equalities = {
        (repr(e.left), repr(e.right)) for e in specific.equalities
    } | {(repr(e.right), repr(e.left)) for e in specific.equalities}
    for equality in general.equalities:
        left = equality.left.substitute(assignment)
        right = equality.right.substitute(assignment)
        if repr(left) == repr(right):
            continue
        if (repr(left), repr(right)) not in specific_equalities:
            return False
    specific_disequalities = {
        (repr(d.left), repr(d.right)) for d in specific.disequalities
    } | {(repr(d.right), repr(d.left)) for d in specific.disequalities}
    for disequality in general.disequalities:
        left = disequality.left.substitute(assignment)
        right = disequality.right.substitute(assignment)
        if (repr(left), repr(right)) not in specific_disequalities:
            return False
    specific_negated = {repr(a) for a in specific.negated}
    for atom in general.negated:
        if repr(atom.substitute(assignment)) not in specific_negated:
            return False
    return True


def remove_subsumed_rules(program: DatalogProgram) -> DatalogProgram:
    """Drop rules subsumed by other rules (and exact duplicates)."""
    kept: list[Rule] = []
    rules = program.rules
    for i, rule in enumerate(rules):
        redundant = False
        for j, other in enumerate(rules):
            if i == j:
                continue
            if subsumes_rule(other, rule):
                # Mutual subsumption (duplicates): keep the earlier rule.
                if subsumes_rule(rule, other) and i < j:
                    continue
                redundant = True
                break
        if not redundant:
            kept.append(rule)
    return drop_dead_intermediates(program, kept)


def drop_dead_intermediates(
    program: DatalogProgram, kept: list[Rule]
) -> DatalogProgram:
    """Rebuild ``program`` from ``kept``, dropping unreferenced intermediates.

    Shared by :func:`remove_subsumed_rules` and the semantic minimizer
    (:mod:`repro.analysis.semantic.minimize`).
    """
    referenced = {
        a.relation for r in kept for a in list(r.body) + list(r.negated)
    }
    final = [
        r
        for r in kept
        if r.head_relation not in program.intermediates
        or r.head_relation in referenced
    ]
    intermediates = {
        name: arity
        for name, arity in program.intermediates.items()
        if name in referenced
    }
    return DatalogProgram(
        rules=final,
        source_schema=program.source_schema,
        target_schema=program.target_schema,
        intermediates=intermediates,
    )
