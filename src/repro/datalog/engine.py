"""Evaluation of non-recursive skolemized Datalog programs.

The engine materializes every defined relation in stratification order.
Rules are evaluated with an index-nested-loop join: at each step the most
tightly bound remaining body atom is joined next, using hash indexes built
per (relation, bound-positions) on demand.  Skolem terms in heads become
:class:`repro.model.values.LabeledNull` invented values; ``null`` becomes
:data:`repro.model.values.NULL`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Iterator

from ..errors import EvaluationError
from ..logic.atoms import RelationalAtom
from ..logic.terms import Constant, NullTerm, SkolemTerm, Term, Variable
from ..model.instance import Instance, Row
from ..model.values import NULL, LabeledNull, is_null
from ..obs import RunReport, count, metrics_enabled, span, stage_report
from .program import DatalogProgram, Rule
from .stratify import stratify


class _Store:
    """Rows plus lazily built hash indexes for every readable relation."""

    def __init__(self) -> None:
        self._rows: dict[str, list[Row]] = {}
        self._sets: dict[str, set[Row]] = {}
        self._indexes: dict[tuple[str, tuple[int, ...]], dict[Row, list[Row]]] = {}

    def add_relation(self, name: str, rows: Iterator[Row] | list[Row]) -> None:
        unique: dict[Row, None] = {}
        for row in rows:
            unique.setdefault(tuple(row), None)
        self._rows[name] = list(unique)
        self._sets[name] = set(unique)
        # Replacing a relation's rows invalidates every index built over it;
        # keeping them would serve stale entries to later joins.
        for key in [k for k in self._indexes if k[0] == name]:
            del self._indexes[key]

    def has_relation(self, name: str) -> bool:
        return name in self._rows

    def rows(self, name: str) -> list[Row]:
        try:
            return self._rows[name]
        except KeyError:
            raise EvaluationError(f"unknown relation {name!r} in rule body") from None

    def contains(self, name: str, row: Row) -> bool:
        return row in self._sets.get(name, ())

    def size(self, name: str) -> int:
        return len(self._rows.get(name, ()))

    def index(self, name: str, positions: tuple[int, ...]) -> dict[Row, list[Row]]:
        key = (name, positions)
        index = self._indexes.get(key)
        if index is None:
            index = {}
            for row in self.rows(name):
                projected = tuple(row[p] for p in positions)
                index.setdefault(projected, []).append(row)
            self._indexes[key] = index
        return index


Bindings = dict[Variable, Any]


def _eval_term(term: Term, bindings: Bindings) -> Any:
    """Evaluate a head/condition term to a value under the bindings."""
    if isinstance(term, Variable):
        try:
            return bindings[term]
        except KeyError:
            raise EvaluationError(f"unbound variable {term!r}") from None
    if isinstance(term, NullTerm):
        return NULL
    if isinstance(term, Constant):
        return term.value
    if isinstance(term, SkolemTerm):
        return LabeledNull(term.functor, tuple(_eval_term(a, bindings) for a in term.args))
    raise EvaluationError(f"cannot evaluate term {term!r}")  # pragma: no cover


def _match_atom(
    atom: RelationalAtom, row: Row, bindings: Bindings
) -> Bindings | None:
    """Extend bindings so the atom matches the row, or None on mismatch."""
    new: Bindings = {}
    for term, value in zip(atom.terms, row):
        if isinstance(term, Variable):
            if term in bindings:
                if bindings[term] != value:
                    return None
            elif term in new:
                if new[term] != value:
                    return None
            else:
                new[term] = value
        elif isinstance(term, NullTerm):
            if not is_null(value):
                return None
        elif isinstance(term, Constant):
            if term.value != value:
                return None
        else:  # pragma: no cover - Skolem terms never occur in bodies
            raise EvaluationError(f"unexpected body term {term!r}")
    merged = dict(bindings)
    merged.update(new)
    return merged


def _join(store: _Store, atoms: list[RelationalAtom], bindings: Bindings) -> Iterator[Bindings]:
    """All extensions of ``bindings`` satisfying every atom (greedy ordering)."""
    if not atoms:
        yield bindings
        return
    # Pick the atom with the most bound positions; break ties by relation size.
    def bound_positions(atom: RelationalAtom) -> tuple[int, ...]:
        positions = []
        for i, term in enumerate(atom.terms):
            if not isinstance(term, Variable) or term in bindings:
                positions.append(i)
        return tuple(positions)

    best_index = min(
        range(len(atoms)),
        key=lambda i: (
            -len(bound_positions(atoms[i])),
            store.size(atoms[i].relation),
        ),
    )
    atom = atoms[best_index]
    rest = atoms[:best_index] + atoms[best_index + 1:]
    positions = bound_positions(atom)
    if positions:
        wanted = []
        usable = True
        for p in positions:
            term = atom.terms[p]
            if isinstance(term, Variable):
                wanted.append(bindings[term])
            elif isinstance(term, Constant):
                wanted.append(term.value)
            elif isinstance(term, NullTerm):
                wanted.append(NULL)
            else:  # pragma: no cover
                usable = False
                break
        if usable:
            candidates = store.index(atom.relation, positions).get(tuple(wanted), [])
        else:  # pragma: no cover
            candidates = store.rows(atom.relation)
    else:
        candidates = store.rows(atom.relation)
    for row in candidates:
        extended = _match_atom(atom, row, bindings)
        if extended is None:
            continue
        yield from _join(store, rest, extended)


def _conditions_hold(rule: Rule, bindings: Bindings) -> bool:
    for var in rule.null_vars:
        if not is_null(bindings[var]):
            return False
    for var in rule.nonnull_vars:
        if is_null(bindings[var]):
            return False
    for equality in rule.equalities:
        if _eval_term(equality.left, bindings) != _eval_term(equality.right, bindings):
            return False
    for disequality in rule.disequalities:
        if _eval_term(disequality.left, bindings) == _eval_term(disequality.right, bindings):
            return False
    return True


def _negations_hold(rule: Rule, store: _Store, bindings: Bindings) -> bool:
    for atom in rule.negated:
        row = tuple(_eval_term(t, bindings) for t in atom.terms)
        if store.contains(atom.relation, row):
            return False
    return True


def evaluate_rule(rule: Rule, store: _Store) -> list[Row]:
    """All head rows derived by one rule against the current store."""
    derived: dict[Row, None] = {}
    for bindings in _join(store, list(rule.body), {}):
        if not _conditions_hold(rule, bindings):
            continue
        if not _negations_hold(rule, store, bindings):
            continue
        row = tuple(_eval_term(t, bindings) for t in rule.head.terms)
        derived.setdefault(row, None)
    return list(derived)


@dataclass
class EvaluationResult:
    """The computed target instance plus the intermediate relations."""

    target: Instance
    intermediates: dict[str, list[Row]] = field(default_factory=dict)
    #: per-rule derived row counts (before cross-rule deduplication),
    #: indexed like ``program.rules``
    rule_counts: list[int] = field(default_factory=list)
    #: stage telemetry, populated when an obs tracer is active (see repro.obs)
    run_report: RunReport | None = None
    #: the measured :class:`repro.datalog.exec.profile.ExecutionProfile`
    #: behind EXPLAIN ANALYZE, populated when evaluation ran with
    #: ``analyze=True`` or under an active metrics registry (typed ``Any``
    #: here because the exec package imports this module)
    profile: Any | None = None

    def intermediate(self, name: str) -> list[Row]:
        return self.intermediates[name]


def evaluate(
    program: DatalogProgram, source: Instance, analyze: bool = False
) -> EvaluationResult:
    """Run the transformation: compute a target instance from a source instance.

    ``analyze=True`` — or an active metrics registry — collects rule-level
    timing and derived-row counts into ``EvaluationResult.profile``.  The
    reference interpreter has no static operator pipeline, so its profiles
    carry empty operator lists; the rollups stay comparable with the batch
    engine's (same metric families, same rule/stratum totals).
    """
    if program.target_schema is None:
        raise EvaluationError("program has no target schema")
    program.validate()
    collect = analyze or metrics_enabled()
    profile = None
    if collect:
        # Imported lazily: repro.datalog.exec.batch imports this module.
        from .exec.profile import (
            ExecutionProfile,
            RuleProfile,
            StratumProfile,
            emit_profile_metrics,
        )

        profile = ExecutionProfile(engine="reference")
    run_started = time.perf_counter()
    with span("stage.evaluate", rules=len(program.rules)) as trace:
        store = _Store()
        source_rows = 0
        for name, relation in source.relations.items():
            store.add_relation(name, list(relation.rows))
            source_rows += store.size(name)
        count("eval.source_tuples", source_rows)

        order = stratify(program)
        computed: dict[str, list[Row]] = {}
        rule_counts: dict[int, int] = {}
        rule_index = {id(rule): i for i, rule in enumerate(program.rules)}
        for stratum, relation in enumerate(order):
            with span("eval.stratum", stratum=stratum, relation=relation) as stratum_trace:
                stratum_profile = None
                if profile is not None:
                    stratum_started = time.perf_counter()
                    stratum_profile = StratumProfile(
                        stratum=stratum, relation=relation
                    )
                    profile.strata.append(stratum_profile)
                rows: dict[Row, None] = {}
                for rule in program.rules_for(relation):
                    rule_started = time.perf_counter()
                    derived = evaluate_rule(rule, store)
                    if stratum_profile is not None:
                        stratum_profile.rules.append(
                            RuleProfile(
                                relation=relation,
                                rule_index=rule_index[id(rule)],
                                rows_unique=len(derived),
                                seconds=time.perf_counter() - rule_started,
                            )
                        )
                    rule_counts[rule_index[id(rule)]] = len(derived)
                    count("eval.rules_evaluated")
                    count("eval.derived_tuples", len(derived))
                    for row in derived:
                        rows.setdefault(row, None)
                count("eval.strata")
                count("eval.tuples", len(rows))
                stratum_trace.set(tuples=len(rows))
                if stratum_profile is not None:
                    stratum_profile.rows = len(rows)
                    stratum_profile.seconds = (
                        time.perf_counter() - stratum_started
                    )
                computed[relation] = list(rows)
                store.add_relation(relation, list(rows))

        target = Instance(program.target_schema)
        for relation in program.target_schema.relation_names():
            if relation in computed:
                target.add_all(relation, computed[relation])
        intermediates = {
            name: computed.get(name, []) for name in program.intermediates
        }
    if profile is not None:
        profile.source_rows = source_rows
        profile.target_rows = target.total_size()
        profile.seconds = time.perf_counter() - run_started
        emit_profile_metrics(profile)
    return EvaluationResult(
        target=target,
        intermediates=intermediates,
        rule_counts=[rule_counts.get(i, 0) for i in range(len(program.rules))],
        run_report=stage_report(trace, "evaluation"),
        profile=profile,
    )
