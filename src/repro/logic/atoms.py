"""Atoms and conditions of the logical language.

A :class:`RelationalAtom` is ``R(t1, ..., tn)``.  Conditions come in the
three forms the paper uses inside partial tableaux and mapping premises:
equalities ``t1 = t2``, null conditions ``x = null`` and non-null conditions
``x ≠ null``.  After key-conflict resolution, premises also carry
:class:`NegatedPremise` conjuncts — the safe negation ``¬φ^key(k)`` of another
mapping's premise projected on the key.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping, Sequence

from .terms import Term, Variable, term_variables


class RelationalAtom:
    """An atom ``R(t1, ..., tn)`` over relation ``R``."""

    __slots__ = ("relation", "terms")

    def __init__(self, relation: str, terms: Sequence[Term]):
        self.relation = relation
        self.terms = tuple(terms)

    @property
    def arity(self) -> int:
        return len(self.terms)

    def variables(self) -> list[Variable]:
        return term_variables(self.terms)

    def substitute(self, mapping: Mapping[Variable, Term]) -> "RelationalAtom":
        return RelationalAtom(self.relation, tuple(t.substitute(mapping) for t in self.terms))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RelationalAtom):
            return NotImplemented
        return self.relation == other.relation and self.terms == other.terms

    def __hash__(self) -> int:
        return hash((self.relation, self.terms))

    def __repr__(self) -> str:
        inner = ",".join(repr(t) for t in self.terms)
        return f"{self.relation}({inner})"


@dataclass(frozen=True)
class Equality:
    """The condition ``left = right``."""

    left: Term
    right: Term

    def substitute(self, mapping: Mapping[Variable, Term]) -> "Equality":
        return Equality(self.left.substitute(mapping), self.right.substitute(mapping))

    def variables(self) -> list[Variable]:
        return term_variables((self.left, self.right))

    def __repr__(self) -> str:
        return f"{self.left!r}={self.right!r}"


@dataclass(frozen=True)
class Disequality:
    """The condition ``left ≠ right`` (Clio-style filters use it against constants)."""

    left: Term
    right: Term

    def substitute(self, mapping: Mapping[Variable, Term]) -> "Disequality":
        return Disequality(self.left.substitute(mapping), self.right.substitute(mapping))

    def variables(self) -> list[Variable]:
        return term_variables((self.left, self.right))

    def __repr__(self) -> str:
        return f"{self.left!r}!={self.right!r}"


class NegatedPremise:
    """A safe negated conjunctive subquery ``¬{k | atoms, conditions}``.

    ``correlated`` lists the variables shared with the enclosing mapping (the
    key variables the negation is correlated on, paper section 6); every other
    variable in ``atoms`` is local to the subquery (implicitly existential).
    """

    __slots__ = (
        "atoms",
        "null_vars",
        "nonnull_vars",
        "correlated",
        "equalities",
        "disequalities",
    )

    def __init__(
        self,
        atoms: Sequence[RelationalAtom],
        correlated: Sequence[Variable],
        null_vars: Sequence[Variable] = (),
        nonnull_vars: Sequence[Variable] = (),
        equalities: Sequence["Equality"] = (),
        disequalities: Sequence["Disequality"] = (),
    ):
        self.atoms = tuple(atoms)
        self.correlated = tuple(correlated)
        self.null_vars = tuple(null_vars)
        self.nonnull_vars = tuple(nonnull_vars)
        self.equalities = tuple(equalities)
        self.disequalities = tuple(disequalities)

    def local_variables(self) -> list[Variable]:
        correlated = set(self.correlated)
        seen: dict[Variable, None] = {}
        for atom in self.atoms:
            for var in atom.variables():
                if var not in correlated:
                    seen.setdefault(var, None)
        return list(seen)

    def substitute(self, mapping: Mapping[Variable, Term]) -> "NegatedPremise":
        """Substitute the *correlated* variables (locals are never renamed away)."""
        new_atoms = tuple(a.substitute(mapping) for a in self.atoms)
        new_correlated = []
        for var in self.correlated:
            replacement = mapping.get(var, var)
            if not isinstance(replacement, Variable):
                raise TypeError(
                    "correlated variable of a negated premise must stay a variable, "
                    f"got {replacement!r}"
                )
            new_correlated.append(replacement)
        return NegatedPremise(
            new_atoms,
            new_correlated,
            self.null_vars,
            self.nonnull_vars,
            tuple(e.substitute(mapping) for e in self.equalities),
            tuple(d.substitute(mapping) for d in self.disequalities),
        )

    def signature(self) -> tuple:
        """A structural signature identifying equal subqueries up to renaming.

        Used to share one intermediate (``tmp``) relation among mappings that
        negate the same premise projection.
        """
        var_ids: dict[Variable, int] = {}
        for var in self.correlated:
            var_ids.setdefault(var, -1 - len(var_ids))

        def encode(term: Term) -> object:
            if isinstance(term, Variable):
                if term not in var_ids:
                    var_ids[term] = len(var_ids)
                return ("v", var_ids[term])
            return ("t", repr(term))

        atoms_sig = tuple(
            (a.relation, tuple(encode(t) for t in a.terms)) for a in self.atoms
        )
        null_sig = tuple(sorted(repr(encode(v)) for v in self.null_vars))
        nonnull_sig = tuple(sorted(repr(encode(v)) for v in self.nonnull_vars))
        eq_sig = tuple(
            sorted((repr(encode(e.left)), repr(encode(e.right))) for e in self.equalities)
        )
        diseq_sig = tuple(
            sorted(
                (repr(encode(d.left)), repr(encode(d.right)))
                for d in self.disequalities
            )
        )
        return (atoms_sig, null_sig, nonnull_sig, eq_sig, diseq_sig, len(self.correlated))

    def __repr__(self) -> str:
        head = ",".join(repr(v) for v in self.correlated)
        body = ", ".join(repr(a) for a in self.atoms)
        conds = [f"{v!r}=null" for v in self.null_vars]
        conds.extend(f"{v!r}!=null" for v in self.nonnull_vars)
        conds.extend(repr(e) for e in self.equalities)
        conds.extend(repr(d) for d in self.disequalities)
        if conds:
            body = body + ", " + ", ".join(conds)
        return f"not{{{head} | {body}}}"


def atoms_variables(atoms: Sequence[RelationalAtom]) -> list[Variable]:
    """All variables of a sequence of atoms, deduplicated, first-seen order."""
    seen: dict[Variable, None] = {}
    for atom in atoms:
        for var in atom.variables():
            seen.setdefault(var, None)
    return list(seen)


def iter_positions(atoms: Sequence[RelationalAtom]) -> Iterator[tuple[int, int, Term]]:
    """All (atom index, position, term) triples of a sequence of atoms."""
    for i, atom in enumerate(atoms):
        for j, term in enumerate(atom.terms):
            yield i, j, term
