"""Homomorphisms between sets of relational atoms.

Used for the sub-tableau relation of the pruning phase (a tableau ``T'`` is a
sub-tableau of ``T`` when ``T``'s atoms embed into ``T'``'s), for Datalog
rule subsumption, and — via :mod:`repro.analysis.semantic.containment` — for
chase-based containment checks.  A homomorphism maps every pattern atom onto
some target atom of the same relation, sending variables to terms
consistently; non-variable pattern terms must match the corresponding target
term exactly.

The search is deterministic: candidate target atoms are ordered by a
canonical structural key, so the witness returned for a given pattern/target
pair does not depend on the order in which the target atoms were supplied.
A constants/arity pre-filter removes incompatible targets before the
backtracking starts, which bounds the branching factor by the number of
*structurally* compatible atoms instead of the relation size.
"""

from __future__ import annotations

from typing import Callable, Iterator, Mapping, Sequence

from .atoms import RelationalAtom
from .terms import Term, Variable

Assignment = dict[Variable, Term]


def _canonical_atom_key(atom: RelationalAtom) -> tuple:
    """A stable structural sort key: independent of list order, not of content."""
    return (atom.relation, len(atom.terms), tuple(repr(t) for t in atom.terms))


def _compatible(
    pattern_atom: RelationalAtom,
    target_atom: RelationalAtom,
    fixed: Mapping[Variable, Term],
) -> bool:
    """Cheap pre-filter: can ``pattern_atom`` possibly map onto ``target_atom``?

    Checks arity, positional equality of non-variable pattern terms, equality
    of target terms under repeated pattern variables, and consistency with
    the pre-bound ``fixed`` assignment.  No backtracking state is touched.
    """
    if len(pattern_atom.terms) != len(target_atom.terms):
        return False
    seen: dict[Variable, Term] = {}
    for p_term, t_term in zip(pattern_atom.terms, target_atom.terms):
        if isinstance(p_term, Variable):
            bound = fixed.get(p_term, seen.get(p_term))
            if bound is not None:
                if bound != t_term:
                    return False
            else:
                seen[p_term] = t_term
        elif p_term != t_term:
            return False
    return True


def iter_homomorphisms(
    pattern: Sequence[RelationalAtom],
    target: Sequence[RelationalAtom],
    fixed: Mapping[Variable, Term] | None = None,
    var_check: Callable[[Variable, Term], bool] | None = None,
) -> Iterator[Assignment]:
    """Enumerate homomorphisms from ``pattern`` into ``target``.

    ``fixed`` pre-binds pattern variables (e.g. shared source variables that
    must map to themselves).  ``var_check(v, t)`` can veto individual bindings
    (e.g. to require null-condition compatibility).  Yields each full
    assignment (a fresh dict per witness); the enumeration order is
    deterministic given the pattern order and the canonical target ordering.
    """
    assignment: Assignment = dict(fixed or {})
    by_relation: dict[str, list[RelationalAtom]] = {}
    for atom in target:
        by_relation.setdefault(atom.relation, []).append(atom)
    # Canonical candidate ordering: witnesses are stable under permutations
    # of the target atom list.
    for bucket in by_relation.values():
        bucket.sort(key=_canonical_atom_key)

    # Arity/constants pre-filter, computed once per pattern atom.
    candidates: list[list[RelationalAtom]] = [
        [
            target_atom
            for target_atom in by_relation.get(pattern_atom.relation, ())
            if _compatible(pattern_atom, target_atom, assignment)
        ]
        for pattern_atom in pattern
    ]

    # Most-constrained-first: atoms with fewer compatible targets first.
    order = sorted(range(len(pattern)), key=lambda i: (len(candidates[i]), i))

    def try_bind(pattern_atom: RelationalAtom, target_atom: RelationalAtom) -> list[Variable] | None:
        """Extend the assignment; return newly bound vars, or None on clash."""
        new_vars: list[Variable] = []
        for p_term, t_term in zip(pattern_atom.terms, target_atom.terms):
            if isinstance(p_term, Variable):
                bound = assignment.get(p_term)
                if bound is None:
                    if var_check is not None and not var_check(p_term, t_term):
                        for v in new_vars:
                            del assignment[v]
                        return None
                    assignment[p_term] = t_term
                    new_vars.append(p_term)
                elif bound != t_term:
                    for v in new_vars:
                        del assignment[v]
                    return None
            elif p_term != t_term:  # pragma: no cover - excluded by the pre-filter
                for v in new_vars:
                    del assignment[v]
                return None
        return new_vars

    def search(k: int) -> Iterator[Assignment]:
        if k == len(order):
            yield dict(assignment)
            return
        pattern_atom = pattern[order[k]]
        for target_atom in candidates[order[k]]:
            new_vars = try_bind(pattern_atom, target_atom)
            if new_vars is None:
                continue
            yield from search(k + 1)
            for v in new_vars:
                del assignment[v]

    yield from search(0)


def find_homomorphism(
    pattern: Sequence[RelationalAtom],
    target: Sequence[RelationalAtom],
    fixed: Mapping[Variable, Term] | None = None,
    var_check: Callable[[Variable, Term], bool] | None = None,
) -> Assignment | None:
    """The first (canonical) homomorphism from ``pattern`` into ``target``.

    Returns the full assignment, or ``None`` if no homomorphism exists.
    """
    for assignment in iter_homomorphisms(pattern, target, fixed, var_check):
        return assignment
    return None


def embeds(
    pattern: Sequence[RelationalAtom],
    target: Sequence[RelationalAtom],
    fixed: Mapping[Variable, Term] | None = None,
) -> bool:
    """True iff a homomorphism from ``pattern`` into ``target`` exists."""
    return find_homomorphism(pattern, target, fixed) is not None
