"""Homomorphisms between sets of relational atoms.

Used for the sub-tableau relation of the pruning phase (a tableau ``T'`` is a
sub-tableau of ``T`` when ``T``'s atoms embed into ``T'``'s), and for
Datalog rule subsumption.  A homomorphism maps every pattern atom onto some
target atom of the same relation, sending variables to terms consistently;
non-variable pattern terms must match the corresponding target term exactly.
"""

from __future__ import annotations

from typing import Callable, Mapping, Sequence

from .atoms import RelationalAtom
from .terms import Term, Variable

Assignment = dict[Variable, Term]


def find_homomorphism(
    pattern: Sequence[RelationalAtom],
    target: Sequence[RelationalAtom],
    fixed: Mapping[Variable, Term] | None = None,
    var_check: Callable[[Variable, Term], bool] | None = None,
) -> Assignment | None:
    """Find a homomorphism from ``pattern`` into ``target``.

    ``fixed`` pre-binds pattern variables (e.g. shared source variables that
    must map to themselves).  ``var_check(v, t)`` can veto individual bindings
    (e.g. to require null-condition compatibility).  Returns the full
    assignment, or ``None`` if no homomorphism exists.
    """
    assignment: Assignment = dict(fixed or {})
    by_relation: dict[str, list[RelationalAtom]] = {}
    for atom in target:
        by_relation.setdefault(atom.relation, []).append(atom)

    # Most-constrained-first: atoms with fewer candidate targets first.
    order = sorted(
        range(len(pattern)),
        key=lambda i: len(by_relation.get(pattern[i].relation, ())),
    )

    def try_bind(pattern_atom: RelationalAtom, target_atom: RelationalAtom) -> list[Variable] | None:
        """Extend the assignment; return newly bound vars, or None on clash."""
        if len(pattern_atom.terms) != len(target_atom.terms):
            return None
        new_vars: list[Variable] = []
        for p_term, t_term in zip(pattern_atom.terms, target_atom.terms):
            if isinstance(p_term, Variable):
                bound = assignment.get(p_term)
                if bound is None:
                    if var_check is not None and not var_check(p_term, t_term):
                        for v in new_vars:
                            del assignment[v]
                        return None
                    assignment[p_term] = t_term
                    new_vars.append(p_term)
                elif bound != t_term:
                    for v in new_vars:
                        del assignment[v]
                    return None
            elif p_term != t_term:
                for v in new_vars:
                    del assignment[v]
                return None
        return new_vars

    def search(k: int) -> bool:
        if k == len(order):
            return True
        pattern_atom = pattern[order[k]]
        for target_atom in by_relation.get(pattern_atom.relation, ()):
            new_vars = try_bind(pattern_atom, target_atom)
            if new_vars is None:
                continue
            if search(k + 1):
                return True
            for v in new_vars:
                del assignment[v]
        return False

    if search(0):
        return assignment
    return None


def embeds(
    pattern: Sequence[RelationalAtom],
    target: Sequence[RelationalAtom],
    fixed: Mapping[Variable, Term] | None = None,
) -> bool:
    """True iff a homomorphism from ``pattern`` into ``target`` exists."""
    return find_homomorphism(pattern, target, fixed) is not None
