"""Terms of the logical language: variables, constants, Skolem terms, null.

Variables carry a global creation index which provides the total ordering
``≺`` used by the chase's fd rule ("let x be the least variable under the
ordering") so that chasing is deterministic.  Skolem terms represent invented
values (labeled nulls) symbolically inside logical mappings and Datalog rules;
they become :class:`repro.model.values.LabeledNull` values at evaluation time.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass
from typing import Any, Iterable, Iterator, Mapping

_COUNTER = itertools.count()
_COUNTER_LOCK = threading.Lock()


def _next_index() -> int:
    with _COUNTER_LOCK:
        return next(_COUNTER)


class Term:
    """Base class for all terms."""

    __slots__ = ()

    def variables(self) -> Iterator["Variable"]:
        """All variables occurring in this term (depth-first)."""
        return iter(())

    def substitute(self, mapping: Mapping["Variable", "Term"]) -> "Term":
        """Apply a substitution; the default is the identity."""
        return self


class Variable(Term):
    """A logical variable; ordered by creation so chases are deterministic."""

    __slots__ = ("name", "index")

    def __init__(self, name: str):
        self.name = name
        self.index = _next_index()

    def variables(self) -> Iterator["Variable"]:
        yield self

    def substitute(self, mapping: Mapping["Variable", Term]) -> Term:
        return mapping.get(self, self)

    def __repr__(self) -> str:
        return self.name

    def __lt__(self, other: "Variable") -> bool:
        return self.index < other.index

    # identity-based equality/hash: two distinct Variable objects are
    # distinct variables, even with the same display name.


@dataclass(frozen=True)
class Constant(Term):
    """A constant value from the data domain."""

    value: Any

    def __repr__(self) -> str:
        return repr(self.value)


class NullTerm(Term):
    """The term denoting the unlabeled null value.  A singleton."""

    __slots__ = ()
    _instance: "NullTerm | None" = None

    def __new__(cls) -> "NullTerm":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "null"


#: The unique null term.
NULL_TERM = NullTerm()


class SkolemTerm(Term):
    """A Skolem functor application ``f(t1, ..., tn)`` denoting an invented value."""

    __slots__ = ("functor", "args")

    def __init__(self, functor: str, args: Iterable[Term]):
        self.functor = functor
        self.args = tuple(args)

    def variables(self) -> Iterator[Variable]:
        for arg in self.args:
            yield from arg.variables()

    def substitute(self, mapping: Mapping[Variable, Term]) -> Term:
        return SkolemTerm(self.functor, tuple(a.substitute(mapping) for a in self.args))

    def rename_functors(self, renaming: Mapping[str, str]) -> "SkolemTerm":
        """Apply a functor renaming recursively (used by Skolem unification)."""
        new_args = tuple(
            a.rename_functors(renaming) if isinstance(a, SkolemTerm) else a
            for a in self.args
        )
        return SkolemTerm(renaming.get(self.functor, self.functor), new_args)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SkolemTerm):
            return NotImplemented
        return self.functor == other.functor and self.args == other.args

    def __hash__(self) -> int:
        return hash((SkolemTerm, self.functor, self.args))

    def __repr__(self) -> str:
        inner = ",".join(repr(a) for a in self.args)
        return f"{self.functor}({inner})"


class VariableFactory:
    """Creates variables with readable, unique display names.

    Display names follow the paper's habit of deriving variable names from
    attribute initials (``p``, ``n``, ``e``) with numeric suffixes added only
    when needed for uniqueness within the factory.
    """

    def __init__(self, prefix: str = ""):
        self._prefix = prefix
        self._used: dict[str, int] = {}

    def fresh(self, hint: str) -> Variable:
        base = self._prefix + (hint or "v")
        count = self._used.get(base, 0)
        self._used[base] = count + 1
        name = base if count == 0 else f"{base}{count}"
        return Variable(name)

    def fresh_for_attribute(self, attribute: str) -> Variable:
        """A variable named from an attribute's initial letter, paper-style."""
        hint = attribute[0].lower() if attribute else "v"
        return self.fresh(hint)


def is_variable(term: Term) -> bool:
    return isinstance(term, Variable)


def is_skolem(term: Term) -> bool:
    return isinstance(term, SkolemTerm)


def is_null_term(term: Term) -> bool:
    return isinstance(term, NullTerm)


def term_variables(terms: Iterable[Term]) -> list[Variable]:
    """All variables in a sequence of terms, deduplicated, in first-seen order."""
    seen: dict[Variable, None] = {}
    for term in terms:
        for var in term.variables():
            seen.setdefault(var, None)
    return list(seen)
