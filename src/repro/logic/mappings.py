"""Logical mappings (source-to-target tgds) and schema mappings.

A :class:`LogicalMapping` is a source-to-target tuple-generating dependency
``∀x (φ_S(x) → ∃y ψ_T(x, y))`` where the premise ``φ_S`` is a conjunctive
query over the source schema, possibly with null / non-null conditions,
source equalities (from correspondences) and — after key-conflict resolution —
safe negated subqueries.  The consequent ``ψ_T`` is a conjunction of target
atoms; covered correspondences are realized by sharing source variables into
consequent positions.

A :class:`UnitaryMapping` has a single consequent atom (the result of the
rewriting step of Algorithms 2 and 4) and remembers which original logical
mapping it came from — the paper's subscripted implication arrows — because
key-conflict resolution must rewrite all siblings of a mapping together.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable, Mapping

from .atoms import Disequality, Equality, NegatedPremise, RelationalAtom, atoms_variables
from .tableau import PartialTableau
from .terms import Term, Variable


@dataclass(frozen=True)
class Premise:
    """The left-hand side of a (unitary) logical mapping."""

    atoms: tuple[RelationalAtom, ...]
    null_vars: tuple[Variable, ...] = ()
    nonnull_vars: tuple[Variable, ...] = ()
    equalities: tuple[Equality, ...] = ()
    disequalities: tuple[Disequality, ...] = ()
    negated: tuple[NegatedPremise, ...] = ()

    def variables(self) -> list[Variable]:
        """The universally quantified (source) variables, first-seen order."""
        return atoms_variables(self.atoms)

    def with_negations(self, extra: Iterable[NegatedPremise]) -> "Premise":
        return replace(self, negated=self.negated + tuple(extra))

    def substitute(self, mapping: Mapping[Variable, Term]) -> "Premise":
        return Premise(
            atoms=tuple(a.substitute(mapping) for a in self.atoms),
            null_vars=tuple(
                v if v not in mapping else mapping[v]  # type: ignore[misc]
                for v in self.null_vars
            ),
            nonnull_vars=tuple(
                v if v not in mapping else mapping[v]  # type: ignore[misc]
                for v in self.nonnull_vars
            ),
            equalities=tuple(e.substitute(mapping) for e in self.equalities),
            disequalities=tuple(d.substitute(mapping) for d in self.disequalities),
            negated=tuple(n.substitute(mapping) for n in self.negated),
        )

    def __repr__(self) -> str:
        parts = [repr(a) for a in self.atoms]
        parts.extend(f"{v!r}=null" for v in self.null_vars)
        parts.extend(f"{v!r}!=null" for v in self.nonnull_vars)
        parts.extend(repr(e) for e in self.equalities)
        parts.extend(repr(d) for d in self.disequalities)
        parts.extend(repr(n) for n in self.negated)
        return ", ".join(parts)


@dataclass
class LogicalMapping:
    """A source-to-target tgd with (possibly) multiple consequent atoms."""

    premise: Premise
    consequent: tuple[RelationalAtom, ...]
    label: str = ""
    covered: tuple = ()
    source_tableau: PartialTableau | None = None
    target_tableau: PartialTableau | None = None

    def source_variables(self) -> list[Variable]:
        return self.premise.variables()

    def existential_variables(self) -> list[Variable]:
        """Variables of the consequent that do not occur in the premise."""
        source = set(self.source_variables())
        seen: dict[Variable, None] = {}
        for atom in self.consequent:
            for var in atom.variables():
                if var not in source:
                    seen.setdefault(var, None)
        return list(seen)

    def substitute_consequent(self, mapping: Mapping[Variable, Term]) -> "LogicalMapping":
        new_consequent = tuple(a.substitute(mapping) for a in self.consequent)
        return LogicalMapping(
            premise=self.premise,
            consequent=new_consequent,
            label=self.label,
            covered=self.covered,
            source_tableau=self.source_tableau,
            target_tableau=self.target_tableau,
        )

    def __repr__(self) -> str:
        arrow = f" ->{self.label} " if self.label else " -> "
        rhs = ", ".join(repr(a) for a in self.consequent)
        return f"{self.premise!r}{arrow}{rhs}"


@dataclass
class UnitaryMapping:
    """A skolemized logical mapping with a single consequent atom."""

    premise: Premise
    consequent: RelationalAtom
    origin: str = ""
    name: str = ""

    def source_variables(self) -> list[Variable]:
        return self.premise.variables()

    def with_premise(self, premise: Premise) -> "UnitaryMapping":
        return UnitaryMapping(premise, self.consequent, self.origin, self.name)

    def with_consequent(self, atom: RelationalAtom) -> "UnitaryMapping":
        return UnitaryMapping(self.premise, atom, self.origin, self.name)

    def __repr__(self) -> str:
        arrow = f" ->{self.origin} " if self.origin else " -> "
        return f"{self.premise!r}{arrow}{self.consequent!r}"


@dataclass
class SchemaMapping:
    """A set of logical mappings from a source schema to a target schema."""

    source_schema: object
    target_schema: object
    mappings: list[LogicalMapping] = field(default_factory=list)

    def __iter__(self):
        return iter(self.mappings)

    def __len__(self) -> int:
        return len(self.mappings)

    def __getitem__(self, index: int) -> LogicalMapping:
        return self.mappings[index]

    def by_label(self, label: str) -> LogicalMapping:
        for mapping in self.mappings:
            if mapping.label == label:
                return mapping
        raise KeyError(label)

    def __repr__(self) -> str:
        lines = [repr(m) for m in self.mappings]
        return "SchemaMapping[\n  " + "\n  ".join(lines) + "\n]"
