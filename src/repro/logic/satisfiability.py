"""Congruence-closure satisfiability engine for the paper's decision checks.

The functionality check and the key-conflict check of Algorithm 4 both reduce
to deciding satisfiability of a conjunctive query with equalities, one
disequality and null / non-null conditions, under the source key constraints
(paper section 6: "the functionality check can be reduced to an emptiness
test for a conjunctive query with inequalities, under functional and
inclusion dependencies").

The theory implemented here:

* source variables range over source-database values;
* ``null`` is an ordinary value, distinct from every other constant;
* Skolem terms denote *invented* values — distinct from every source value,
  every constant and ``null``; two Skolem terms are equal iff they have the
  same functor and pairwise-equal arguments (functors are injective, and
  different functors have disjoint ranges), matching the paper's equality
  conditions for functor terms;
* key functional dependencies are applied as egds to fixpoint (the chase);
  inclusion dependencies never equate terms, so they are irrelevant to these
  checks (premises are already FK-closed by logical-relation generation).

After :meth:`TermSolver.close` the query-so-far is unsatisfiable iff
``solver.clashed``; a disequality ``t1 ≠ t2`` is additionally satisfiable iff
the two terms were not forced into the same congruence class.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..model.schema import Schema
from ..obs import count
from .atoms import RelationalAtom
from .terms import NULL_TERM, Constant, NullTerm, SkolemTerm, Term, Variable


class _ClassInfo:
    """Per-congruence-class facts: representative constant/skolem/null/non-null."""

    __slots__ = ("constant", "skolem", "is_null", "nonnull", "has_var")

    def __init__(self) -> None:
        self.constant: Constant | None = None
        self.skolem: SkolemTerm | None = None
        self.is_null = False
        self.nonnull = False
        self.has_var = False  # class contains a (source) variable


class TermSolver:
    """Union-find with congruence closure over variables, constants, Skolem terms."""

    def __init__(self) -> None:
        self._parent: dict[Term, Term] = {}
        self._info: dict[Term, _ClassInfo] = {}
        self._skolems: list[SkolemTerm] = []
        self.clashed = False

    # -- union-find --------------------------------------------------------

    def _register(self, term: Term) -> None:
        if term in self._parent:
            return
        self._parent[term] = term
        info = _ClassInfo()
        if isinstance(term, Constant):
            info.constant = term
            info.nonnull = True
        elif isinstance(term, SkolemTerm):
            info.skolem = term
            info.nonnull = True
            self._skolems.append(term)
            for arg in term.args:
                self._register(arg)
        elif isinstance(term, NullTerm):
            info.is_null = True
        elif isinstance(term, Variable):
            info.has_var = True
        self._info[term] = info

    def find(self, term: Term) -> Term:
        self._register(term)
        root = term
        while self._parent[root] is not root:
            root = self._parent[root]
        while self._parent[term] is not root:
            self._parent[term], term = root, self._parent[term]
        return root

    def equal(self, left: Term, right: Term) -> bool:
        """True iff the two terms are in the same congruence class."""
        return self.find(left) is self.find(right)

    # -- assertions ---------------------------------------------------------

    def assert_equal(self, left: Term, right: Term) -> None:
        """Merge the classes of the two terms, propagating consequences."""
        if self.clashed:
            return
        left_root, right_root = self.find(left), self.find(right)
        if left_root is right_root:
            return
        left_info, right_info = self._info[left_root], self._info[right_root]

        merged = _ClassInfo()
        merged.is_null = left_info.is_null or right_info.is_null
        merged.nonnull = left_info.nonnull or right_info.nonnull
        if merged.is_null and merged.nonnull:
            self.clashed = True
            return
        if left_info.constant and right_info.constant:
            if left_info.constant != right_info.constant:
                self.clashed = True
                return
        merged.constant = left_info.constant or right_info.constant
        if left_info.skolem and right_info.skolem:
            if left_info.skolem.functor != right_info.skolem.functor or len(
                left_info.skolem.args
            ) != len(right_info.skolem.args):
                self.clashed = True
                return
        merged.skolem = left_info.skolem or right_info.skolem
        merged.has_var = left_info.has_var or right_info.has_var
        if merged.skolem is not None and (merged.constant is not None or merged.has_var):
            # Invented values are distinct from every source constant and from
            # every source-variable value (paper: "unsatisfiable if t is a
            # variable or a null term, or a functor term based on a different
            # Skolem function").
            self.clashed = True
            return

        self._parent[right_root] = left_root
        self._info[left_root] = merged

        # Injectivity: f(a...) = f(b...) implies pairwise a = b.
        if left_info.skolem and right_info.skolem:
            for a, b in zip(left_info.skolem.args, right_info.skolem.args):
                self.assert_equal(a, b)
                if self.clashed:
                    return
        self._congruence_pass()

    def assert_null(self, term: Term) -> None:
        """Assert ``term = null``."""
        self.assert_equal(term, NULL_TERM)

    def assert_nonnull(self, term: Term) -> None:
        """Assert ``term ≠ null``."""
        if self.clashed:
            return
        root = self.find(term)
        info = self._info[root]
        if info.is_null:
            self.clashed = True
            return
        info.nonnull = True

    # -- congruence closure ---------------------------------------------------

    def _congruence_pass(self) -> None:
        """Merge f(a...) with f(b...) whenever all argument classes coincide."""
        changed = True
        while changed and not self.clashed:
            changed = False
            n = len(self._skolems)
            for i in range(n):
                for j in range(i + 1, n):
                    s, t = self._skolems[i], self._skolems[j]
                    if s.functor != t.functor or len(s.args) != len(t.args):
                        continue
                    if self.find(s) is self.find(t):
                        continue
                    if all(self.find(a) is self.find(b) for a, b in zip(s.args, t.args)):
                        self.assert_equal(s, t)
                        changed = True
                        if self.clashed:
                            return

    # -- key-fd chase ---------------------------------------------------------

    def chase_keys(self, atoms: Sequence[RelationalAtom], schema: Schema) -> None:
        """Apply key functional dependencies as egds to fixpoint.

        For any two atoms over the same relation whose key positions are
        pairwise equal, every other position is equated.
        """
        if self.clashed:
            return
        by_relation: dict[str, list[RelationalAtom]] = {}
        for atom in atoms:
            by_relation.setdefault(atom.relation, []).append(atom)
        changed = True
        while changed and not self.clashed:
            changed = False
            for relation, group in by_relation.items():
                if len(group) < 2 or relation not in schema:
                    continue
                key_positions = schema.relation(relation).key_positions()
                for i in range(len(group)):
                    for j in range(i + 1, len(group)):
                        a, b = group[i], group[j]
                        if not all(
                            self.equal(a.terms[p], b.terms[p]) for p in key_positions
                        ):
                            continue
                        for p in range(len(a.terms)):
                            if not self.equal(a.terms[p], b.terms[p]):
                                self.assert_equal(a.terms[p], b.terms[p])
                                changed = True
                                if self.clashed:
                                    return


SAT = True
UNSAT = False


def check_equal_and_differ(
    atoms: Sequence[RelationalAtom],
    schema: Schema,
    equalities: Iterable[tuple[Term, Term]],
    differ: tuple[Term, Term],
    null_terms: Iterable[Term] = (),
    nonnull_terms: Iterable[Term] = (),
    disequalities: Iterable[tuple[Term, Term]] = (),
) -> bool:
    """Decide satisfiability of ``atoms ∧ equalities ∧ differ[0] ≠ differ[1]``.

    ``atoms`` are source atoms (their variables are source variables and their
    mandatory positions are implicitly non-null); key fds of ``schema`` are
    chased.  Returns :data:`SAT` (True) iff satisfiable.
    """
    count("satisfiability.checks")
    solver = TermSolver()
    for atom in atoms:
        if atom.relation in schema:
            relation = schema.relation(atom.relation)
            for position, term in enumerate(atom.terms):
                solver._register(term)
                attr = relation.attributes[position]
                if not attr.nullable:
                    solver.assert_nonnull(term)
                if solver.clashed:
                    return UNSAT
    for term in null_terms:
        solver.assert_null(term)
        if solver.clashed:
            return UNSAT
    for term in nonnull_terms:
        solver.assert_nonnull(term)
        if solver.clashed:
            return UNSAT
    for left, right in equalities:
        solver.assert_equal(left, right)
        if solver.clashed:
            return UNSAT
    solver.chase_keys(atoms, schema)
    if solver.clashed:
        return UNSAT
    left, right = differ
    solver._register(left)
    solver._register(right)
    # Re-run congruence in case the differ terms are fresh Skolem structures.
    solver._congruence_pass()
    if solver.clashed:
        return UNSAT
    # Premise disequalities (Clio filters): a pair forced equal is a clash.
    for a, b in disequalities:
        if solver.equal(a, b):
            return UNSAT
    return not solver.equal(left, right)
