"""(Partial) tableaux — the paper's logical relations.

A tableau is a set of relational atoms closed under foreign-key traversal,
obtained by chasing a single base relation; joins are represented by shared
variables.  A *partial* tableau (paper section 5.1) additionally carries null
conditions ``x = null`` and non-null conditions ``x ≠ null`` on variables
bound to nullable attributes.

Because every tableau is produced by chasing one base relation, its atoms form
a rooted tree: the root atom is the base relation and each other atom is
reached by traversing one foreign key.  Each atom therefore has a *path* — the
sequence of foreign-key attribute names traversed from the root — which is a
stable identity across the sibling tableaux produced by different null/non-null
decisions.  The chase records each decision as ``(atom path, attribute) ->
"null" | "nonnull"``; the *non-null extension* relation ``≺`` of section 5.2
is decided purely from these decision records.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from ..model.schema import Schema
from .atoms import RelationalAtom, atoms_variables
from .terms import Term, Variable

Path = tuple[str, ...]

#: Coverage levels (paper section 5.2).
MAND = "mand"
NULL = "null"
NONNULL = "nonnull"
NONE = "none"


class PartialTableau:
    """A partial tableau: rooted atoms plus null / non-null conditions."""

    def __init__(
        self,
        schema: Schema,
        root_relation: str,
        atoms: Sequence[RelationalAtom],
        paths: Sequence[Path],
        parents: Sequence[tuple[int, str] | None],
        null_vars: Sequence[Variable] = (),
        nonnull_vars: Sequence[Variable] = (),
        decisions: dict[tuple[Path, str], str] | None = None,
    ):
        if len(atoms) != len(paths) or len(atoms) != len(parents):
            raise ValueError("atoms, paths and parents must have equal length")
        self.schema = schema
        self.root_relation = root_relation
        self.atoms = tuple(atoms)
        self.paths = tuple(paths)
        self.parents = tuple(parents)
        self.null_vars = frozenset(null_vars)
        self.nonnull_vars = frozenset(nonnull_vars)
        self.decisions: dict[tuple[Path, str], str] = dict(decisions or {})
        self._children: dict[tuple[int, str], int] = {}
        for i, parent in enumerate(self.parents):
            if parent is not None:
                self._children[parent] = i

    # -- basic queries ---------------------------------------------------

    @property
    def root_atom(self) -> RelationalAtom:
        return self.atoms[0]

    def variables(self) -> list[Variable]:
        return atoms_variables(self.atoms)

    def atoms_for(self, relation: str) -> list[int]:
        """Indices of all atoms over ``relation``."""
        return [i for i, a in enumerate(self.atoms) if a.relation == relation]

    def term_at(self, atom_index: int, attribute: str) -> Term:
        atom = self.atoms[atom_index]
        position = self.schema.relation(atom.relation).position(attribute)
        return atom.terms[position]

    def child_of(self, atom_index: int, attribute: str) -> int | None:
        """The atom reached from ``atom_index`` by traversing FK ``attribute``."""
        return self._children.get((atom_index, attribute))

    # -- coverage levels (paper section 5.2) ------------------------------

    def attribute_level(self, atom_index: int, attribute: str) -> str:
        """Coverage level of one attribute occurrence: mand, null or nonnull."""
        relation = self.schema.relation(self.atoms[atom_index].relation)
        if not relation.is_nullable(attribute):
            return MAND
        term = self.term_at(atom_index, attribute)
        if term in self.null_vars:
            return NULL
        if term in self.nonnull_vars:
            return NONNULL
        # A nullable attribute with no recorded condition: this only happens
        # in tableaux from the *standard* chase (basic algorithms), which
        # treats every present attribute as plainly covered.
        return MAND

    # -- structural relations (pruning support) ---------------------------

    def signature(self) -> tuple:
        """Identity of the tableau among all chase results of one schema."""
        return (
            self.root_relation,
            tuple(sorted(self.decisions.items())),
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PartialTableau):
            return NotImplemented
        return self.schema is other.schema and self.signature() == other.signature()

    def __hash__(self) -> int:
        return hash((id(self.schema), self.signature()))

    def is_nonnull_extension_of(self, other: "PartialTableau") -> bool:
        """True iff ``self ≺ other``: self is a non-null extension of other.

        Both tableaux must be chase results of the same base relation.  Then
        ``self`` extends ``other`` iff their decisions agree everywhere except
        on a non-empty set of *nullable foreign-key* attributes where ``other``
        chose null and ``self`` chose non-null; decisions inside the extra
        subtrees of ``self`` (paths through those foreign keys) are free.
        """
        if self.schema is not other.schema or self.root_relation != other.root_relation:
            return False
        other_paths = set(other.paths)
        difference_found = False
        for key, choice in other.decisions.items():
            path, attribute = key
            mine = self.decisions.get(key)
            if mine is None:
                return False  # other decided a point self never reached
            if mine == choice:
                continue
            # Decisions differ: allowed only null -> nonnull on a foreign key.
            relation = self._relation_at_path(path)
            if relation is None:
                return False
            is_fk = self.schema.has_foreign_key_from(relation, attribute)
            if not (is_fk and choice == NULL and mine == NONNULL):
                return False
            difference_found = True
        # Every extra decision of self must lie strictly inside new subtrees
        # (paths not present in other).
        for key in self.decisions:
            if key in other.decisions:
                continue
            path, _attribute = key
            if path in other_paths:
                return False
        return difference_found

    def _relation_at_path(self, path: Path) -> str | None:
        for i, candidate in enumerate(self.paths):
            if candidate == path:
                return self.atoms[i].relation
        return None

    # -- rendering ---------------------------------------------------------

    def __repr__(self) -> str:
        parts = [repr(a) for a in self.atoms]
        parts.extend(f"{v!r}=null" for v in sorted(self.null_vars, key=lambda x: x.index))
        parts.extend(f"{v!r}!=null" for v in sorted(self.nonnull_vars, key=lambda x: x.index))
        return ", ".join(parts)

    def __iter__(self) -> Iterator[RelationalAtom]:
        return iter(self.atoms)

    def __len__(self) -> int:
        return len(self.atoms)
