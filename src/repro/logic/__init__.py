"""Logical formalism substrate: terms, atoms, tableaux, tgds, satisfiability."""

from .atoms import Equality, NegatedPremise, RelationalAtom, atoms_variables, iter_positions
from .homomorphism import embeds, find_homomorphism
from .mappings import LogicalMapping, Premise, SchemaMapping, UnitaryMapping
from .satisfiability import SAT, UNSAT, TermSolver, check_equal_and_differ
from .tableau import MAND, NONE, NONNULL, NULL, PartialTableau
from .terms import (
    NULL_TERM,
    Constant,
    NullTerm,
    SkolemTerm,
    Term,
    Variable,
    VariableFactory,
    is_null_term,
    is_skolem,
    is_variable,
    term_variables,
)

__all__ = [
    "Constant",
    "Equality",
    "LogicalMapping",
    "MAND",
    "NONE",
    "NONNULL",
    "NULL",
    "NULL_TERM",
    "NegatedPremise",
    "NullTerm",
    "PartialTableau",
    "Premise",
    "RelationalAtom",
    "SAT",
    "SchemaMapping",
    "SkolemTerm",
    "Term",
    "TermSolver",
    "UNSAT",
    "UnitaryMapping",
    "Variable",
    "VariableFactory",
    "atoms_variables",
    "check_equal_and_differ",
    "embeds",
    "find_homomorphism",
    "is_null_term",
    "is_skolem",
    "is_variable",
    "iter_positions",
    "term_variables",
]
