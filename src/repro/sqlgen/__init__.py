"""SQL backend: typed AST, whole-program compiler, DDL emission, execution."""

from .ast import (
    DIALECTS,
    DUCKDB,
    Dialect,
    SQLITE,
    dialect_named,
    match_skolem_encode,
    skolem_encode,
    sql_literal,
)
from .compiler import CompiledStatement, SqlPipeline, compile_program
from .ddl import create_table_sql, quote_identifier, schema_ddl
from .executor import (
    DuckDbExecutor,
    ExecutionTrace,
    SqliteExecutor,
    duckdb_available,
    run_on_duckdb,
    run_on_sqlite,
)
from .queries import program_to_sql, rule_insert, rule_select, rule_to_sql
from .values import INVENTED_PREFIX, decode_value, encode_value

__all__ = [
    "CompiledStatement",
    "DIALECTS",
    "DUCKDB",
    "Dialect",
    "DuckDbExecutor",
    "ExecutionTrace",
    "INVENTED_PREFIX",
    "SQLITE",
    "SqlPipeline",
    "SqliteExecutor",
    "compile_program",
    "create_table_sql",
    "decode_value",
    "dialect_named",
    "duckdb_available",
    "encode_value",
    "match_skolem_encode",
    "program_to_sql",
    "quote_identifier",
    "rule_insert",
    "rule_select",
    "rule_to_sql",
    "run_on_duckdb",
    "run_on_sqlite",
    "schema_ddl",
    "skolem_encode",
    "sql_literal",
]
