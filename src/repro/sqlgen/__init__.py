"""SQL backend: DDL emission, Datalog-to-SQL translation, SQLite execution."""

from .ddl import create_table_sql, quote_identifier, schema_ddl
from .executor import ExecutionTrace, SqliteExecutor, run_on_sqlite
from .queries import program_to_sql, rule_to_sql, sql_literal
from .values import INVENTED_PREFIX, decode_value, encode_value

__all__ = [
    "ExecutionTrace",
    "INVENTED_PREFIX",
    "SqliteExecutor",
    "create_table_sql",
    "decode_value",
    "encode_value",
    "program_to_sql",
    "quote_identifier",
    "rule_to_sql",
    "run_on_sqlite",
    "schema_ddl",
    "sql_literal",
]
