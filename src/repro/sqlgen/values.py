"""Encoding of invented values (labeled nulls) as SQL strings.

SQL has no labeled nulls, so an invented value like ``f_person(c86)`` is
stored as the string ``"\\x02f_person(3:c86)"`` — a control-character prefix,
the functor, and a parenthesized argument list.  Each argument is either the
bare token ``null`` (the unlabeled null) or *length-prefixed*:
``<length>:<text>``, where ``text`` is ``str(value)`` for constants and the
full encoding (prefix included) for nested invented values.

The length prefix makes the encoding injective.  A bare-separator scheme
would merge distinct invented values — ``f("x,y")`` and ``f("x","y")`` both
become ``"\\x02f(x,y)"`` — silently identifying labeled nulls the chase
keeps apart.  With lengths, they encode as ``"\\x02f(3:x,y)"`` and
``"\\x02f(1:x,1:y)"``.  The SQL expressions emitted by
:func:`repro.sqlgen.ast.skolem_encode` compute exactly this encoding at
query time; :func:`decode_value` parses it back into
:class:`repro.model.values.LabeledNull`, so results read back from SQLite
compare equal to the Datalog engine's output on string-valued databases.
"""

from __future__ import annotations

from typing import Any

from ..errors import EvaluationError
from ..model.values import NULL, LabeledNull, is_labeled_null, is_null

#: Marks an encoded invented value.  A control character: real data will not
#: contain it.
INVENTED_PREFIX = "\x02"


def encode_value(value: Any) -> Any:
    """Encode a value for storage in SQL (None for null, string for invented)."""
    if is_null(value):
        return None
    if is_labeled_null(value):
        inner = ",".join(_encode_argument(a) for a in value.args)
        return f"{INVENTED_PREFIX}{value.functor}({inner})"
    return value


def _encode_argument(value: Any) -> str:
    if is_null(value):
        return "null"
    if is_labeled_null(value):
        text = encode_value(value)
        assert isinstance(text, str)
    else:
        text = str(value)
    return f"{len(text)}:{text}"


def decode_value(value: Any) -> Any:
    """Decode a value read back from SQL."""
    if value is None:
        return NULL
    if isinstance(value, str) and value.startswith(INVENTED_PREFIX):
        term, rest = _parse_invented(value, 0)
        if rest != len(value):
            raise EvaluationError(f"trailing data in invented value {value!r}")
        return term
    return value


def _parse_invented(text: str, start: int) -> tuple[LabeledNull, int]:
    if text[start] != INVENTED_PREFIX:
        raise EvaluationError(f"not an invented value at {start} in {text!r}")
    try:
        open_paren = text.index("(", start)
    except ValueError:
        raise EvaluationError(f"unbalanced invented value {text!r}") from None
    functor = text[start + 1 : open_paren]
    args: list[Any] = []
    i = open_paren + 1
    if i < len(text) and text[i] == ")":
        return LabeledNull(functor, ()), i + 1
    while True:
        argument, i = _parse_argument(text, i)
        args.append(argument)
        if i >= len(text):
            raise EvaluationError(f"unbalanced invented value {text!r}")
        if text[i] == ")":
            return LabeledNull(functor, tuple(args)), i + 1
        if text[i] != ",":
            raise EvaluationError(
                f"malformed invented value {text!r}: expected ',' or ')' at {i}"
            )
        i += 1


def _parse_argument(text: str, start: int) -> tuple[Any, int]:
    if text.startswith("null", start):
        end = start + 4
        if end >= len(text) or text[end] in ",)":
            return NULL, end
    digits_end = start
    while digits_end < len(text) and text[digits_end].isdigit():
        digits_end += 1
    if digits_end == start or digits_end >= len(text) or text[digits_end] != ":":
        raise EvaluationError(
            f"malformed invented-value argument at {start} in {text!r}"
        )
    length = int(text[start:digits_end])
    piece_start = digits_end + 1
    piece_end = piece_start + length
    if piece_end > len(text):
        raise EvaluationError(
            f"invented-value argument overruns the encoding at {start} in {text!r}"
        )
    piece = text[piece_start:piece_end]
    if piece.startswith(INVENTED_PREFIX):
        term, parsed_end = _parse_invented(piece, 0)
        if parsed_end != len(piece):
            raise EvaluationError(f"trailing data in nested invented value {piece!r}")
        return term, piece_end
    return piece, piece_end
