"""Encoding of invented values (labeled nulls) as SQL strings.

SQL has no labeled nulls, so an invented value like ``f_person(c86)`` is
stored as the string ``"\\x02f_person(c86)"`` — a control-character prefix
followed by the functor application with arguments separated by commas
(nested invented arguments keep their prefix).  :func:`decode_value` parses
the encoding back into :class:`repro.model.values.LabeledNull`, so results
read back from SQLite compare equal to the Datalog engine's output on
string-valued databases.
"""

from __future__ import annotations

from typing import Any

from ..errors import EvaluationError
from ..model.values import NULL, LabeledNull, is_labeled_null, is_null

#: Marks an encoded invented value.  A control character: real data will not
#: contain it.
INVENTED_PREFIX = "\x02"


def encode_value(value: Any) -> Any:
    """Encode a value for storage in SQL (None for null, string for invented)."""
    if is_null(value):
        return None
    if is_labeled_null(value):
        inner = ",".join(_encode_argument(a) for a in value.args)
        return f"{INVENTED_PREFIX}{value.functor}({inner})"
    return value


def _encode_argument(value: Any) -> str:
    if is_null(value):
        return "null"
    if is_labeled_null(value):
        encoded = encode_value(value)
        assert isinstance(encoded, str)
        return encoded
    return str(value)


def decode_value(value: Any) -> Any:
    """Decode a value read back from SQL."""
    if value is None:
        return NULL
    if isinstance(value, str) and value.startswith(INVENTED_PREFIX):
        term, rest = _parse_invented(value, 0)
        if rest != len(value):
            raise EvaluationError(f"trailing data in invented value {value!r}")
        return term
    return value


def _parse_invented(text: str, start: int) -> tuple[LabeledNull, int]:
    if text[start] != INVENTED_PREFIX:
        raise EvaluationError(f"not an invented value at {start} in {text!r}")
    open_paren = text.index("(", start)
    functor = text[start + 1 : open_paren]
    args: list[Any] = []
    i = open_paren + 1
    if i < len(text) and text[i] == ")":
        return LabeledNull(functor, ()), i + 1
    current_start = i
    depth = 0
    while i < len(text):
        char = text[i]
        if char == "(":
            depth += 1
        elif char == ")":
            if depth == 0:
                args.append(_decode_argument(text[current_start:i]))
                return LabeledNull(functor, tuple(args)), i + 1
            depth -= 1
        elif char == "," and depth == 0:
            args.append(_decode_argument(text[current_start:i]))
            current_start = i + 1
        i += 1
    raise EvaluationError(f"unbalanced invented value {text!r}")


def _decode_argument(piece: str) -> Any:
    if piece == "null":
        return NULL
    if piece.startswith(INVENTED_PREFIX):
        term, _end = _parse_invented(piece, 0)
        return term
    return piece
