"""DDL emission: relational schemas as SQL ``CREATE TABLE`` statements.

Keys become ``PRIMARY KEY``, foreign keys become ``FOREIGN KEY ...
REFERENCES``, mandatory attributes become ``NOT NULL``.  ``enforce=False``
emits bare tables — useful for materializing the output of the *basic*
algorithms, which (as the paper shows on Figure 2) can violate target keys.
"""

from __future__ import annotations

from ..model.schema import RelationSchema, Schema


def quote_identifier(name: str) -> str:
    """Quote an SQL identifier (doubling embedded quotes)."""
    return '"' + name.replace('"', '""') + '"'


def create_table_sql(
    relation: RelationSchema, schema: Schema, enforce: bool = True
) -> str:
    """The ``CREATE TABLE`` statement for one relation."""
    lines = []
    for attribute in relation.attributes:
        column = f"  {quote_identifier(attribute.name)} TEXT"
        if enforce and not attribute.nullable:
            column += " NOT NULL"
        lines.append(column)
    if enforce:
        key = ", ".join(quote_identifier(k) for k in relation.key)
        lines.append(f"  PRIMARY KEY ({key})")
        for fk in schema.foreign_keys_of(relation.name):
            target = schema.relation(fk.referenced)
            lines.append(
                f"  FOREIGN KEY ({quote_identifier(fk.attribute)}) "
                f"REFERENCES {quote_identifier(fk.referenced)}"
                f"({quote_identifier(target.key[0])})"
            )
    body = ",\n".join(lines)
    return f"CREATE TABLE {quote_identifier(relation.name)} (\n{body}\n)"


def schema_ddl(schema: Schema, enforce: bool = True) -> list[str]:
    """``CREATE TABLE`` statements for a whole schema, FK targets first."""
    from ..model.graph import chase_order

    order = chase_order(schema)
    return [create_table_sql(schema.relation(name), schema, enforce) for name in order]
