"""Execution of compiled pipelines on SQLite (and, when installed, DuckDB).

:class:`SqliteExecutor` materializes the source instance, runs the compiled
SQL pipeline of a generated Datalog program (see
:mod:`repro.sqlgen.compiler`), and reads the target instance back (decoding
invented values).  With ``enforce_constraints=True`` the target tables carry
their real PRIMARY KEY / NOT NULL / FOREIGN KEY declarations, so a
transformation that violates them — like the basic algorithms on Figure 2 —
fails with :class:`sqlite3.IntegrityError`; the novel algorithms' output
loads cleanly.  That check is itself one of the paper's claims, exercised by
the tests and benchmarks.

:class:`DuckDbExecutor` runs the same pipeline rendered for the DuckDB
dialect.  DuckDB is an optional dependency: import is deferred, and callers
should gate on :func:`duckdb_available` (tests and CI skip when missing).
"""

from __future__ import annotations

import sqlite3
from dataclasses import dataclass, field
from typing import Any

from ..errors import EvaluationError
from ..model.instance import Instance
from ..model.schema import Schema
from ..datalog.program import DatalogProgram
from .ast import DUCKDB, Dialect, SQLITE
from .compiler import compile_program
from .ddl import quote_identifier, schema_ddl
from .values import decode_value, encode_value


@dataclass
class ExecutionTrace:
    """The statements an execution ran, for inspection and documentation."""

    statements: list[str] = field(default_factory=list)


class _PipelineExecutor:
    """Shared machinery: load source, run pipeline, read target back."""

    dialect: Dialect

    def __init__(self, enforce_constraints: bool = False):
        self.enforce_constraints = enforce_constraints
        self.trace = ExecutionTrace()

    # Connections are duck-typed: sqlite3 and duckdb both expose
    # execute/close on their connection objects.
    def _connect(self) -> Any:
        raise NotImplementedError

    def _prepare(self, connection: Any) -> None:
        """Dialect-specific session setup (e.g. PRAGMAs)."""

    def _execute(self, connection: Any, sql: str, *args: Any) -> None:
        self.trace.statements.append(sql)
        connection.execute(sql, *args)

    def _load_instance(self, connection: Any, instance: Instance) -> None:
        for statement in schema_ddl(instance.schema, enforce=False):
            self._execute(connection, statement)
        for name, relation in instance.relations.items():
            arity = relation.schema.arity
            placeholders = ", ".join(["?"] * arity)
            sql = f"INSERT INTO {quote_identifier(name)} VALUES ({placeholders})"
            for row in relation.rows:
                self.trace.statements.append(sql)
                connection.execute(sql, tuple(encode_value(v) for v in row))

    def run(self, program: DatalogProgram, source: Instance) -> Instance:
        """Execute the compiled pipeline and return the decoded target instance."""
        target_schema = program.target_schema
        if not isinstance(target_schema, Schema):
            raise EvaluationError("program has no target schema")
        program.validate()
        pipeline = compile_program(program)
        self.trace = ExecutionTrace()
        connection = self._connect()
        try:
            self._prepare(connection)
            self._load_instance(connection, source)
            for statement in schema_ddl(target_schema, enforce=self.enforce_constraints):
                self._execute(connection, statement)
            for statement in pipeline.sql(self.dialect):
                self._execute(connection, statement)
            connection.commit()
            return self._read_target(connection, target_schema)
        finally:
            connection.close()

    def _read_target(self, connection: Any, target_schema: Schema) -> Instance:
        instance = Instance(target_schema)
        for relation in target_schema:
            columns = ", ".join(quote_identifier(a) for a in relation.attribute_names)
            cursor = connection.execute(
                f"SELECT {columns} FROM {quote_identifier(relation.name)}"
            )
            for row in cursor.fetchall():
                instance.add(relation.name, tuple(decode_value(v) for v in row))
        return instance


class SqliteExecutor(_PipelineExecutor):
    """Runs a compiled pipeline inside an in-memory SQLite database."""

    dialect = SQLITE

    def _connect(self) -> sqlite3.Connection:
        return sqlite3.connect(":memory:")

    def _prepare(self, connection: sqlite3.Connection) -> None:
        if self.enforce_constraints:
            self._execute(connection, "PRAGMA foreign_keys = ON")


def duckdb_available() -> bool:
    """Whether the optional ``duckdb`` package is importable."""
    try:
        import duckdb  # noqa: F401
    except ImportError:
        return False
    return True


class DuckDbExecutor(_PipelineExecutor):
    """Runs a compiled pipeline inside an in-memory DuckDB database.

    Requires the optional ``duckdb`` package; constructing the executor
    raises :class:`EvaluationError` when it is missing — gate callers on
    :func:`duckdb_available`.
    """

    dialect = DUCKDB

    def __init__(self, enforce_constraints: bool = False):
        if not duckdb_available():
            raise EvaluationError(
                "the duckdb package is not installed; "
                "gate on repro.sqlgen.duckdb_available()"
            )
        super().__init__(enforce_constraints)

    def _connect(self) -> Any:
        import duckdb

        return duckdb.connect(":memory:")


def run_on_sqlite(
    program: DatalogProgram, source: Instance, enforce_constraints: bool = False
) -> Instance:
    """Convenience wrapper around :class:`SqliteExecutor`."""
    return SqliteExecutor(enforce_constraints).run(program, source)


def run_on_duckdb(
    program: DatalogProgram, source: Instance, enforce_constraints: bool = False
) -> Instance:
    """Convenience wrapper around :class:`DuckDbExecutor` (optional dep)."""
    return DuckDbExecutor(enforce_constraints).run(program, source)
