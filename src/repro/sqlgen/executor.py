"""Execution of generated transformations on SQLite.

:class:`SqliteExecutor` materializes the source instance, runs the SQL
translation of a generated Datalog program, and reads the target instance
back (decoding invented values).  With ``enforce_constraints=True`` the
target tables carry their real PRIMARY KEY / NOT NULL / FOREIGN KEY
declarations, so a transformation that violates them — like the basic
algorithms on Figure 2 — fails with :class:`sqlite3.IntegrityError`; the
novel algorithms' output loads cleanly.  That check is itself one of the
paper's claims, exercised by the tests and benchmarks.
"""

from __future__ import annotations

import sqlite3
from dataclasses import dataclass, field

from ..errors import EvaluationError
from ..model.instance import Instance
from ..model.schema import Schema
from ..datalog.program import DatalogProgram
from .ddl import quote_identifier, schema_ddl
from .queries import program_to_sql
from .values import decode_value, encode_value


@dataclass
class ExecutionTrace:
    """The statements an execution ran, for inspection and documentation."""

    statements: list[str] = field(default_factory=list)


class SqliteExecutor:
    """Runs a generated transformation inside an in-memory SQLite database."""

    def __init__(self, enforce_constraints: bool = False):
        self.enforce_constraints = enforce_constraints
        self.trace = ExecutionTrace()

    def _execute(self, connection: sqlite3.Connection, sql: str, *args) -> None:
        self.trace.statements.append(sql)
        connection.execute(sql, *args)

    def _load_instance(self, connection: sqlite3.Connection, instance: Instance) -> None:
        for statement in schema_ddl(instance.schema, enforce=False):
            self._execute(connection, statement)
        for name, relation in instance.relations.items():
            arity = relation.schema.arity
            placeholders = ", ".join(["?"] * arity)
            sql = f"INSERT INTO {quote_identifier(name)} VALUES ({placeholders})"
            for row in relation.rows:
                self.trace.statements.append(sql)
                connection.execute(sql, tuple(encode_value(v) for v in row))

    def run(self, program: DatalogProgram, source: Instance) -> Instance:
        """Execute the program on SQLite and return the decoded target instance."""
        target_schema = program.target_schema
        if not isinstance(target_schema, Schema):
            raise EvaluationError("program has no target schema")
        program.validate()
        self.trace = ExecutionTrace()
        connection = sqlite3.connect(":memory:")
        try:
            if self.enforce_constraints:
                self._execute(connection, "PRAGMA foreign_keys = ON")
            self._load_instance(connection, source)
            for statement in schema_ddl(target_schema, enforce=self.enforce_constraints):
                self._execute(connection, statement)
            for statement in program_to_sql(program):
                self._execute(connection, statement)
            connection.commit()
            return self._read_target(connection, target_schema)
        finally:
            connection.close()

    def _read_target(
        self, connection: sqlite3.Connection, target_schema: Schema
    ) -> Instance:
        instance = Instance(target_schema)
        for relation in target_schema:
            columns = ", ".join(quote_identifier(a) for a in relation.attribute_names)
            cursor = connection.execute(
                f"SELECT {columns} FROM {quote_identifier(relation.name)}"
            )
            for row in cursor.fetchall():
                instance.add(relation.name, tuple(decode_value(v) for v in row))
        return instance


def run_on_sqlite(
    program: DatalogProgram, source: Instance, enforce_constraints: bool = False
) -> Instance:
    """Convenience wrapper around :class:`SqliteExecutor`."""
    return SqliteExecutor(enforce_constraints).run(program, source)
