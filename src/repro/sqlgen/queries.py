"""Translation of generated Datalog rules to SQL ASTs.

Each rule becomes an ``INSERT INTO ... SELECT DISTINCT ...`` over a join of
the body atoms; negated atoms become ``NOT EXISTS`` subqueries; null and
non-null conditions become ``IS NULL`` / ``IS NOT NULL``; Skolem terms
become the canonical string expression encoding the invented value (see
:func:`repro.sqlgen.ast.skolem_encode` and :mod:`repro.sqlgen.values`).

Join and equality predicates are :class:`~repro.sqlgen.ast.NullSafeEq`
nodes because, in the paper's semantics, the unlabeled null is an ordinary
value — two null foreign keys join like any other pair of equal values.
The node renders as SQLite's null-safe ``IS`` or DuckDB's standard
``IS NOT DISTINCT FROM`` depending on the dialect.

The string-level entry points (:func:`rule_to_sql`, :func:`program_to_sql`,
:func:`intermediate_ddl`) are thin renderings of the AST builders; the
whole-program pipeline lives in :mod:`repro.sqlgen.compiler`.
"""

from __future__ import annotations

from ..errors import QueryGenerationError
from ..logic.atoms import RelationalAtom
from ..logic.terms import Constant, NullTerm, SkolemTerm, Term, Variable
from ..datalog.program import DatalogProgram, Rule
from .ast import (
    Cmp,
    Col,
    CreateTable,
    Dialect,
    InsertSelect,
    IsNull,
    Lit,
    NotExists,
    NullLit,
    NullSafeEq,
    NullSafeNe,
    Select,
    SelectItem,
    SQLITE,
    SqlExpr,
    SqlPred,
    TableRef,
    skolem_encode,
    sql_literal,
)

__all__ = [
    "sql_literal",
    "relation_columns",
    "rule_select",
    "rule_insert",
    "rule_to_sql",
    "intermediate_tables",
    "intermediate_ddl",
    "program_to_sql",
]


def relation_columns(program: DatalogProgram, relation: str) -> list[str]:
    """The column names of ``relation`` as the SQL backend sees them."""
    for schema in (program.source_schema, program.target_schema):
        if schema is not None and relation in schema:
            return list(schema.relation(relation).attribute_names)
    if relation in program.intermediates:
        return [f"c{i}" for i in range(program.intermediates[relation])]
    raise QueryGenerationError(f"unknown relation {relation!r} in SQL translation")


class _RuleTranslator:
    """Builds the SELECT tree for one rule."""

    def __init__(self, rule: Rule, program: DatalogProgram):
        self.rule = rule
        self.program = program
        self.froms: list[TableRef] = []
        self.var_column: dict[Variable, Col] = {}
        self.predicates: list[SqlPred] = []
        self._bind_body()

    def _bind_body(self) -> None:
        for index, atom in enumerate(self.rule.body):
            alias = f"t{index}"
            self.froms.append(TableRef(atom.relation, alias))
            columns = relation_columns(self.program, atom.relation)
            for position, term in enumerate(atom.terms):
                reference = Col(alias, columns[position])
                if isinstance(term, Variable):
                    existing = self.var_column.get(term)
                    if existing is None:
                        self.var_column[term] = reference
                    else:
                        self.predicates.append(NullSafeEq(reference, existing))
                elif isinstance(term, Constant):
                    self.predicates.append(
                        Cmp("=", reference, Lit(term.value))
                    )
                elif isinstance(term, NullTerm):
                    self.predicates.append(IsNull(reference))
                else:  # pragma: no cover - Skolem terms never occur in bodies
                    raise QueryGenerationError(f"Skolem term in rule body: {term!r}")

    def term_expression(self, term: Term) -> SqlExpr:
        """The expression tree computing one head term."""
        if isinstance(term, Variable):
            try:
                return self.var_column[term]
            except KeyError:
                raise QueryGenerationError(f"unbound head variable {term!r}") from None
        if isinstance(term, Constant):
            return Lit(term.value)
        if isinstance(term, NullTerm):
            return NullLit()
        if isinstance(term, SkolemTerm):
            return skolem_encode(
                term.functor, [self.term_expression(a) for a in term.args]
            )
        raise QueryGenerationError(f"cannot translate term {term!r}")  # pragma: no cover

    def _negation_predicate(self, atom: RelationalAtom) -> NotExists:
        columns = relation_columns(self.program, atom.relation)
        alias = "n"
        conditions = tuple(
            NullSafeEq(Col(alias, columns[position]), self.term_expression(term))
            for position, term in enumerate(atom.terms)
        )
        return NotExists(
            Select(
                items=(SelectItem(Lit(1)),),
                froms=(TableRef(atom.relation, alias),),
                where=conditions,
            )
        )

    def select(self) -> Select:
        columns = relation_columns(self.program, self.rule.head.relation)
        items = tuple(
            SelectItem(self.term_expression(term), column)
            for term, column in zip(self.rule.head.terms, columns)
        )
        predicates = list(self.predicates)
        for var in self.rule.null_vars:
            predicates.append(IsNull(self.var_column[var]))
        for var in self.rule.nonnull_vars:
            predicates.append(IsNull(self.var_column[var], negated=True))
        for equality in self.rule.equalities:
            predicates.append(
                NullSafeEq(
                    self.term_expression(equality.left),
                    self.term_expression(equality.right),
                )
            )
        for disequality in self.rule.disequalities:
            predicates.append(
                NullSafeNe(
                    self.term_expression(disequality.left),
                    self.term_expression(disequality.right),
                )
            )
        for atom in self.rule.negated:
            predicates.append(self._negation_predicate(atom))
        return Select(
            items=items,
            froms=tuple(self.froms),
            where=tuple(predicates),
            distinct=True,
        )


def rule_select(rule: Rule, program: DatalogProgram) -> Select:
    """The SELECT tree computing one rule's derived tuples."""
    return _RuleTranslator(rule, program).select()


def rule_insert(rule: Rule, program: DatalogProgram) -> InsertSelect:
    """The ``INSERT ... SELECT ... EXCEPT`` tree for one rule.

    The EXCEPT dedup keeps set semantics across the several rules feeding
    one target relation (SQL set operations treat NULLs as equal, like the
    engine).
    """
    return InsertSelect(rule.head_relation, rule_select(rule, program))


def rule_to_sql(
    rule: Rule, program: DatalogProgram, dialect: Dialect = SQLITE
) -> str:
    """The ``INSERT ... SELECT`` statement for one rule, rendered."""
    return rule_insert(rule, program).render(dialect)


def intermediate_tables(program: DatalogProgram) -> list[CreateTable]:
    """``CREATE TABLE`` trees for the intermediate (tmp) relations."""
    return [
        CreateTable(name, tuple((f"c{i}", "TEXT") for i in range(arity)))
        for name, arity in program.intermediates.items()
    ]


def intermediate_ddl(
    program: DatalogProgram, dialect: Dialect = SQLITE
) -> list[str]:
    """``CREATE TABLE`` statements for the intermediate (tmp) relations."""
    return [table.render(dialect) for table in intermediate_tables(program)]


def program_to_sql(program: DatalogProgram, dialect: Dialect = SQLITE) -> list[str]:
    """All statements, in evaluation order: tmp DDL, then one INSERT per rule.

    Rendering of :func:`repro.sqlgen.compiler.compile_program`; rules are
    ordered by stratification so intermediate relations are filled before
    the rules that negate them.
    """
    from .compiler import compile_program

    return compile_program(program).sql(dialect)
