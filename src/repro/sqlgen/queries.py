"""Translation of generated Datalog programs to SQL.

Each rule becomes an ``INSERT INTO ... SELECT DISTINCT ...`` over a join of
the body atoms; negated atoms become ``NOT EXISTS`` subqueries; null and
non-null conditions become ``IS NULL`` / ``IS NOT NULL``; Skolem terms
become string expressions encoding the invented value (see
:mod:`repro.sqlgen.values`).

Join and equality predicates use SQL's null-safe ``IS`` operator because, in
the paper's semantics, the unlabeled null is an ordinary value — two null
foreign keys join like any other pair of equal values.
"""

from __future__ import annotations

from ..errors import QueryGenerationError
from ..logic.atoms import RelationalAtom
from ..logic.terms import Constant, NullTerm, SkolemTerm, Term, Variable
from ..datalog.program import DatalogProgram, Rule
from ..datalog.stratify import stratify
from .ddl import quote_identifier
from .values import INVENTED_PREFIX


def sql_literal(value: object) -> str:
    if isinstance(value, (int, float)):
        return str(value)
    text = str(value).replace("'", "''")
    return f"'{text}'"


def _column_ref(alias: str, relation_columns: list[str], position: int) -> str:
    return f"{alias}.{quote_identifier(relation_columns[position])}"


class _RuleTranslator:
    """Builds the SELECT for one rule."""

    def __init__(self, rule: Rule, program: DatalogProgram):
        self.rule = rule
        self.program = program
        self.aliases: list[str] = []
        self.var_column: dict[Variable, str] = {}
        self.predicates: list[str] = []
        self._bind_body()

    def _columns_of(self, relation: str) -> list[str]:
        source = self.program.source_schema
        target = self.program.target_schema
        for schema in (source, target):
            if schema is not None and relation in schema:
                return list(schema.relation(relation).attribute_names)
        if relation in self.program.intermediates:
            return [f"c{i}" for i in range(self.program.intermediates[relation])]
        raise QueryGenerationError(f"unknown relation {relation!r} in SQL translation")

    def _bind_body(self) -> None:
        for index, atom in enumerate(self.rule.body):
            alias = f"t{index}"
            self.aliases.append(alias)
            columns = self._columns_of(atom.relation)
            for position, term in enumerate(atom.terms):
                reference = _column_ref(alias, columns, position)
                if isinstance(term, Variable):
                    existing = self.var_column.get(term)
                    if existing is None:
                        self.var_column[term] = reference
                    else:
                        self.predicates.append(f"{reference} IS {existing}")
                elif isinstance(term, Constant):
                    self.predicates.append(f"{reference} = {sql_literal(term.value)}")
                elif isinstance(term, NullTerm):
                    self.predicates.append(f"{reference} IS NULL")
                else:  # pragma: no cover - Skolem terms never occur in bodies
                    raise QueryGenerationError(f"Skolem term in rule body: {term!r}")

    def term_expression(self, term: Term) -> str:
        """A SELECT expression computing one head term."""
        if isinstance(term, Variable):
            try:
                return self.var_column[term]
            except KeyError:
                raise QueryGenerationError(f"unbound head variable {term!r}") from None
        if isinstance(term, Constant):
            return sql_literal(term.value)
        if isinstance(term, NullTerm):
            return "NULL"
        if isinstance(term, SkolemTerm):
            pieces = [sql_literal(f"{INVENTED_PREFIX}{term.functor}(")]
            for i, arg in enumerate(term.args):
                if i:
                    pieces.append("','")
                pieces.append(
                    f"IFNULL(CAST({self.term_expression(arg)} AS TEXT), 'null')"
                )
            pieces.append("')'")
            return " || ".join(pieces)
        raise QueryGenerationError(f"cannot translate term {term!r}")  # pragma: no cover

    def _negation_predicate(self, atom: RelationalAtom) -> str:
        columns = self._columns_of(atom.relation)
        alias = "n"
        conditions = []
        for position, term in enumerate(atom.terms):
            reference = _column_ref(alias, columns, position)
            conditions.append(f"{reference} IS {self.term_expression(term)}")
        where = " AND ".join(conditions) if conditions else "1"
        return (
            f"NOT EXISTS (SELECT 1 FROM {quote_identifier(atom.relation)} {alias} "
            f"WHERE {where})"
        )

    def select_sql(self) -> str:
        expressions = [self.term_expression(t) for t in self.rule.head.terms]
        columns = self._columns_of(self.rule.head.relation)
        select_list = ", ".join(
            f"{expr} AS {quote_identifier(col)}"
            for expr, col in zip(expressions, columns)
        )
        from_list = ", ".join(
            f"{quote_identifier(atom.relation)} {alias}"
            for atom, alias in zip(self.rule.body, self.aliases)
        )
        predicates = list(self.predicates)
        for var in self.rule.null_vars:
            predicates.append(f"{self.var_column[var]} IS NULL")
        for var in self.rule.nonnull_vars:
            predicates.append(f"{self.var_column[var]} IS NOT NULL")
        for equality in self.rule.equalities:
            predicates.append(
                f"{self.term_expression(equality.left)} IS "
                f"{self.term_expression(equality.right)}"
            )
        for disequality in self.rule.disequalities:
            predicates.append(
                f"{self.term_expression(disequality.left)} IS NOT "
                f"{self.term_expression(disequality.right)}"
            )
        for atom in self.rule.negated:
            predicates.append(self._negation_predicate(atom))
        sql = f"SELECT DISTINCT {select_list} FROM {from_list}"
        if predicates:
            sql += " WHERE " + " AND ".join(predicates)
        return sql


def rule_to_sql(rule: Rule, program: DatalogProgram) -> str:
    """The ``INSERT ... SELECT`` statement for one rule."""
    translator = _RuleTranslator(rule, program)
    table = quote_identifier(rule.head_relation)
    # EXCEPT keeps set semantics across the several rules feeding one target
    # relation (SQL set operations treat NULLs as equal, like the engine).
    return (
        f"INSERT INTO {table} {translator.select_sql()} "
        f"EXCEPT SELECT * FROM {table}"
    )


def intermediate_ddl(program: DatalogProgram) -> list[str]:
    """``CREATE TABLE`` statements for the intermediate (tmp) relations."""
    statements = []
    for name, arity in program.intermediates.items():
        columns = ", ".join(f"{quote_identifier(f'c{i}')} TEXT" for i in range(arity))
        statements.append(f"CREATE TABLE {quote_identifier(name)} ({columns})")
    return statements


def program_to_sql(program: DatalogProgram) -> list[str]:
    """All statements, in evaluation order: tmp DDL, then one INSERT per rule.

    Rules are ordered by stratification so intermediate relations are filled
    before the rules that negate them, and duplicate target rows across
    different rules are tolerated via plain multi-statement inserts.
    """
    statements = intermediate_ddl(program)
    order = {name: i for i, name in enumerate(stratify(program))}
    for rule in sorted(program.rules, key=lambda r: order[r.head_relation]):
        statements.append(rule_to_sql(rule, program))
    return statements
