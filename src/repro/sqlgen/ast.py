"""A typed SQL AST with a deterministic, dialect-parameterized renderer.

The SQL backend used to build statements by string concatenation; everything
it emits is now a tree of the nodes below, rendered at the last moment for a
concrete :class:`Dialect`.  The structure exists for two reasons:

* **dialect safety** — constructs whose spelling differs between engines
  (null-safe equality is ``a IS b`` on SQLite but ``a IS NOT DISTINCT FROM
  b`` on DuckDB) are dedicated nodes (:class:`NullSafeEq`,
  :class:`NullSafeNe`) rendered per dialect, instead of SQLite-isms baked
  into strings;
* **translation validation** — :mod:`repro.analysis.sqlcheck` lowers these
  trees back into conjunctive queries and proves each emitted statement
  equivalent to the Datalog rule it was compiled from.  Strings cannot be
  lowered; trees can.

Invented values (labeled nulls) are encoded as strings by a *canonical
expression shape* built with :func:`skolem_encode` and recognized back by
:func:`match_skolem_encode`: a concatenation of the ``\\x02functor(`` prefix
and length-prefixed argument encodings (see :mod:`repro.sqlgen.values` for
the value-level counterpart).  The length prefixes make the encoding
injective — ``f('x,y')`` and ``f('x','y')`` render differently — which is
exactly what diagnostic ``SQL003`` checks for hand-built trees.

Rendering is deterministic: node order is the construction order, no
hashing, no sets.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, Sequence

from ..errors import QueryGenerationError

#: Marks an encoded invented value (kept in sync with repro.sqlgen.values).
INVENTED_PREFIX = "\x02"


# -- dialects --------------------------------------------------------------


@dataclass(frozen=True)
class Dialect:
    """Everything the renderer needs to know about one SQL engine.

    ``null_safe_eq`` / ``null_safe_ne`` are the infix spellings of null-safe
    (dis)equality: comparisons under which NULL compares equal to NULL and
    unequal to every other value — the paper's semantics for the unlabeled
    null.  ``ifnull`` names the two-argument coalescing function.
    """

    name: str
    null_safe_eq: str
    null_safe_ne: str
    ifnull: str

    def quote(self, identifier: str) -> str:
        """Quote an SQL identifier (doubling embedded quotes)."""
        return '"' + identifier.replace('"', '""') + '"'


#: SQLite: ``IS`` is general null-safe equality (a documented SQLite
#: extension; on other engines ``IS`` only accepts NULL / boolean literals).
SQLITE = Dialect(
    name="sqlite", null_safe_eq="IS", null_safe_ne="IS NOT", ifnull="IFNULL"
)

#: DuckDB speaks the standard spelling.
DUCKDB = Dialect(
    name="duckdb",
    null_safe_eq="IS NOT DISTINCT FROM",
    null_safe_ne="IS DISTINCT FROM",
    ifnull="COALESCE",
)

DIALECTS: dict[str, Dialect] = {d.name: d for d in (SQLITE, DUCKDB)}


def dialect_named(name: str) -> Dialect:
    try:
        return DIALECTS[name]
    except KeyError:
        raise QueryGenerationError(
            f"unknown SQL dialect {name!r}: expected one of {sorted(DIALECTS)}"
        ) from None


# -- literals --------------------------------------------------------------


def sql_literal(value: object) -> str:
    """Render a Python value as an SQL literal.

    ``bool`` is checked before ``int`` (it is a subclass: ``str(True)`` would
    otherwise leak the bare token ``True`` into the statement) and rendered
    as the integer SQLite stores for it.  Non-finite floats have no portable
    literal: infinities render as out-of-range decimals (which both SQLite
    and DuckDB read back as ±Inf) and NaN is rejected — NaN compares equal
    to nothing, so a NaN constant in a rule can never match and almost
    certainly marks a bug upstream.
    """
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, float):
        if math.isnan(value):
            raise QueryGenerationError(
                "cannot render NaN as an SQL literal (it compares equal to "
                "nothing, including itself)"
            )
        if math.isinf(value):
            return "9e999" if value > 0 else "-9e999"
        return repr(value)
    if isinstance(value, int):
        return str(value)
    text = str(value).replace("'", "''")
    return f"'{text}'"


# -- expressions -----------------------------------------------------------


class SqlExpr:
    """Base class of scalar expressions."""

    __slots__ = ()

    def render(self, dialect: Dialect) -> str:
        raise NotImplementedError

    def children(self) -> tuple["SqlExpr", ...]:
        return ()

    def walk(self) -> Iterator["SqlExpr"]:
        yield self
        for child in self.children():
            yield from child.walk()


@dataclass(frozen=True)
class Col(SqlExpr):
    """A column reference ``alias.column``."""

    alias: str
    column: str

    def render(self, dialect: Dialect) -> str:
        return f"{self.alias}.{dialect.quote(self.column)}"


@dataclass(frozen=True)
class Lit(SqlExpr):
    """A literal constant (rendered via :func:`sql_literal`)."""

    value: object

    def render(self, dialect: Dialect) -> str:
        return sql_literal(self.value)


@dataclass(frozen=True)
class NullLit(SqlExpr):
    """The SQL ``NULL`` literal."""

    def render(self, dialect: Dialect) -> str:
        return "NULL"


@dataclass(frozen=True)
class Cast(SqlExpr):
    """``CAST(expr AS type)``."""

    expr: SqlExpr
    type: str = "TEXT"

    def render(self, dialect: Dialect) -> str:
        return f"CAST({self.expr.render(dialect)} AS {self.type})"

    def children(self) -> tuple[SqlExpr, ...]:
        return (self.expr,)


@dataclass(frozen=True)
class Func(SqlExpr):
    """A scalar function call ``NAME(arg, ...)``."""

    name: str
    args: tuple[SqlExpr, ...]

    def render(self, dialect: Dialect) -> str:
        inner = ", ".join(a.render(dialect) for a in self.args)
        return f"{self.name}({inner})"

    def children(self) -> tuple[SqlExpr, ...]:
        return self.args


@dataclass(frozen=True)
class IfNull(SqlExpr):
    """Two-argument coalescing (``IFNULL`` on SQLite, ``COALESCE`` on DuckDB)."""

    expr: SqlExpr
    default: SqlExpr

    def render(self, dialect: Dialect) -> str:
        return (
            f"{dialect.ifnull}({self.expr.render(dialect)}, "
            f"{self.default.render(dialect)})"
        )

    def children(self) -> tuple[SqlExpr, ...]:
        return (self.expr, self.default)


@dataclass(frozen=True)
class Concat(SqlExpr):
    """String concatenation with ``||`` (NULL-propagating on both dialects)."""

    parts: tuple[SqlExpr, ...]

    def render(self, dialect: Dialect) -> str:
        return " || ".join(p.render(dialect) for p in self.parts)

    def children(self) -> tuple[SqlExpr, ...]:
        return self.parts


@dataclass(frozen=True)
class CaseWhen(SqlExpr):
    """``CASE WHEN condition THEN then ELSE otherwise END``."""

    condition: "SqlPred"
    then: SqlExpr
    otherwise: SqlExpr

    def render(self, dialect: Dialect) -> str:
        return (
            f"CASE WHEN {self.condition.render(dialect)} "
            f"THEN {self.then.render(dialect)} "
            f"ELSE {self.otherwise.render(dialect)} END"
        )

    def children(self) -> tuple[SqlExpr, ...]:
        return self.condition.expr_children() + (self.then, self.otherwise)


# -- predicates ------------------------------------------------------------


class SqlPred:
    """Base class of boolean predicates."""

    __slots__ = ()

    def render(self, dialect: Dialect) -> str:
        raise NotImplementedError

    def expr_children(self) -> tuple[SqlExpr, ...]:
        return ()

    def pred_children(self) -> tuple["SqlPred", ...]:
        return ()

    def walk(self) -> Iterator["SqlPred"]:
        yield self
        for child in self.pred_children():
            yield from child.walk()


@dataclass(frozen=True)
class Cmp(SqlPred):
    """A raw infix comparison ``left op right``.

    ``op`` is emitted verbatim; preferring :class:`NullSafeEq` /
    :class:`NullSafeNe` keeps statements portable (``Cmp("IS", a, b)``
    between computed expressions is the SQLite-only construct ``SQL002``
    flags).
    """

    op: str
    left: SqlExpr
    right: SqlExpr

    def render(self, dialect: Dialect) -> str:
        return (
            f"{self.left.render(dialect)} {self.op} {self.right.render(dialect)}"
        )

    def expr_children(self) -> tuple[SqlExpr, ...]:
        return (self.left, self.right)


@dataclass(frozen=True)
class NullSafeEq(SqlPred):
    """Null-safe equality, spelled per dialect."""

    left: SqlExpr
    right: SqlExpr

    def render(self, dialect: Dialect) -> str:
        return (
            f"{self.left.render(dialect)} {dialect.null_safe_eq} "
            f"{self.right.render(dialect)}"
        )

    def expr_children(self) -> tuple[SqlExpr, ...]:
        return (self.left, self.right)


@dataclass(frozen=True)
class NullSafeNe(SqlPred):
    """Null-safe disequality, spelled per dialect."""

    left: SqlExpr
    right: SqlExpr

    def render(self, dialect: Dialect) -> str:
        return (
            f"{self.left.render(dialect)} {dialect.null_safe_ne} "
            f"{self.right.render(dialect)}"
        )

    def expr_children(self) -> tuple[SqlExpr, ...]:
        return (self.left, self.right)


@dataclass(frozen=True)
class IsNull(SqlPred):
    """``expr IS [NOT] NULL`` (portable: the operand of ``IS`` is a literal)."""

    expr: SqlExpr
    negated: bool = False

    def render(self, dialect: Dialect) -> str:
        op = "IS NOT NULL" if self.negated else "IS NULL"
        return f"{self.expr.render(dialect)} {op}"

    def expr_children(self) -> tuple[SqlExpr, ...]:
        return (self.expr,)


@dataclass(frozen=True)
class NotExists(SqlPred):
    """``NOT EXISTS (subquery)`` — the translation of safe negation."""

    select: "Select"

    def render(self, dialect: Dialect) -> str:
        return f"NOT EXISTS ({self.select.render(dialect)})"

    def expr_children(self) -> tuple[SqlExpr, ...]:
        return tuple(
            expr
            for item in self.select.items
            for expr in (item.expr,)
        ) + tuple(
            expr
            for pred in self.select.where
            for expr in pred.expr_children()
        )

    def pred_children(self) -> tuple[SqlPred, ...]:
        return tuple(self.select.where)


# -- statements ------------------------------------------------------------


@dataclass(frozen=True)
class SelectItem:
    """One SELECT-list entry ``expr AS alias``."""

    expr: SqlExpr
    alias: str | None = None

    def render(self, dialect: Dialect) -> str:
        rendered = self.expr.render(dialect)
        if self.alias is not None:
            rendered += f" AS {dialect.quote(self.alias)}"
        return rendered


@dataclass(frozen=True)
class TableRef:
    """A FROM-list entry ``"name" alias``."""

    name: str
    alias: str

    def render(self, dialect: Dialect) -> str:
        return f"{dialect.quote(self.name)} {self.alias}"


@dataclass(frozen=True)
class Select:
    """``SELECT [DISTINCT] items FROM froms WHERE w1 AND w2 AND ...``."""

    items: tuple[SelectItem, ...]
    froms: tuple[TableRef, ...]
    where: tuple[SqlPred, ...] = ()
    distinct: bool = False

    def render(self, dialect: Dialect) -> str:
        keyword = "SELECT DISTINCT" if self.distinct else "SELECT"
        select_list = ", ".join(item.render(dialect) for item in self.items)
        sql = f"{keyword} {select_list}"
        if self.froms:
            from_list = ", ".join(t.render(dialect) for t in self.froms)
            sql += f" FROM {from_list}"
        if self.where:
            sql += " WHERE " + " AND ".join(
                p.render(dialect) for p in self.where
            )
        return sql

    def predicates(self) -> Iterator[SqlPred]:
        """All predicates of this select, subqueries included."""
        for pred in self.where:
            yield from pred.walk()

    def expressions(self) -> Iterator[SqlExpr]:
        """All expressions of this select, predicates and subqueries included."""
        for item in self.items:
            yield from item.expr.walk()
        for pred in self.predicates():
            for expr in pred.expr_children():
                yield from expr.walk()


class SqlStatement:
    """Base class of executable statements."""

    __slots__ = ()

    def render(self, dialect: Dialect) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class CreateTable(SqlStatement):
    """``CREATE TABLE name (col type, ...)`` — used for intermediates."""

    name: str
    columns: tuple[tuple[str, str], ...]  # (column name, type)

    def render(self, dialect: Dialect) -> str:
        body = ", ".join(
            f"{dialect.quote(column)} {type_}" for column, type_ in self.columns
        )
        return f"CREATE TABLE {dialect.quote(self.name)} ({body})"


#: Dedup policies of :class:`InsertSelect`.  ``"except"`` subtracts the
#: rows already present (SQL set operations treat NULLs as equal, like the
#: engine), which keeps set semantics across the several rules feeding one
#: relation.  ``None`` is a plain INSERT — only safe for the first write.
EXCEPT_DEDUP = "except"


@dataclass(frozen=True)
class InsertSelect(SqlStatement):
    """``INSERT INTO table SELECT ... [EXCEPT SELECT * FROM table]``."""

    table: str
    select: Select
    dedup: str | None = EXCEPT_DEDUP

    def render(self, dialect: Dialect) -> str:
        table = dialect.quote(self.table)
        sql = f"INSERT INTO {table} {self.select.render(dialect)}"
        if self.dedup == EXCEPT_DEDUP:
            sql += f" EXCEPT SELECT * FROM {table}"
        return sql


# -- the canonical invented-value encoding ---------------------------------


def _length_prefixed(text_expr: SqlExpr) -> SqlExpr:
    """``CAST(LENGTH(t) AS TEXT) || ':' || t`` for an already-TEXT operand."""
    return Concat(
        (
            Cast(Func("LENGTH", (text_expr,)), "TEXT"),
            Lit(":"),
            text_expr,
        )
    )


def skolem_argument(expr: SqlExpr) -> SqlExpr:
    """The canonical encoding of one Skolem-functor argument.

    NULL arguments encode as the bare token ``null``; everything else is
    cast to TEXT and *length-prefixed* (``<len>:<text>``), so argument
    boundaries are unambiguous — no separator that could occur inside a
    value is trusted.  Mirrors ``repro.sqlgen.values._encode_argument``.
    """
    text = Cast(expr, "TEXT")
    return CaseWhen(
        condition=IsNull(expr),
        then=Lit("null"),
        otherwise=_length_prefixed(text),
    )


def skolem_encode(functor: str, args: Sequence[SqlExpr]) -> SqlExpr:
    """The canonical expression computing an encoded invented value.

    The shape is fixed — ``'\\x02f(' || arg1 || ',' || ... || ')'`` with
    each ``argN`` built by :func:`skolem_argument` — because
    :func:`match_skolem_encode` (and through it the ``sqlcheck`` validator)
    recognizes exactly this shape when lowering statements back to logic.
    """
    if not args:
        return Lit(f"{INVENTED_PREFIX}{functor}()")
    parts: list[SqlExpr] = [Lit(f"{INVENTED_PREFIX}{functor}(")]
    for position, arg in enumerate(args):
        if position:
            parts.append(Lit(","))
        parts.append(skolem_argument(arg))
    parts.append(Lit(")"))
    return Concat(tuple(parts))


def _match_skolem_argument(expr: SqlExpr) -> SqlExpr | None:
    """The argument expression of a canonical :func:`skolem_argument`, or None."""
    if not isinstance(expr, CaseWhen):
        return None
    if not isinstance(expr.condition, IsNull) or expr.condition.negated:
        return None
    if expr.then != Lit("null"):
        return None
    subject = expr.condition.expr
    otherwise = expr.otherwise
    if not isinstance(otherwise, Concat) or len(otherwise.parts) != 3:
        return None
    length, colon, text = otherwise.parts
    if colon != Lit(":") or text != Cast(subject, "TEXT"):
        return None
    if length != Cast(Func("LENGTH", (Cast(subject, "TEXT"),)), "TEXT"):
        return None
    return subject


def match_skolem_encode(expr: SqlExpr) -> tuple[str, tuple[SqlExpr, ...]] | None:
    """Recognize the canonical invented-value encoding.

    Returns ``(functor, argument expressions)`` when ``expr`` is exactly the
    shape :func:`skolem_encode` produces, ``None`` otherwise.  This is the
    inverse the translation validator relies on: the functor and arguments
    are reconstructed from the *structure* of the emitted SQL, not from any
    side channel.
    """
    if isinstance(expr, Lit):
        value = expr.value
        if (
            isinstance(value, str)
            and value.startswith(INVENTED_PREFIX)
            and value.endswith("()")
            and "(" not in value[1:-2]
        ):
            return value[1:-2], ()
        return None
    if not isinstance(expr, Concat) or len(expr.parts) < 3:
        return None
    prefix, *middle, suffix = expr.parts
    if suffix != Lit(")"):
        return None
    if not isinstance(prefix, Lit) or not isinstance(prefix.value, str):
        return None
    head = prefix.value
    if not head.startswith(INVENTED_PREFIX) or not head.endswith("("):
        return None
    functor = head[1:-1]
    args: list[SqlExpr] = []
    expect_argument = True
    for part in middle:
        if expect_argument:
            argument = _match_skolem_argument(part)
            if argument is None:
                return None
            args.append(argument)
            expect_argument = False
        else:
            if part != Lit(","):
                return None
            expect_argument = True
    if expect_argument:  # trailing separator, or no argument at all
        return None
    return functor, tuple(args)


def looks_like_skolem_encoding(expr: SqlExpr) -> bool:
    """Heuristic: is ``expr`` *trying* to encode an invented value?

    True for any literal or concatenation whose leading literal starts with
    the invented-value prefix.  ``SQL003`` fires on expressions for which
    this is true but :func:`match_skolem_encode` fails — an encoding that
    merely joins arguments with a separator is ambiguous (``f('x,y')`` vs
    ``f('x','y')``) and merges distinct invented values.
    """
    if isinstance(expr, Lit):
        return isinstance(expr.value, str) and expr.value.startswith(
            INVENTED_PREFIX
        )
    if isinstance(expr, Concat) and expr.parts:
        first = expr.parts[0]
        return isinstance(first, Lit) and isinstance(first.value, str) and (
            first.value.startswith(INVENTED_PREFIX)
        )
    return False
