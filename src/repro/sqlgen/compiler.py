"""Whole-program compilation of Datalog mappings into SQL pipelines.

:func:`compile_program` turns a validated :class:`DatalogProgram` into one
:class:`SqlPipeline` — intermediate DDL first, then one ``INSERT``
statement per rule, grouped by stratum in stratification order (stable
within each relation, so the pipeline is deterministic).  Every statement
keeps a handle to the rule it was compiled from plus its read/write sets;
the ``sqlcheck`` validator uses the rule to prove the round-trip and the
read/write sets to prove the ordering sound.

Statements are dialect-free trees; rendering for a concrete engine happens
only in :meth:`SqlPipeline.sql` / :meth:`CompiledStatement.sql`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..datalog.program import DatalogProgram, Rule
from ..datalog.stratify import stratify
from .ast import Dialect, SQLITE, SqlStatement
from .queries import intermediate_tables, rule_insert


@dataclass(frozen=True)
class CompiledStatement:
    """One statement of a compiled pipeline.

    ``kind`` is ``"create"`` (intermediate DDL, ``rule`` is None) or
    ``"insert"`` (per-rule, ``rule`` is the originating Datalog rule).
    ``reads``/``writes`` are the relations the statement consumes and
    produces; ``stratum`` is the head relation's position in the
    stratification order.
    """

    kind: str
    node: SqlStatement
    stratum: int
    writes: str
    reads: tuple[str, ...] = ()
    rule: Rule | None = None

    def sql(self, dialect: Dialect = SQLITE) -> str:
        return self.node.render(dialect)


@dataclass(frozen=True)
class SqlPipeline:
    """A compiled mapping: the program plus its ordered statements."""

    program: DatalogProgram
    statements: tuple[CompiledStatement, ...] = field(default_factory=tuple)

    def sql(self, dialect: Dialect = SQLITE) -> list[str]:
        """All statements rendered for ``dialect``, in execution order."""
        return [statement.sql(dialect) for statement in self.statements]

    def inserts(self) -> list[CompiledStatement]:
        """The INSERT statements only, in execution order."""
        return [s for s in self.statements if s.kind == "insert"]

    def creates(self) -> list[CompiledStatement]:
        """The CREATE TABLE statements only."""
        return [s for s in self.statements if s.kind == "create"]


def _rule_reads(rule: Rule) -> tuple[str, ...]:
    seen: list[str] = []
    for atom in (*rule.body, *rule.negated):
        if atom.relation not in seen:
            seen.append(atom.relation)
    return tuple(seen)


def compile_program(program: DatalogProgram) -> SqlPipeline:
    """Compile ``program`` into its stratified SQL pipeline."""
    order = {name: i for i, name in enumerate(stratify(program))}
    statements: list[CompiledStatement] = [
        CompiledStatement(
            kind="create",
            node=table,
            stratum=order[table.name],
            writes=table.name,
        )
        for table in intermediate_tables(program)
    ]
    for rule in sorted(program.rules, key=lambda r: order[r.head_relation]):
        statements.append(
            CompiledStatement(
                kind="insert",
                node=rule_insert(rule, program),
                stratum=order[rule.head_relation],
                writes=rule.head_relation,
                reads=_rule_reads(rule),
                rule=rule,
            )
        )
    return SqlPipeline(program=program, statements=tuple(statements))
