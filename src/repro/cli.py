"""Command-line interface: compile, run, explain and match mapping problems.

Usage (after installation, via ``python -m repro``):

* ``python -m repro compile problem.txt`` — print the schema mapping and the
  generated transformation (``--sql`` for the SQL translation, ``--algorithm
  basic`` for the Clio-style baseline);
* ``python -m repro run problem.txt instance.txt`` — execute the
  transformation on an instance (``--engine batch`` for the planned
  set-oriented runtime, ``--workers N`` to partition large scans across
  processes; ``--engine sqlite`` runs on SQLite, ``--enforce`` with real
  constraints; ``--validate`` prints the target constraint report,
  ``--fail-on-violation`` additionally exits non-zero when it is not clean);
* ``python -m repro plan problem.txt`` (or ``--scenario NAME``) — dump the
  batch runtime's compiled operator trees (``--json`` for machine-readable
  output);
* ``python -m repro explain problem.txt`` — the full audit trail: logical
  relations, candidates, prune log, key conflicts, resolution;
* ``python -m repro match source.txt target.txt`` — suggest correspondences
  between two bare schemas and print a ready-to-edit problem file;
* ``python -m repro query problem.txt instance.txt "(c, n) <- C2(c,m,p), P2(p,n,e)"``
  — transform, then answer a conjunctive query over the target
  (``--certain`` for certain answers);
* ``python -m repro minimize problem.txt`` (or ``--scenario NAME``) —
  semantically minimize the generated transformation via chase-based
  containment and print the removal witnesses;
* ``python -m repro flow problem.txt`` (or ``--scenario NAME``) — dump the
  abstract-interpretation fixpoint over the generated program: per-position
  nullability, source provenance and key-origin, the static functionality
  confirmations, and the ``FLW*`` findings (``--json`` for a
  machine-readable dump);
* ``python -m repro certify problem.txt`` (or ``--scenario NAME``, or
  ``--all-scenarios``) — statically prove, refute with a minimal
  counterexample source instance, or leave UNKNOWN every key, foreign-key
  and NOT NULL constraint of the target schema plus the chase-termination
  bound (``--json`` / ``--sarif-out PATH`` for machine-readable output,
  ``--fail-on {refuted,unknown,never}`` for the exit policy; the findings
  also fold into ``lint --certify``);
* ``python -m repro sql problem.txt`` (or ``--scenario NAME``, or
  ``--all-scenarios``) — dump the compiled whole-program SQL pipeline
  (intermediate DDL + one stratified INSERT per rule; ``--dialect
  {sqlite,duckdb}``); ``--check`` runs the translation validator, printing
  one PROVED / UNKNOWN round-trip verdict per statement with the
  containment witnesses (the findings also fold into ``lint --sql``);
* ``python -m repro reproduce`` — re-run every figure/example of the paper
  and print the paper-vs-measured verdict table;
* ``python -m repro bench-diff baseline.json current.json`` — the
  perf-regression gate: compare two benchmark report files scenario by
  scenario and exit 1 when any wall time regressed past ``--threshold``;
* ``python -m repro eval --seeds 0:100`` — sweep generated scenarios
  (``repro.scenarios.generator``) through the full verification stack and
  print the results matrix: per-seed engine agreement (reference vs batch
  vs SQLite, DuckDB when importable), certify / sqlcheck verdict counts,
  cost boundedness and flow health; ``--out`` / ``--jsonl-out`` persist the
  matrix with provenance, ``--seed N --replay`` reprints one scenario's DSL
  and instance for offline debugging, and ``--fail-on
  {disagreement,error,never}`` sets the exit policy (the CI gate).

``compile``, ``run``, ``explain`` and ``query`` all accept the telemetry
flags ``--trace`` (stage-by-stage run report), ``--profile`` (per-stage
timings), ``--trace-out PATH`` (JSON run report) and ``--trace-chrome PATH``
(Chrome trace-event file), plus the metrics flags ``--metrics-out PATH``
(typed metrics snapshot JSON, schema ``docs/metrics.schema.json``) and
``--openmetrics-out PATH`` (Prometheus/OpenMetrics text); ``run`` adds
``--explain-analyze`` / ``--analyze-out PATH`` for the measured operator
trees.  See ``docs/OBSERVABILITY.md``.

Problem files use the text DSL of :mod:`repro.dsl.parser`, or JSON
(``.json``) as produced by :mod:`repro.dsl.jsonio`.
"""

from __future__ import annotations

import argparse
import json
import sys

from .core.matching import suggest_correspondences
from .core.pipeline import MappingProblem, MappingSystem
from .core.schema_mapping import BASIC, NOVEL
from .dsl.jsonio import load_problem
from .dsl.parser import parse_instance, parse_problem, parse_schema
from .dsl.renderer import render_program, render_schema, render_schema_mapping
from .dsl.report import explain
from .errors import ReproError
from .model.validation import validate_instance
from .obs.export import write_chrome_trace
from .sqlgen.executor import SqliteExecutor
from .sqlgen.queries import program_to_sql


def _load_problem(path: str) -> MappingProblem:
    if path.endswith(".json"):
        return load_problem(path)
    with open(path) as handle:
        return parse_problem(handle.read(), name=path)


def _wants_trace(args) -> bool:
    return bool(
        getattr(args, "trace", False)
        or getattr(args, "profile", False)
        or getattr(args, "trace_out", None)
        or getattr(args, "trace_chrome", None)
    )


def _wants_metrics(args) -> bool:
    return bool(
        getattr(args, "metrics_out", None)
        or getattr(args, "openmetrics_out", None)
    )


def _system(args, force_trace: bool = False) -> MappingSystem:
    problem = _load_problem(args.problem)
    return MappingSystem(
        problem,
        algorithm=args.algorithm,
        optimize=not args.no_optimize,
        trace=force_trace or _wants_trace(args),
        metrics=_wants_metrics(args),
        semantic_pruning=getattr(args, "semantic_pruning", False),
        verify_optimizations=getattr(args, "verify_optimizations", False),
    )


def _emit_telemetry(system: MappingSystem, args) -> None:
    """Print/write the merged RunReport, as requested by the trace flags."""
    if system.tracer is None or not _wants_trace(args):
        return
    report = system.stats()
    if getattr(args, "trace", False):
        print()
        print("# run report")
        print(report.render())
    if getattr(args, "profile", False):
        print()
        print("# profile")
        print(report.render_profile())
    if getattr(args, "trace_out", None):
        with open(args.trace_out, "w") as handle:
            json.dump(report.to_dict(), handle, indent=2)
            handle.write("\n")
    if getattr(args, "trace_chrome", None):
        write_chrome_trace(report, args.trace_chrome)


def _emit_metrics(system: MappingSystem, args) -> None:
    """Write the metrics snapshot / OpenMetrics files, when requested."""
    if system.metrics is None:
        return
    from .obs import write_metrics_json, write_openmetrics

    if getattr(args, "metrics_out", None):
        write_metrics_json(system.metrics, args.metrics_out)
    if getattr(args, "openmetrics_out", None):
        write_openmetrics(system.metrics, args.openmetrics_out)


def cmd_compile(args) -> int:
    system = _system(args)
    print("# schema mapping")
    print(render_schema_mapping(system.schema_mapping, shorten=not args.long_names))
    print()
    if args.sql:
        print("# SQL transformation")
        for statement in program_to_sql(system.transformation):
            print(statement + ";")
    else:
        print("# transformation (non-recursive Datalog)")
        print(render_program(system.transformation, shorten=not args.long_names))
    _emit_telemetry(system, args)
    _emit_metrics(system, args)
    return 0


def cmd_run(args) -> int:
    system = _system(args)
    if args.workers is not None and args.engine != "batch":
        print("error: --workers requires --engine batch", file=sys.stderr)
        return 2
    analyze = bool(args.explain_analyze or args.analyze_out)
    if analyze and args.engine == "sqlite":
        print(
            "error: --explain-analyze requires --engine batch or reference",
            file=sys.stderr,
        )
        return 2
    with open(args.instance) as handle:
        source = parse_instance(handle.read(), system.problem.source_schema)
    result = None
    if args.engine == "sqlite":
        executor = SqliteExecutor(enforce_constraints=args.enforce)
        target = executor.run(system.transformation, source)
    else:  # batch, reference (and reference's legacy alias "datalog")
        engine = "batch" if args.engine == "batch" else "reference"
        result = system.run(
            source, engine=engine, workers=args.workers, analyze=analyze
        )
        target = result.target
    print(target.to_text())
    if args.validate or args.fail_on_violation:
        report = validate_instance(target)
        print()
        print("validation:", report.summary())
        for item in report.diagnostics():
            print(f"  {item.render()}")
        if args.fail_on_violation and not report.ok:
            _emit_telemetry(system, args)
            _emit_metrics(system, args)
            return 1
    if result is not None and result.profile is not None:
        if args.explain_analyze:
            print()
            print("# explain analyze")
            print(result.profile.render())
        if args.analyze_out:
            with open(args.analyze_out, "w") as handle:
                json.dump(result.profile.to_dict(), handle, indent=2)
                handle.write("\n")
    _emit_telemetry(system, args)
    _emit_metrics(system, args)
    return 0


def cmd_explain(args) -> int:
    if args.why_pruned:
        return _why_pruned(_system(args), args.why_pruned)
    system = _system(args, force_trace=True)
    if args.instance:
        # Evaluate before rendering so the telemetry section carries the
        # engine's counters (the batch engine's eval.batches /
        # eval.index_reuse included) — without an instance there is no
        # evaluation to report on.
        with open(args.instance) as handle:
            source = parse_instance(
                handle.read(), system.problem.source_schema
            )
        system.run(source, engine=args.engine)
    print(explain(system))
    _emit_metrics(system, args)
    return 0


def _why_pruned(system: MappingSystem, name: str) -> int:
    """Explain one prune decision: the syntactic record plus, when one
    exists, the chase-based containment witness certifying it."""
    from .core.pruning import (
        semantic_implication_witness,
        semantic_subsumption_witnesses,
    )

    report = system.schema_mapping_result().report
    record = next((p for p in report.pruned if p.name == name), None)
    if record is None:
        pruned_names = ", ".join(sorted({p.name for p in report.pruned})) or "none"
        print(
            f"error: no pruned candidate named {name!r} "
            f"(pruned: {pruned_names})",
            file=sys.stderr,
        )
        return 2
    print(f"{record.name}: {record.description}")
    print(f"  rule:   {record.rule}")
    print(f"  reason: {record.reason}")
    if record.by is None:
        print("  no subsuming candidate: pruned on its own structure; "
              "containment witnesses do not apply")
        return 0
    candidates = {c.name: c for c in report.candidates}
    pruned_candidate = candidates.get(name)
    by_candidate = candidates.get(record.by)
    if pruned_candidate is None or by_candidate is None:
        print("  witness: unavailable (candidate pruned before the "
              "candidate-generation report)")
        return 0
    if record.rule == "implication":
        witness = semantic_implication_witness(by_candidate, pruned_candidate)
        if witness is not None:
            print(f"  containment witness ({record.by} implies {name}):")
            for line in witness.render().splitlines():
                print(f"    {line}")
            return 0
    else:
        witnesses = semantic_subsumption_witnesses(by_candidate, pruned_candidate)
        if witnesses is not None:
            source, target = witnesses
            print(f"  containment witnesses ({name}'s covered flows are "
                  f"contained in {record.by}'s):")
            print(f"    source side: {source.render()}")
            print(f"    target side: {target.render()}")
            return 0
    print("  witness: syntactic only (the chase-based engine found no "
          "containment certificate)")
    return 0


def cmd_query(args) -> int:
    from .exchange.queries import certain_answers, evaluate_query, parse_query
    from .model.values import format_value

    system = _system(args)
    with open(args.instance) as handle:
        source = parse_instance(handle.read(), system.problem.source_schema)
    target = system.transform(source)
    query = parse_query(args.query)
    answers = (
        certain_answers(query, target)
        if args.certain
        else evaluate_query(query, target)
    )
    for row in sorted(answers, key=repr):
        print("(" + ", ".join(format_value(v) for v in row) + ")")
    print(f"-- {len(answers)} answer(s)" + (" (certain)" if args.certain else ""))
    _emit_telemetry(system, args)
    _emit_metrics(system, args)
    return 0


def cmd_reproduce(_args) -> int:
    from .reproduce import render_reproduction_table, reproduce_all

    results = reproduce_all()
    print(render_reproduction_table(results))
    return 1 if any(r.verdict == "FAIL" for r in results) else 0


def cmd_minimize(args) -> int:
    """Semantically minimize a problem's transformation.

    Generates the program *without* the syntactic optimizer, removes every
    rule provably contained in another rule (chase witnesses printed), flags
    subsumed unitary mappings, and prints the minimized program.
    """
    from .analysis.semantic.minimize import (
        mapping_diagnostics,
        minimize_program,
        minimize_unitary_mappings,
    )

    if args.scenario:
        from . import scenarios

        bundled = scenarios.bundled_problems()
        if args.scenario not in bundled:
            print(
                f"error: unknown scenario {args.scenario!r}; "
                f"available: {', '.join(sorted(bundled))}",
                file=sys.stderr,
            )
            return 2
        problem = bundled[args.scenario]
    elif args.problem:
        problem = _load_problem(args.problem)
    else:
        print("error: pass a problem file or --scenario NAME", file=sys.stderr)
        return 2

    system = MappingSystem(
        problem, algorithm=args.algorithm, optimize=args.syntactic_first
    )
    result = system.query_result()
    minimized = minimize_program(result.program)

    print(f"# {problem.name}: semantic minimization "
          f"({'after' if args.syntactic_first else 'without'} the syntactic "
          f"optimizer)")
    if minimized.removed:
        print(f"removed {len(minimized.removed)} rule(s):")
        for item in minimized.diagnostics():
            print(f"  {item.render()}")
    else:
        print("no removable rules: the program is already minimal")
    flagged = minimize_unitary_mappings(result.final)
    if flagged:
        print(f"subsumed unitary mapping(s): {len(flagged)}")
        for item in mapping_diagnostics(flagged):
            print(f"  {item.render()}")
    print()
    print("# minimized transformation")
    print(render_program(minimized.program, shorten=not args.long_names))
    return 0


def _resolve_problem(args) -> MappingProblem | None:
    """A problem from a positional path or ``--scenario NAME`` (or None)."""
    if args.scenario:
        from . import scenarios

        bundled = scenarios.bundled_problems()
        if args.scenario not in bundled:
            print(
                f"error: unknown scenario {args.scenario!r}; "
                f"available: {', '.join(sorted(bundled))}",
                file=sys.stderr,
            )
            return None
        return bundled[args.scenario]
    if args.problem:
        return _load_problem(args.problem)
    print("error: pass a problem file or --scenario NAME", file=sys.stderr)
    return None


def _problem_batch(args) -> list[MappingProblem] | None:
    """All subjects of a multi-scenario command (``--all-scenarios``) or
    the single resolved problem; ``None`` after printing an error."""
    if args.all_scenarios:
        from . import scenarios

        bundled = scenarios.bundled_problems()
        return [bundled[name] for name in sorted(bundled)]
    problem = _resolve_problem(args)
    if problem is None:
        return None
    return [problem]


def cmd_flow(args) -> int:
    """Dump the flow engine's solved abstract state for one problem."""
    problem = _resolve_problem(args)
    if problem is None:
        return 2
    system = MappingSystem(problem, algorithm=args.algorithm)
    report = system.flow_report()
    if args.json:
        payload = {
            "problem": problem.name,
            "algorithm": args.algorithm,
            "states": report.states(),
            "stats": report.stats(),
            "functionality": [
                {
                    "relation": record.relation,
                    "rule": repr(record.rule),
                    "confirmed": record.confirmed,
                    "undetermined": list(record.undetermined),
                }
                for record in report.functionality
            ],
            "diagnostics": [item.render() for item in report.diagnostics],
        }
        print(json.dumps(payload, indent=2))
    else:
        print(f"# {problem.name}: flow analysis ({args.algorithm})")
        print(report.render())
    return 0


def cmd_certify(args) -> int:
    """Statically certify the target constraints of one or more problems.

    For every key, foreign key and NOT NULL constraint of the target schema
    the certifier prints PROVED (with the proof witness), REFUTED (with a
    minimal counterexample source instance, confirmed on both engines) or
    UNKNOWN, plus the program-level chase-termination bound.
    """
    from .analysis.sarif import write_sarif

    problems = _problem_batch(args)
    if problems is None:
        return 2

    reports = []
    for problem in problems:
        system = MappingSystem(problem, algorithm=args.algorithm)
        reports.append(system.certify())

    if args.sarif_out:
        write_sarif(
            args.sarif_out, *[report.diagnostics() for report in reports]
        )
    if args.json:
        payload = [report.to_dict() for report in reports]
        print(json.dumps(payload[0] if len(payload) == 1 else payload, indent=2))
    else:
        for report in reports:
            print(report.render())
            print()
        proved = sum(len(r.proved) for r in reports)
        refuted = sum(len(r.refuted) for r in reports)
        unknown = sum(len(r.unknown) for r in reports)
        print(
            f"{len(reports)} subject(s): {proved} proved, {refuted} refuted, "
            f"{unknown} unknown"
        )

    if args.fail_on == "never":
        return 0
    if args.fail_on == "unknown":
        return 0 if all(report.ok for report in reports) else 1
    return 1 if any(report.refuted for report in reports) else 0


def cmd_sql(args) -> int:
    """Dump the compiled SQL pipeline (and, with ``--check``, its proofs).

    The pipeline is the whole-mapping compilation: intermediate DDL plus
    one INSERT per rule in stratification order, rendered for the chosen
    dialect.  ``--check`` runs the translation validator and prints one
    PROVED / UNKNOWN round-trip verdict per statement (exit 1 unless every
    statement is PROVED and no structural finding is an error).
    """
    from .sqlgen import dialect_named

    problems = _problem_batch(args)
    if problems is None:
        return 2
    dialect = dialect_named(args.dialect)

    payloads = []
    ok = True
    for problem in problems:
        system = MappingSystem(problem, algorithm=args.algorithm)
        pipeline = system.sql_pipeline()
        payload: dict = {
            "problem": problem.name,
            "algorithm": args.algorithm,
            "dialect": dialect.name,
            "statements": pipeline.sql(dialect),
        }
        if args.check:
            report = system.sql_report()
            ok = ok and report.ok
            payload["check"] = report.to_dict()
            if not args.json:
                print(f"# {problem.name}: SQL pipeline ({dialect.name})")
                for statement in pipeline.sql(dialect):
                    print(f"{statement};")
                print(report.render())
                print()
        elif not args.json:
            print(f"# {problem.name}: SQL pipeline ({dialect.name})")
            for statement in pipeline.sql(dialect):
                print(f"{statement};")
            print()
        payloads.append(payload)
    if args.json:
        print(
            json.dumps(
                payloads[0] if len(payloads) == 1 else payloads, indent=2
            )
        )
    return 0 if (ok or not args.check) else 1


def cmd_plan(args) -> int:
    """Dump compiled operator trees (and, with ``--cost``, their bounds)."""
    if args.analyze and args.all_scenarios:
        print("error: --analyze works on a single problem", file=sys.stderr)
        return 2
    problems = _problem_batch(args)
    if problems is None:
        return 2
    if args.analyze:
        if not args.instance:
            print("error: --analyze requires --instance PATH", file=sys.stderr)
            return 2
        problem = problems[0]
        system = MappingSystem(problem, algorithm=args.algorithm)
        with open(args.instance) as handle:
            source = parse_instance(handle.read(), problem.source_schema)
        profile = system.run(source, engine="batch", analyze=True).profile
        if args.json:
            payload = {
                "problem": problem.name,
                "algorithm": args.algorithm,
                "analyze": profile.to_dict(),
            }
            print(json.dumps(payload, indent=2))
        else:
            print(
                f"# {problem.name}: batch execution plan, analyzed "
                f"({args.algorithm})"
            )
            print(profile.render())
        return 0

    payloads = []
    for problem in problems:
        system = MappingSystem(problem, algorithm=args.algorithm)
        payload = {"problem": problem.name, "algorithm": args.algorithm}
        if args.cost:
            report = system.cost_report()
            if args.json:
                payload["cost"] = report.to_dict()
            else:
                print(
                    f"# {problem.name}: static cost & cardinality bounds "
                    f"({args.algorithm})"
                )
                print(report.render())
                print()
        else:
            plan = system.plan()
            if args.json:
                payload["strata"] = [
                    {
                        "stratum": stratum,
                        "relation": relation,
                        "rules": [
                            {
                                "slots": rule_plan.n_slots,
                                "operators": [
                                    op.render() for op in rule_plan.operators()
                                ],
                            }
                            for rule_plan in plan.plans[relation]
                        ],
                    }
                    for stratum, relation in enumerate(plan.order)
                ]
            else:
                print(
                    f"# {problem.name}: batch execution plan "
                    f"({args.algorithm})"
                )
                print(plan.render())
        payloads.append(payload)
    if args.json:
        print(
            json.dumps(
                payloads[0] if len(payloads) == 1 else payloads, indent=2
            )
        )
    return 0


def cmd_lint(args) -> int:
    from .analysis.analyzer import analyze
    from .analysis.diagnostics import (
        ERROR,
        WARNING,
        AnalysisReport,
        severity_at_least,
    )
    from .analysis.sarif import to_sarif_json, write_sarif
    from .dsl.parser import parse_problem_lenient

    subjects: list[tuple[str, MappingProblem, list]] = []
    for path in args.problems:
        if path.endswith(".json"):
            subjects.append((path, load_problem(path), []))
        else:
            with open(path) as handle:
                problem, parse_diags = parse_problem_lenient(
                    handle.read(), name=path, file=path
                )
            subjects.append((path, problem, parse_diags))
    if args.all_scenarios or args.scenario:
        from . import scenarios

        bundled = scenarios.bundled_problems()
        if args.scenario:
            if args.scenario not in bundled:
                print(
                    f"error: unknown scenario {args.scenario!r}; "
                    f"available: {', '.join(sorted(bundled))}",
                    file=sys.stderr,
                )
                return 2
            bundled = {args.scenario: bundled[args.scenario]}
        subjects.extend((name, problem, []) for name, problem in bundled.items())
    if not subjects:
        print("error: nothing to lint (pass problem files, --scenario or "
              "--all-scenarios)", file=sys.stderr)
        return 2

    reports: list[AnalysisReport] = []
    for name, problem, parse_diags in subjects:
        report = analyze(problem, deep=not args.no_deep, algorithm=args.algorithm,
                         flow=args.flow)
        if args.certify:
            report.extend(_certify_lint(problem, algorithm=args.algorithm))
        if args.sql:
            report.extend(_sql_lint(problem, algorithm=args.algorithm))
        if args.cost:
            report.extend(_cost_lint(problem, algorithm=args.algorithm))
        if args.semantic or args.verify_optimizations:
            report.extend(
                _semantic_lint(
                    problem,
                    algorithm=args.algorithm,
                    semantic=args.semantic,
                    verify=args.verify_optimizations,
                )
            )
        # Lenient parsing and re-linting the built schema can both see the
        # same defect (e.g. SCH010); keep one copy of each finding.
        merged = AnalysisReport(subject=name)
        seen = set()
        for item in parse_diags + report.diagnostics:
            key = (item.code, item.message, str(item.span))
            if key not in seen:
                seen.add(key)
                merged.add(item)
        reports.append(merged)

    sarif = None
    if args.sarif_out:
        sarif = write_sarif(args.sarif_out, *reports)
    elif args.format == "sarif":
        sarif = to_sarif_json(*reports)
    if args.format == "sarif":
        print(sarif)
    else:
        for report in reports:
            print(f"# {report.subject}")
            print(report.render())
            print()
        total_errors = sum(len(r.errors) for r in reports)
        total_warnings = sum(len(r.warnings) for r in reports)
        print(
            f"{len(reports)} subject(s): {total_errors} error(s), "
            f"{total_warnings} warning(s)"
        )

    if args.fail_on == "never":
        return 0
    threshold = ERROR if args.fail_on == "error" else WARNING
    failing = any(
        severity_at_least(item.severity, threshold)
        for report in reports
        for item in report
    )
    return 1 if failing else 0


def _certify_lint(problem, algorithm: str) -> list:
    """The opt-in certification lint pass: CER001–003/TRM001 findings for
    every constraint the certifier could not prove."""
    try:
        system = MappingSystem(problem, algorithm=algorithm)
        return system.certify().diagnostics().diagnostics
    except ReproError:
        return []  # the structural analyzer already reported the failure


def _sql_lint(problem, algorithm: str) -> list:
    """The opt-in SQL lint pass: SQL001 for statements without a round-trip
    proof plus the structural SQL002–SQL005 findings."""
    try:
        system = MappingSystem(problem, algorithm=algorithm)
        return system.sql_report().diagnostics().diagnostics
    except ReproError:
        return []  # the structural analyzer already reported the failure


def _cost_lint(problem, algorithm: str) -> list:
    """The opt-in cost lint pass: PLN001–PLN004 findings from the symbolic
    cardinality bounds over the compiled plans (full fact base)."""
    try:
        system = MappingSystem(problem, algorithm=algorithm)
        return list(system.cost_report().findings)
    except ReproError:
        return []  # the structural analyzer already reported the failure


def _semantic_lint(problem, algorithm: str, semantic: bool, verify: bool) -> list:
    """The opt-in semantic lint pass: SEM001/SEM002 redundancy findings and
    SEM003/SEM004 differential-verifier certificate failures."""
    from .analysis.semantic.minimize import (
        mapping_diagnostics,
        minimize_program,
        minimize_unitary_mappings,
    )

    diags: list = []
    try:
        system = MappingSystem(problem, algorithm=algorithm)
        result = system.query_result()
    except ReproError:
        return diags  # the structural analyzer already reported the failure
    if semantic:
        diags.extend(minimize_program(result.program).diagnostics())
        diags.extend(mapping_diagnostics(minimize_unitary_mappings(result.final)))
    if verify:
        diags.extend(system.verify().diagnostics)
    return diags


def cmd_bench_diff(args) -> int:
    """The perf-regression gate: compare two benchmark report files.

    Exit status: 0 when no wall time regressed past the threshold, 1 when
    one did, 2 on unreadable inputs.
    """
    from .bench import diff_benchmarks, load_bench_file

    try:
        baseline = load_bench_file(args.baseline)
        current = load_bench_file(args.current)
    except (OSError, json.JSONDecodeError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    try:
        report = diff_benchmarks(
            baseline,
            current,
            threshold=args.threshold,
            min_seconds=args.min_seconds,
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report.render())
    return 0 if report.ok else 1


def _parse_inclusive_range(text: str, flag: str) -> tuple[int, int]:
    """``"2:4"`` → ``(2, 4)`` (inclusive, like the generator config ranges)."""
    lo, sep, hi = text.partition(":")
    try:
        if not sep:
            value = int(text)
            return value, value
        return int(lo), int(hi)
    except ValueError:
        raise SystemExit(f"error: {flag} expects LO:HI, got {text!r}") from None


def cmd_eval(args) -> int:
    """Sweep generated scenarios through the verification stack.

    Exit status: 0 when the matrix passes the ``--fail-on`` gate, 1 when it
    does not, 2 on unusable arguments.
    """
    from dataclasses import replace

    from .bench.evalmatrix import EvalMatrix, eval_scenario, parse_seed_range, run_eval
    from .scenarios.generator import DEFAULT, generate_scenario
    from .sqlgen.executor import duckdb_available

    overrides = {}
    if args.cyclic:
        overrides["weakly_acyclic"] = False
    if args.coverage is not None:
        overrides["coverage"] = args.coverage
    if args.rows is not None:
        overrides["rows"] = _parse_inclusive_range(args.rows, "--rows")
    if args.source_relations is not None:
        overrides["source_relations"] = _parse_inclusive_range(
            args.source_relations, "--source-relations"
        )
    if args.target_relations is not None:
        overrides["target_relations"] = _parse_inclusive_range(
            args.target_relations, "--target-relations"
        )
    try:
        config = replace(DEFAULT, **overrides)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.seed is not None:
        seeds = [args.seed]
    else:
        try:
            seeds = parse_seed_range(args.seeds)
        except ValueError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
    duckdb = False if args.no_duckdb else None

    if args.replay:
        rows = []
        for seed in seeds:
            scenario = generate_scenario(seed, config)
            print(f"# scenario {scenario.name} (seed {seed})")
            print(scenario.dsl)
            print("# source instance")
            print(scenario.instance_text)
            row = eval_scenario(seed, config, duckdb=duckdb)
            print("# eval row")
            print(json.dumps(row.to_dict(), indent=2, sort_keys=True))
            rows.append(row)
        matrix = EvalMatrix(
            rows=rows,
            config=config,
            duckdb=duckdb if duckdb is not None else duckdb_available(),
        )
    else:
        matrix = run_eval(seeds, config, duckdb=duckdb)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(matrix.to_json())
    if args.jsonl_out:
        with open(args.jsonl_out, "w") as handle:
            handle.write(matrix.to_jsonl())
    if args.json:
        print(json.dumps(matrix.to_dict(), indent=2, sort_keys=True))
    elif not args.replay:
        print(matrix.render())
    failures = matrix.gate(args.fail_on)
    for failure in failures:
        print(f"eval gate: {failure}", file=sys.stderr)
    return 1 if failures else 0


def cmd_match(args) -> int:
    with open(args.source) as handle:
        source = parse_schema(handle.read(), name="source")
    with open(args.target) as handle:
        target = parse_schema(handle.read(), name="target")
    suggestions = suggest_correspondences(source, target, threshold=args.threshold)
    print("source schema SRC:")
    for line in render_schema(source).splitlines():
        print(f"  {line}")
    print()
    print("target schema TGT:")
    for line in render_schema(target).splitlines():
        print(f"  {line}")
    print()
    print("correspondences:")
    for suggestion in suggestions:
        c = suggestion.correspondence
        print(f"  {c.source!r} -> {c.target!r}  # score {suggestion.score:.2f}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Relational mapping system with keys, foreign keys and "
        "nullable attributes (Cabibbo, EDBT 2009).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p):
        p.add_argument("problem", help="problem file (.txt DSL or .json)")
        p.add_argument(
            "--algorithm", choices=[BASIC, NOVEL], default=NOVEL,
            help="basic = Clio-style Algorithms 1+2; novel = the paper's 3+4",
        )
        p.add_argument("--no-optimize", action="store_true",
                       help="keep subsumed Datalog rules")
        p.add_argument("--semantic-pruning", action="store_true",
                       help="route pruning pairs the syntactic tests miss "
                            "through the chase-based containment engine")
        p.add_argument("--verify-optimizations", action="store_true",
                       help="certify every optimizer/resolution rewrite via "
                            "the differential verifier; fail on SEM003/SEM004")
        p.add_argument("--trace", action="store_true",
                       help="print the stage-by-stage run report (spans + counters)")
        p.add_argument("--profile", action="store_true",
                       help="print per-stage timings and counter totals")
        p.add_argument("--trace-out", metavar="PATH",
                       help="write the run report as JSON to PATH")
        p.add_argument("--trace-chrome", metavar="PATH",
                       help="write a Chrome trace-event file (chrome://tracing)")
        p.add_argument("--metrics-out", metavar="PATH",
                       help="write the typed metrics snapshot as JSON "
                            "(schema: docs/metrics.schema.json)")
        p.add_argument("--openmetrics-out", metavar="PATH",
                       help="write the metrics in Prometheus/OpenMetrics "
                            "text exposition format")

    compile_parser = sub.add_parser("compile", help="generate mapping + queries")
    common(compile_parser)
    compile_parser.add_argument("--sql", action="store_true",
                                help="emit the SQL translation instead of Datalog")
    compile_parser.add_argument("--long-names", action="store_true",
                                help="keep full Skolem functor names")
    compile_parser.set_defaults(func=cmd_compile)

    run_parser = sub.add_parser("run", help="execute the transformation")
    common(run_parser)
    run_parser.add_argument("instance", help="source instance file (DSL)")
    run_parser.add_argument(
        "--engine", choices=["reference", "batch", "sqlite", "datalog"],
        default="reference",
        help="reference = tuple-at-a-time oracle interpreter; batch = "
             "planned set-oriented runtime; sqlite = SQL translation on "
             "SQLite (datalog is a legacy alias for reference)",
    )
    run_parser.add_argument(
        "--workers", type=int, metavar="N",
        help="batch engine only: partition large outer scans across N "
             "worker processes",
    )
    run_parser.add_argument("--enforce", action="store_true",
                            help="enforce PK/FK/NOT NULL on SQLite")
    run_parser.add_argument("--validate", action="store_true",
                            help="report target constraint violations")
    run_parser.add_argument(
        "--fail-on-violation", action="store_true",
        help="validate the target and exit 1 when any constraint is "
             "violated (implies --validate; the CI gate)",
    )
    run_parser.add_argument(
        "--explain-analyze", action="store_true",
        help="print the measured operator trees (rows in/out, batches, "
             "timings, index hits) after the target instance",
    )
    run_parser.add_argument(
        "--analyze-out", metavar="PATH",
        help="write the execution profile (the EXPLAIN ANALYZE data) as "
             "JSON to PATH",
    )
    run_parser.set_defaults(func=cmd_run)

    explain_parser = sub.add_parser("explain", help="audit the generation run")
    common(explain_parser)
    explain_parser.add_argument(
        "--why-pruned", metavar="CANDIDATE",
        help="explain one prune decision (e.g. c3): the syntactic record "
             "plus the chase-based containment witness, or 'syntactic only'",
    )
    explain_parser.add_argument(
        "--instance", metavar="PATH",
        help="also execute the transformation on this source instance, so "
             "the telemetry section includes the evaluation counters",
    )
    explain_parser.add_argument(
        "--engine", choices=["reference", "batch"], default="batch",
        help="engine for the --instance evaluation (default: batch)",
    )
    explain_parser.set_defaults(func=cmd_explain)

    query_parser = sub.add_parser(
        "query", help="run a conjunctive query over the transformed target"
    )
    common(query_parser)
    query_parser.add_argument("instance", help="source instance file (DSL)")
    query_parser.add_argument(
        "query", help="e.g. \"(c, n) <- C2(c, m, p), P2(p, n, e)\""
    )
    query_parser.add_argument(
        "--certain", action="store_true",
        help="certain answers only (drop answers with invented values)",
    )
    query_parser.set_defaults(func=cmd_query)

    reproduce_parser = sub.add_parser(
        "reproduce", help="re-run every paper figure and print the verdicts"
    )
    reproduce_parser.set_defaults(func=cmd_reproduce)

    minimize_parser = sub.add_parser(
        "minimize",
        help="semantically minimize the generated transformation "
             "(chase-based containment, witnesses printed)",
    )
    minimize_parser.add_argument(
        "problem", nargs="?", help="problem file (.txt DSL or .json)"
    )
    minimize_parser.add_argument(
        "--scenario", metavar="NAME", help="minimize one bundled scenario"
    )
    minimize_parser.add_argument(
        "--algorithm", choices=[BASIC, NOVEL], default=NOVEL,
        help="basic = Clio-style Algorithms 1+2; novel = the paper's 3+4",
    )
    minimize_parser.add_argument(
        "--syntactic-first", action="store_true",
        help="run the syntactic optimizer first and only report what the "
             "semantic pass removes on top of it",
    )
    minimize_parser.add_argument(
        "--long-names", action="store_true",
        help="keep full Skolem functor names",
    )
    minimize_parser.set_defaults(func=cmd_minimize)

    flow_parser = sub.add_parser(
        "flow",
        help="dump the abstract-interpretation fixpoint over the generated "
             "program (nullability, provenance, key-origin)",
    )
    flow_parser.add_argument(
        "problem", nargs="?", help="problem file (.txt DSL or .json)"
    )
    flow_parser.add_argument(
        "--scenario", metavar="NAME", help="analyze one bundled scenario"
    )
    flow_parser.add_argument(
        "--algorithm", choices=[BASIC, NOVEL], default=NOVEL,
        help="basic = Clio-style Algorithms 1+2; novel = the paper's 3+4",
    )
    flow_parser.add_argument(
        "--json", action="store_true",
        help="emit the per-position states, solver stats, functionality "
             "records and findings as JSON",
    )
    flow_parser.set_defaults(func=cmd_flow)

    certify_parser = sub.add_parser(
        "certify",
        help="statically prove (or refute with a counterexample instance) "
             "every target key, foreign-key and NOT NULL constraint",
    )
    certify_parser.add_argument(
        "problem", nargs="?", help="problem file (.txt DSL or .json)"
    )
    certify_parser.add_argument(
        "--scenario", metavar="NAME", help="certify one bundled scenario"
    )
    certify_parser.add_argument(
        "--all-scenarios", action="store_true",
        help="certify every bundled scenario (the CI configuration)",
    )
    certify_parser.add_argument(
        "--algorithm", choices=[BASIC, NOVEL], default=NOVEL,
        help="basic = Clio-style Algorithms 1+2; novel = the paper's 3+4",
    )
    certify_parser.add_argument(
        "--json", action="store_true",
        help="emit the verdicts (witnesses and counterexamples included) "
             "as JSON",
    )
    certify_parser.add_argument(
        "--sarif-out", metavar="PATH",
        help="write the CER/TRM findings as a SARIF 2.1.0 log to PATH",
    )
    certify_parser.add_argument(
        "--fail-on", choices=["refuted", "unknown", "never"],
        default="refuted",
        help="exit 1 on any REFUTED constraint (default), on anything not "
             "PROVED (unknown), or never",
    )
    certify_parser.set_defaults(func=cmd_certify)

    sql_parser = sub.add_parser(
        "sql",
        help="dump the compiled SQL pipeline (intermediate DDL + stratified "
             "inserts) and, with --check, its round-trip proofs",
    )
    sql_parser.add_argument(
        "problem", nargs="?", help="problem file (.txt DSL or .json)"
    )
    sql_parser.add_argument(
        "--scenario", metavar="NAME", help="compile one bundled scenario"
    )
    sql_parser.add_argument(
        "--all-scenarios", action="store_true",
        help="compile every bundled scenario (the CI configuration)",
    )
    sql_parser.add_argument(
        "--algorithm", choices=[BASIC, NOVEL], default=NOVEL,
        help="basic = Clio-style Algorithms 1+2; novel = the paper's 3+4",
    )
    sql_parser.add_argument(
        "--dialect", choices=["sqlite", "duckdb"], default="sqlite",
        help="render the pipeline for this SQL dialect (default: sqlite)",
    )
    sql_parser.add_argument(
        "--check", action="store_true",
        help="run the translation validator: lower each statement back to "
             "a conjunctive query and prove it equivalent to its rule "
             "(exit 1 unless everything is PROVED)",
    )
    sql_parser.add_argument(
        "--json", action="store_true",
        help="emit the statements (and --check verdicts) as JSON",
    )
    sql_parser.set_defaults(func=cmd_sql)

    plan_parser = sub.add_parser(
        "plan",
        help="dump the batch runtime's compiled operator trees "
             "(scan/join/filter/antijoin/project per rule)",
    )
    plan_parser.add_argument(
        "problem", nargs="?", help="problem file (.txt DSL or .json)"
    )
    plan_parser.add_argument(
        "--scenario", metavar="NAME", help="plan one bundled scenario"
    )
    plan_parser.add_argument(
        "--all-scenarios", action="store_true",
        help="plan every bundled scenario (the CI configuration)",
    )
    plan_parser.add_argument(
        "--algorithm", choices=[BASIC, NOVEL], default=NOVEL,
        help="basic = Clio-style Algorithms 1+2; novel = the paper's 3+4",
    )
    plan_parser.add_argument(
        "--json", action="store_true",
        help="emit the per-stratum operator trees as JSON",
    )
    plan_parser.add_argument(
        "--cost", action="store_true",
        help="print the static cost & cardinality report instead: sound "
             "symbolic row bounds (polynomials in the source relation "
             "sizes) per operator, rule and derived relation",
    )
    plan_parser.add_argument(
        "--analyze", action="store_true",
        help="execute on --instance and annotate each operator with its "
             "measured rows/batches/timings (EXPLAIN ANALYZE)",
    )
    plan_parser.add_argument(
        "--instance", metavar="PATH",
        help="source instance file for --analyze",
    )
    plan_parser.set_defaults(func=cmd_plan)

    lint_parser = sub.add_parser(
        "lint", help="statically analyze problems (schemas, mappings, Datalog)"
    )
    lint_parser.add_argument(
        "problems", nargs="*",
        help="problem files (.txt DSL, parsed leniently, or .json)",
    )
    lint_parser.add_argument(
        "--scenario", metavar="NAME", help="lint one bundled scenario by name"
    )
    lint_parser.add_argument(
        "--all-scenarios", action="store_true",
        help="lint every bundled scenario (the CI configuration)",
    )
    lint_parser.add_argument(
        "--algorithm", choices=[BASIC, NOVEL], default=NOVEL,
        help="algorithm the deep checks and the generated program reflect",
    )
    lint_parser.add_argument(
        "--no-deep", action="store_true",
        help="static checks only: skip the pipeline-backed MAP/DLG checks",
    )
    lint_parser.add_argument(
        "--flow", action="store_true",
        help="also run the abstract-interpretation flow engine over the "
             "generated program (FLW001/FLW002/FLW003 findings)",
    )
    lint_parser.add_argument(
        "--certify", action="store_true",
        help="also run the constraint certifier (CER001/CER002/CER003/"
             "TRM001 on constraints not statically PROVED)",
    )
    lint_parser.add_argument(
        "--sql", action="store_true",
        help="also run the SQL translation validator (SQL001 on statements "
             "without a round-trip proof; SQL002–SQL005 structural "
             "findings)",
    )
    lint_parser.add_argument(
        "--cost", action="store_true",
        help="also run the cost & cardinality certifier (PLN001–PLN004: "
             "cross products, super-linear bounds, unbounded fan-out, "
             "dominated join orders)",
    )
    lint_parser.add_argument(
        "--semantic", action="store_true",
        help="also run the semantic redundancy pass (SEM001/SEM002: "
             "chase-provable subsumed rules and unitary mappings)",
    )
    lint_parser.add_argument(
        "--verify-optimizations", action="store_true",
        help="also run the differential optimizer verifier "
             "(SEM003/SEM004 on certificate failures)",
    )
    lint_parser.add_argument(
        "--format", choices=["text", "sarif"], default="text",
        help="output format (sarif = SARIF 2.1.0 JSON on stdout)",
    )
    lint_parser.add_argument(
        "--sarif-out", metavar="PATH",
        help="also write the SARIF 2.1.0 log to PATH",
    )
    lint_parser.add_argument(
        "--fail-on", choices=["error", "warning", "never"], default="error",
        help="lowest severity that makes the exit status 1 (default: error)",
    )
    lint_parser.set_defaults(func=cmd_lint)

    bench_parser = sub.add_parser(
        "bench-diff",
        help="compare two benchmark report files and fail on regressions",
    )
    bench_parser.add_argument(
        "baseline", help="baseline benchmark JSON (e.g. BENCH_scaling.json)"
    )
    bench_parser.add_argument(
        "current", help="current benchmark JSON to compare against it"
    )
    bench_parser.add_argument(
        "--threshold", type=float, default=2.0, metavar="RATIO",
        help="current/baseline ratio above which a timing is a regression "
             "(default: 2.0; must exceed 1.0 — benchmark runners are noisy)",
    )
    bench_parser.add_argument(
        "--min-seconds", type=float, default=0.001, metavar="SECS",
        help="ignore timings whose baseline is below this noise floor "
             "(default: 0.001)",
    )
    bench_parser.add_argument(
        "--json", action="store_true",
        help="emit the comparison report as JSON",
    )
    bench_parser.set_defaults(func=cmd_bench_diff)

    eval_parser = sub.add_parser(
        "eval",
        help="sweep generated scenarios through the full verification stack",
    )
    eval_parser.add_argument(
        "--seeds", default="0:20", metavar="A:B",
        help="seed range (half-open, e.g. 0:100) or comma list (default: 0:20)",
    )
    eval_parser.add_argument(
        "--seed", type=int, default=None, metavar="N",
        help="evaluate a single seed (overrides --seeds)",
    )
    eval_parser.add_argument(
        "--replay", action="store_true",
        help="print each scenario's DSL, source instance and eval row "
             "(seed-exact reproduction of a failing matrix entry)",
    )
    eval_parser.add_argument(
        "--cyclic", action="store_true",
        help="generate cyclic source schemas (SCH010 exercise; rows become "
             "lint-error instead of running the pipeline)",
    )
    eval_parser.add_argument(
        "--coverage", type=float, default=None, metavar="FRACTION",
        help="correspondence coverage fraction (default: generator default)",
    )
    eval_parser.add_argument(
        "--rows", default=None, metavar="LO:HI",
        help="rows per source relation, inclusive (default: generator default)",
    )
    eval_parser.add_argument(
        "--source-relations", default=None, metavar="LO:HI",
        help="source relation count, inclusive",
    )
    eval_parser.add_argument(
        "--target-relations", default=None, metavar="LO:HI",
        help="target relation count, inclusive",
    )
    eval_parser.add_argument(
        "--no-duckdb", action="store_true",
        help="skip the DuckDB differential leg even when duckdb is importable",
    )
    eval_parser.add_argument(
        "--out", default=None, metavar="PATH",
        help="write the matrix as provenance-stamped JSON",
    )
    eval_parser.add_argument(
        "--jsonl-out", default=None, metavar="PATH",
        help="write the matrix as JSONL, one row per line",
    )
    eval_parser.add_argument(
        "--json", action="store_true",
        help="print the matrix as JSON instead of the table",
    )
    eval_parser.add_argument(
        "--fail-on", choices=("disagreement", "error", "never"),
        default="disagreement",
        help="exit 1 on engine disagreement or definite negative verdicts "
             "(default), additionally on incomplete rows (error), or never",
    )
    eval_parser.set_defaults(func=cmd_eval)

    match_parser = sub.add_parser("match", help="suggest correspondences")
    match_parser.add_argument("source", help="source schema file (DSL)")
    match_parser.add_argument("target", help="target schema file (DSL)")
    match_parser.add_argument("--threshold", type=float, default=0.55)
    match_parser.set_defaults(func=cmd_match)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
