"""A minimal, dependency-free JSON-schema validator for run reports.

Supports the subset of JSON Schema the checked-in report schema
(``docs/run_report.schema.json``) uses: ``type``, ``required``,
``properties``, ``additionalProperties`` (as a schema), ``items``,
``minimum``, ``enum`` and ``$ref`` into ``$defs``.  Enough to gate the CI
smoke job without installing anything.

CLI use (exits non-zero on the first violation)::

    python -m repro.obs.schema report.json docs/run_report.schema.json
"""

from __future__ import annotations

import json
import sys
from typing import Any

_TYPES: dict[str, tuple[type, ...]] = {
    "object": (dict,),
    "array": (list,),
    "string": (str,),
    "number": (int, float),
    "integer": (int,),
    "boolean": (bool,),
    "null": (type(None),),
}


class SchemaViolation(ValueError):
    """The instance does not conform to the schema."""


def _resolve(schema: dict[str, Any], root: dict[str, Any]) -> dict[str, Any]:
    ref = schema.get("$ref")
    if ref is None:
        return schema
    if not ref.startswith("#/"):
        raise SchemaViolation(f"unsupported $ref {ref!r} (only #/ pointers)")
    node: Any = root
    for part in ref[2:].split("/"):
        node = node[part]
    return node


def _check_type(instance: Any, expected: str | list[str], path: str) -> None:
    names = [expected] if isinstance(expected, str) else list(expected)
    for name in names:
        accepted = _TYPES.get(name)
        if accepted is None:
            raise SchemaViolation(f"{path}: unknown schema type {name!r}")
        # bool is an int subclass; don't let booleans pass as numbers.
        if isinstance(instance, accepted) and not (
            isinstance(instance, bool) and name in ("number", "integer")
        ):
            return
    raise SchemaViolation(
        f"{path}: expected {' or '.join(names)}, got {type(instance).__name__}"
    )


def validate(instance: Any, schema: dict[str, Any], root: dict[str, Any] | None = None,
             path: str = "$") -> None:
    """Raise :class:`SchemaViolation` if ``instance`` violates ``schema``."""
    if root is None:
        root = schema
    schema = _resolve(schema, root)

    if "enum" in schema and instance not in schema["enum"]:
        raise SchemaViolation(f"{path}: {instance!r} not in {schema['enum']!r}")
    if "type" in schema:
        _check_type(instance, schema["type"], path)
    if isinstance(instance, (int, float)) and not isinstance(instance, bool):
        minimum = schema.get("minimum")
        if minimum is not None and instance < minimum:
            raise SchemaViolation(f"{path}: {instance} < minimum {minimum}")
    if isinstance(instance, dict):
        for name in schema.get("required", ()):
            if name not in instance:
                raise SchemaViolation(f"{path}: missing required property {name!r}")
        properties = schema.get("properties", {})
        additional = schema.get("additionalProperties")
        for name, value in instance.items():
            if name in properties:
                validate(value, properties[name], root, f"{path}.{name}")
            elif isinstance(additional, dict):
                validate(value, additional, root, f"{path}.{name}")
            elif additional is False:
                raise SchemaViolation(f"{path}: unexpected property {name!r}")
    if isinstance(instance, list):
        items = schema.get("items")
        if isinstance(items, dict):
            for index, value in enumerate(instance):
                validate(value, items, root, f"{path}[{index}]")


def validate_file(instance_path: str, schema_path: str) -> None:
    with open(instance_path) as handle:
        instance = json.load(handle)
    with open(schema_path) as handle:
        schema = json.load(handle)
    validate(instance, schema)


def main(argv: list[str] | None = None) -> int:
    args = sys.argv[1:] if argv is None else argv
    if len(args) != 2:
        print("usage: python -m repro.obs.schema <report.json> <schema.json>",
              file=sys.stderr)
        return 2
    try:
        validate_file(args[0], args[1])
    except (SchemaViolation, OSError, json.JSONDecodeError) as error:
        print(f"invalid: {error}", file=sys.stderr)
        return 1
    print(f"{args[0]} conforms to {args[1]}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
