"""Run reports: the serializable summary of one (or more) traced stages.

A :class:`RunReport` freezes what a :class:`~repro.obs.tracer.Tracer`
recorded — wall time, counter totals and the span tree — into plain
dictionaries, so it can be attached to pipeline results, merged across
stages, rendered as a human-readable tree, or dumped to JSON (see
:mod:`repro.obs.export` for the trace-level exporters).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from .tracer import Span, Tracer


def span_to_dict(span: Span) -> dict[str, Any]:
    """A JSON-ready nested dictionary for one span subtree."""
    return {
        "name": span.name,
        "start": span.start,
        "duration": span.duration,
        "attributes": dict(span.attributes),
        "counters": dict(span.counters),
        "children": [span_to_dict(child) for child in span.children],
    }


def _walk_dicts(node: dict[str, Any]):
    yield node
    for child in node.get("children", ()):
        yield from _walk_dicts(child)


@dataclass
class RunReport:
    """Counters, wall time and the span tree of one pipeline stage (or run)."""

    label: str = ""
    wall_time: float = 0.0
    counters: dict[str, int] = field(default_factory=dict)
    spans: list[dict[str, Any]] = field(default_factory=list)

    # -- construction -------------------------------------------------------

    @classmethod
    def from_span(cls, span: Span, label: str = "") -> "RunReport":
        """A report for one stage: the subtree rooted at its top-level span."""
        return cls(
            label=label or span.name,
            wall_time=span.duration,
            counters=span.total_counters(),
            spans=[span_to_dict(span)],
        )

    @classmethod
    def from_tracer(cls, tracer: Tracer, label: str = "") -> "RunReport":
        """A report over everything the tracer recorded."""
        return cls(
            label=label,
            wall_time=sum(s.duration for s in tracer.spans),
            counters=dict(tracer.counters),
            spans=[span_to_dict(s) for s in tracer.spans],
        )

    # -- combination --------------------------------------------------------

    def merged(self, *others: "RunReport | None") -> "RunReport":
        """This report plus ``others`` (None entries are skipped)."""
        result = RunReport(
            label=self.label,
            wall_time=self.wall_time,
            counters=dict(self.counters),
            spans=list(self.spans),
        )
        labels = [self.label] if self.label else []
        for other in others:
            if other is None:
                continue
            result.wall_time += other.wall_time
            for name, value in other.counters.items():
                result.counters[name] = result.counters.get(name, 0) + value
            result.spans.extend(other.spans)
            if other.label:
                labels.append(other.label)
        result.label = "+".join(labels)
        return result

    # -- serialization ------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "label": self.label,
            "wall_time": self.wall_time,
            "counters": dict(self.counters),
            "spans": [dict(s) for s in self.spans],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "RunReport":
        return cls(
            label=data.get("label", ""),
            wall_time=float(data.get("wall_time", 0.0)),
            counters={str(k): int(v) for k, v in data.get("counters", {}).items()},
            spans=list(data.get("spans", [])),
        )

    # -- rendering ----------------------------------------------------------

    def render(self, counters: bool = True, max_depth: int | None = None) -> str:
        """The human-readable stage-by-stage tree, timings in milliseconds."""
        lines: list[str] = []
        title = self.label or "run"
        lines.append(f"run report: {title}  ({self.wall_time * 1000:.2f} ms)")

        def emit(node: dict[str, Any], depth: int) -> None:
            if max_depth is not None and depth > max_depth:
                return
            indent = "  " * (depth + 1)
            attrs = node.get("attributes") or {}
            suffix = ""
            if attrs:
                rendered = ", ".join(f"{k}={v}" for k, v in attrs.items())
                suffix = f"  [{rendered}]"
            lines.append(
                f"{indent}{node['name']}: {node['duration'] * 1000:.2f} ms{suffix}"
            )
            for name, value in sorted((node.get("counters") or {}).items()):
                lines.append(f"{indent}  · {name} = {value}")
            for child in node.get("children", ()):
                emit(child, depth + 1)

        for top in self.spans:
            emit(top, 0)
        if counters and self.counters:
            lines.append("counters (totals):")
            width = max(len(name) for name in self.counters)
            for name in sorted(self.counters):
                lines.append(f"  {name.ljust(width)}  {self.counters[name]}")
        return "\n".join(lines)

    def render_profile(self) -> str:
        """A timing-focused summary: per-stage wall time plus counter totals."""
        lines = [f"profile: {self.label or 'run'}  ({self.wall_time * 1000:.2f} ms total)"]
        for top in self.spans:
            lines.append(f"  {top['name']}: {top['duration'] * 1000:.2f} ms")
            # Direct children are the interesting sub-stages.
            for child in top.get("children", ()):
                share = (
                    child["duration"] / top["duration"] * 100 if top["duration"] else 0.0
                )
                lines.append(
                    f"    {child['name']}: {child['duration'] * 1000:.2f} ms ({share:.0f}%)"
                )
        if self.counters:
            lines.append("counters (totals):")
            width = max(len(name) for name in self.counters)
            for name in sorted(self.counters):
                lines.append(f"  {name.ljust(width)}  {self.counters[name]}")
        return "\n".join(lines)
