"""Trace exporters: JSON-lines span dumps and Chrome trace-event files.

Two machine formats complement the human tree of
:meth:`repro.obs.report.RunReport.render`:

* **JSON lines** — one flat record per span (depth/parent indices) plus one
  ``counter`` record per counter total; greppable, diffable, streamable;
* **Chrome trace events** — the ``{"traceEvents": [...]}`` format understood
  by ``chrome://tracing`` and https://ui.perfetto.dev: complete (``"X"``)
  events with microsecond timestamps relative to the earliest span.
"""

from __future__ import annotations

import json
from typing import Any, Iterator

from .report import RunReport


def _flatten(
    node: dict[str, Any], depth: int, parent: int, counter: list[int]
) -> Iterator[dict[str, Any]]:
    index = counter[0]
    counter[0] += 1
    yield {
        "type": "span",
        "index": index,
        "parent": parent,
        "depth": depth,
        "name": node["name"],
        "start": node["start"],
        "duration": node["duration"],
        "attributes": node.get("attributes") or {},
        "counters": node.get("counters") or {},
    }
    for child in node.get("children", ()):
        yield from _flatten(child, depth + 1, index, counter)


def report_records(report: RunReport) -> list[dict[str, Any]]:
    """The flat JSON-lines records of a report (spans, then counter totals)."""
    records: list[dict[str, Any]] = []
    counter = [0]
    for top in report.spans:
        records.extend(_flatten(top, 0, -1, counter))
    for name in sorted(report.counters):
        records.append({"type": "counter", "name": name, "value": report.counters[name]})
    return records


def to_jsonl(report: RunReport) -> str:
    """Serialize a report as JSON lines (one record per line)."""
    return "\n".join(json.dumps(r, sort_keys=True) for r in report_records(report))


def from_jsonl(text: str) -> list[dict[str, Any]]:
    """Parse JSON lines back into the flat records (for tools and tests)."""
    return [json.loads(line) for line in text.splitlines() if line.strip()]


def write_jsonl(report: RunReport, path: str) -> None:
    with open(path, "w") as handle:
        handle.write(to_jsonl(report) + "\n")


def to_chrome_trace(report: RunReport) -> dict[str, Any]:
    """The Chrome trace-event dictionary for a report's spans and counters."""
    records = [r for r in report_records(report) if r["type"] == "span"]
    origin = min((r["start"] for r in records), default=0.0)
    events: list[dict[str, Any]] = []
    for record in records:
        args: dict[str, Any] = dict(record["attributes"])
        args.update(record["counters"])
        events.append(
            {
                "name": record["name"],
                "ph": "X",
                "ts": (record["start"] - origin) * 1_000_000,
                "dur": record["duration"] * 1_000_000,
                "pid": 0,
                "tid": 0,
                "args": args,
            }
        )
    for name in sorted(report.counters):
        events.append(
            {
                "name": name,
                "ph": "C",
                "ts": 0,
                "pid": 0,
                "tid": 0,
                "args": {name: report.counters[name]},
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(report: RunReport, path: str) -> None:
    with open(path, "w") as handle:
        json.dump(to_chrome_trace(report), handle, indent=2)
