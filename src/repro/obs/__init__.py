"""Pipeline observability: tracing spans, counters and run reports.

Zero-dependency, off-by-default instrumentation for the two-stage mapping
pipeline.  The module-level helpers :func:`span` and :func:`count` dispatch
to the tracer installed via :func:`use_tracer`; with no tracer installed
they hit the shared no-op tracer and cost one contextvar read each, so the
instrumented hot paths are unaffected when observability is off.

Layers:

* :mod:`repro.obs.tracer` — contextvar-based :class:`Tracer` with nested
  :class:`Span` trees, monotonic timers and named counters;
* :mod:`repro.obs.report` — :class:`RunReport`, the serializable per-stage
  summary attached to pipeline results and merged by
  :meth:`repro.core.pipeline.MappingSystem.stats`;
* :mod:`repro.obs.export` — JSON-lines and Chrome trace-event exporters;
* :mod:`repro.obs.metrics` — the typed, labeled metrics registry
  (counters, gauges, fixed-bucket histograms; per-run scopes and
  cross-process merging) behind ``--explain-analyze`` and the exporters;
* :mod:`repro.obs.metrics_export` — metrics snapshot JSON (pinned by
  ``docs/metrics.schema.json``) and Prometheus/OpenMetrics text exposition;
* :mod:`repro.obs.schema` — the mini JSON-schema validator used by CI to
  check emitted reports against ``docs/run_report.schema.json``.

The span taxonomy and counter names are documented in
``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

from .export import (
    from_jsonl,
    report_records,
    to_chrome_trace,
    to_jsonl,
    write_chrome_trace,
    write_jsonl,
)
from .metrics import (
    DEFAULT_BUCKETS,
    NOOP_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricTypeError,
    NoopMetricsRegistry,
    current_metrics,
    metric_inc,
    metric_observe,
    metric_set,
    metrics_enabled,
    use_metrics,
)
from .metrics_export import (
    metrics_snapshot_json,
    read_metrics_json,
    to_openmetrics,
    write_metrics_json,
    write_openmetrics,
)
from .report import RunReport, span_to_dict
from .tracer import (
    NOOP,
    NoopTracer,
    Span,
    Tracer,
    count,
    current_tracer,
    span,
    use_tracer,
)


def stage_report(root_span, label: str = "") -> RunReport | None:
    """A :class:`RunReport` for a finished stage span, or None when tracing
    is off (the stage span is then the shared no-op span)."""
    if not current_tracer().enabled:
        return None
    return RunReport.from_span(root_span, label=label)


__all__ = [
    "DEFAULT_BUCKETS",
    "NOOP",
    "NOOP_METRICS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricTypeError",
    "MetricsRegistry",
    "NoopMetricsRegistry",
    "NoopTracer",
    "RunReport",
    "Span",
    "Tracer",
    "count",
    "current_metrics",
    "current_tracer",
    "from_jsonl",
    "metric_inc",
    "metric_observe",
    "metric_set",
    "metrics_enabled",
    "metrics_snapshot_json",
    "read_metrics_json",
    "report_records",
    "span",
    "span_to_dict",
    "stage_report",
    "to_chrome_trace",
    "to_jsonl",
    "to_openmetrics",
    "use_metrics",
    "use_tracer",
    "write_chrome_trace",
    "write_jsonl",
    "write_metrics_json",
    "write_openmetrics",
]
