"""Pipeline observability: tracing spans, counters and run reports.

Zero-dependency, off-by-default instrumentation for the two-stage mapping
pipeline.  The module-level helpers :func:`span` and :func:`count` dispatch
to the tracer installed via :func:`use_tracer`; with no tracer installed
they hit the shared no-op tracer and cost one contextvar read each, so the
instrumented hot paths are unaffected when observability is off.

Layers:

* :mod:`repro.obs.tracer` — contextvar-based :class:`Tracer` with nested
  :class:`Span` trees, monotonic timers and named counters;
* :mod:`repro.obs.report` — :class:`RunReport`, the serializable per-stage
  summary attached to pipeline results and merged by
  :meth:`repro.core.pipeline.MappingSystem.stats`;
* :mod:`repro.obs.export` — JSON-lines and Chrome trace-event exporters;
* :mod:`repro.obs.schema` — the mini JSON-schema validator used by CI to
  check emitted reports against ``docs/run_report.schema.json``.

The span taxonomy and counter names are documented in
``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

from .export import (
    from_jsonl,
    report_records,
    to_chrome_trace,
    to_jsonl,
    write_chrome_trace,
    write_jsonl,
)
from .report import RunReport, span_to_dict
from .tracer import (
    NOOP,
    NoopTracer,
    Span,
    Tracer,
    count,
    current_tracer,
    span,
    use_tracer,
)


def stage_report(root_span, label: str = "") -> RunReport | None:
    """A :class:`RunReport` for a finished stage span, or None when tracing
    is off (the stage span is then the shared no-op span)."""
    if not current_tracer().enabled:
        return None
    return RunReport.from_span(root_span, label=label)


__all__ = [
    "NOOP",
    "NoopTracer",
    "RunReport",
    "Span",
    "Tracer",
    "count",
    "current_tracer",
    "from_jsonl",
    "report_records",
    "span",
    "span_to_dict",
    "stage_report",
    "to_chrome_trace",
    "to_jsonl",
    "use_tracer",
    "write_chrome_trace",
    "write_jsonl",
]
