"""A zero-dependency tracer: nested spans, monotonic timers, named counters.

The active tracer lives in a :class:`contextvars.ContextVar`, so tracing is
re-entrant and safe across generators and (hypothetical) concurrent tasks.
Instrumentation sites call the module-level helpers :func:`span` and
:func:`count`; when no tracer has been installed they dispatch to the shared
:data:`NOOP` tracer, whose methods allocate nothing — a single contextvar
read plus a method call — so the instrumented pipeline is unaffected when
observability is off (the default).

Typical use::

    from repro.obs import Tracer, use_tracer, span, count

    tracer = Tracer()
    with use_tracer(tracer):
        with span("chase.relation", relation="C2") as s:
            count("chase.steps")
            s.set(tableaux=2)
    tracer.counters        # {"chase.steps": 1}
    tracer.spans[0].name   # "chase.relation"
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator


@dataclass
class Span:
    """One timed, named region of the pipeline, possibly with children.

    ``start``/``end`` are :func:`time.perf_counter` readings; ``counters``
    holds the counts incremented while this span was the innermost one.
    """

    name: str
    attributes: dict[str, Any] = field(default_factory=dict)
    start: float = 0.0
    end: float | None = None
    children: list["Span"] = field(default_factory=list)
    counters: dict[str, int] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """Elapsed seconds (to now if the span is still open)."""
        end = self.end if self.end is not None else time.perf_counter()
        return end - self.start

    def set(self, **attributes: Any) -> None:
        """Attach result attributes after the fact (e.g. output sizes)."""
        self.attributes.update(attributes)

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def total_counters(self) -> dict[str, int]:
        """Counters aggregated over the whole subtree."""
        totals: dict[str, int] = {}
        for node in self.walk():
            for name, value in node.counters.items():
                totals[name] = totals.get(name, 0) + value
        return totals


class _NoopSpan:
    """A reusable, stateless stand-in for :class:`Span` when tracing is off."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False

    def set(self, **attributes: Any) -> None:
        pass


NOOP_SPAN = _NoopSpan()


class NoopTracer:
    """The do-nothing tracer installed by default.

    It records no spans and no counters; ``span()`` hands back one shared
    context manager, so disabled instrumentation performs no allocation.
    """

    enabled = False
    spans: tuple[Span, ...] = ()
    counters: dict[str, int] = {}

    def span(self, name: str, **attributes: Any) -> _NoopSpan:
        return NOOP_SPAN

    def count(self, name: str, value: int = 1) -> None:
        pass


NOOP = NoopTracer()

#: The tracer instrumentation dispatches to; NOOP unless :func:`use_tracer`
#: (or :func:`set_tracer`) installed a recording one.
_ACTIVE_TRACER: ContextVar["Tracer | NoopTracer"] = ContextVar(
    "repro_obs_tracer", default=NOOP
)
#: The innermost open span of the active tracer (for nesting and counters).
_CURRENT_SPAN: ContextVar[Span | None] = ContextVar("repro_obs_span", default=None)


class Tracer:
    """A recording tracer: a forest of spans plus global counter totals."""

    enabled = True

    def __init__(self, clock: Callable[[], float] = time.perf_counter):
        self._clock = clock
        self.spans: list[Span] = []
        self.counters: dict[str, int] = {}

    @contextmanager
    def span(self, name: str, **attributes: Any) -> Iterator[Span]:
        """Open a nested span; it closes (and is timed) on exit."""
        node = Span(name=name, attributes=attributes, start=self._clock())
        parent = _CURRENT_SPAN.get()
        if parent is None:
            self.spans.append(node)
        else:
            parent.children.append(node)
        token = _CURRENT_SPAN.set(node)
        try:
            yield node
        finally:
            node.end = self._clock()
            _CURRENT_SPAN.reset(token)

    def count(self, name: str, value: int = 1) -> None:
        """Increment a named counter (global, and on the innermost span)."""
        self.counters[name] = self.counters.get(name, 0) + value
        current = _CURRENT_SPAN.get()
        if current is not None:
            current.counters[name] = current.counters.get(name, 0) + value


def current_tracer() -> Tracer | NoopTracer:
    """The tracer instrumentation is currently dispatching to."""
    return _ACTIVE_TRACER.get()


def span(name: str, **attributes: Any):
    """Open a span on the active tracer (a no-op when tracing is off)."""
    return _ACTIVE_TRACER.get().span(name, **attributes)


def count(name: str, value: int = 1) -> None:
    """Increment a counter on the active tracer (a no-op when tracing is off)."""
    _ACTIVE_TRACER.get().count(name, value)


@contextmanager
def use_tracer(tracer: Tracer | NoopTracer) -> Iterator[Tracer | NoopTracer]:
    """Install ``tracer`` as the active one for the duration of the block."""
    token = _ACTIVE_TRACER.set(tracer)
    try:
        yield tracer
    finally:
        _ACTIVE_TRACER.reset(token)
