"""A typed, labeled metrics registry: counters, gauges and histograms.

Where the tracer (:mod:`repro.obs.tracer`) answers "what did *this* run do,
stage by stage", the metrics registry answers "what is this *process* doing
over time": every metric is a named **family** with a fixed type, an
optional help string, and one sample per distinct label set.  Families are
typed at first use — incrementing a name that was registered as a histogram
raises :class:`MetricTypeError` — so exporters never have to guess.

Three instrument types:

* :class:`Counter` — a monotonically increasing sum (``inc``);
* :class:`Gauge` — a point-in-time value (``set``, last write wins);
* :class:`Histogram` — observations bucketed into **fixed, sorted bucket
  boundaries** (plus the implicit ``+inf`` overflow bucket) with a running
  sum and count.  Buckets are fixed per family at creation, which is what
  makes merging well defined.

Registries **merge**: counters and histogram buckets add, gauges take the
other side's last write.  Merging is associative (property-tested in
``tests/test_obs_metrics.py``), which is what lets per-run scopes
(:meth:`MetricsRegistry.run_scope`) and ``workers=N`` subprocesses
(:mod:`repro.datalog.exec.workers`) fold their samples into the
process-wide registry in any order.

Instrumentation sites use the module-level helpers, which dispatch through
a :class:`contextvars.ContextVar` exactly like the tracer — a no-op costing
one contextvar read when no registry is installed::

    from repro.obs import MetricsRegistry, use_metrics, metric_inc

    registry = MetricsRegistry()
    with use_metrics(registry):
        metric_inc("exec.operator.rows_out", 42, op="join", engine="batch")
    registry.snapshot()   # JSON-ready, pinned by docs/metrics.schema.json

Exporters live in :mod:`repro.obs.metrics_export` (JSON snapshot and
Prometheus/OpenMetrics text exposition); the metric families the engines
emit are tabulated in ``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

from bisect import bisect_left
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Any, Iterator, Mapping

#: Default histogram bucket upper bounds, in seconds: spans microsecond
#: operator timings through multi-second whole-pipeline runs.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0,
)

#: Buckets for ratio-valued observations (selectivities, hit rates).
RATIO_BUCKETS: tuple[float, ...] = (
    0.01, 0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0,
)

LabelKey = tuple[tuple[str, str], ...]


class MetricTypeError(TypeError):
    """A metric name was used with two different types (or bucket sets)."""


def _label_key(labels: Mapping[str, Any]) -> LabelKey:
    """Canonical, hashable form of a label set (values stringified)."""
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing, labeled sum."""

    type = "counter"

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._values: dict[LabelKey, float] = {}

    def inc(self, value: float = 1.0, **labels: Any) -> None:
        if value < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease ({value})")
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0.0) + value

    def value(self, **labels: Any) -> float:
        return self._values.get(_label_key(labels), 0.0)

    def total(self) -> float:
        """The sum over every label set."""
        return sum(self._values.values())

    def samples(self) -> list[dict[str, Any]]:
        return [
            {"labels": dict(key), "value": self._values[key]}
            for key in sorted(self._values)
        ]

    def merge(self, other: "Counter") -> None:
        for key, value in other._values.items():
            self._values[key] = self._values.get(key, 0.0) + value


class Gauge:
    """A labeled point-in-time value; ``set`` overwrites, merge keeps the
    merged-in side's write (last write wins)."""

    type = "gauge"

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._values: dict[LabelKey, float] = {}

    def set(self, value: float, **labels: Any) -> None:
        self._values[_label_key(labels)] = float(value)

    def inc(self, value: float = 1.0, **labels: Any) -> None:
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0.0) + value

    def value(self, **labels: Any) -> float:
        return self._values.get(_label_key(labels), 0.0)

    def samples(self) -> list[dict[str, Any]]:
        return [
            {"labels": dict(key), "value": self._values[key]}
            for key in sorted(self._values)
        ]

    def merge(self, other: "Gauge") -> None:
        self._values.update(other._values)


class Histogram:
    """Labeled observations over fixed bucket boundaries.

    ``buckets`` are the sorted upper bounds of the finite buckets; every
    observation also lands in the implicit ``+inf`` bucket position (the
    per-label ``counts`` list has ``len(buckets) + 1`` entries, the last
    being the overflow).  The exposition formats render the *cumulative*
    Prometheus convention; internally counts are per-bucket so merges are
    plain element-wise sums.
    """

    type = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ):
        if not buckets or list(buckets) != sorted(buckets) or len(set(buckets)) != len(buckets):
            raise ValueError(
                f"histogram {name!r} needs strictly increasing buckets, got {buckets!r}"
            )
        self.name = name
        self.help = help
        self.buckets = tuple(float(b) for b in buckets)
        #: label key -> (per-bucket counts incl. overflow, sum, count)
        self._series: dict[LabelKey, tuple[list[int], float, int]] = {}

    def observe(self, value: float, **labels: Any) -> None:
        key = _label_key(labels)
        series = self._series.get(key)
        if series is None:
            series = ([0] * (len(self.buckets) + 1), 0.0, 0)
        counts, total, n = series
        counts[bisect_left(self.buckets, value)] += 1
        self._series[key] = (counts, total + value, n + 1)

    def count(self, **labels: Any) -> int:
        series = self._series.get(_label_key(labels))
        return series[2] if series else 0

    def sum(self, **labels: Any) -> float:
        series = self._series.get(_label_key(labels))
        return series[1] if series else 0.0

    def cumulative_counts(self, **labels: Any) -> list[int]:
        """Prometheus-style cumulative bucket counts (``le`` semantics),
        ending with the total observation count (the ``+inf`` bucket)."""
        series = self._series.get(_label_key(labels))
        if series is None:
            return [0] * (len(self.buckets) + 1)
        out, running = [], 0
        for bucket_count in series[0]:
            running += bucket_count
            out.append(running)
        return out

    def samples(self) -> list[dict[str, Any]]:
        return [
            {
                "labels": dict(key),
                "counts": list(self._series[key][0]),
                "sum": self._series[key][1],
                "count": self._series[key][2],
            }
            for key in sorted(self._series)
        ]

    def merge(self, other: "Histogram") -> None:
        if other.buckets != self.buckets:
            raise MetricTypeError(
                f"histogram {self.name!r}: cannot merge bucket boundaries "
                f"{other.buckets!r} into {self.buckets!r}"
            )
        for key, (counts, total, n) in other._series.items():
            mine = self._series.get(key)
            if mine is None:
                self._series[key] = (list(counts), total, n)
            else:
                merged = [a + b for a, b in zip(mine[0], counts)]
                self._series[key] = (merged, mine[1] + total, mine[2] + n)


Metric = Counter | Gauge | Histogram


class MetricsRegistry:
    """A typed collection of metric families, addressable by name.

    Accessors are create-or-get: :meth:`counter`, :meth:`gauge` and
    :meth:`histogram` register the family on first use and return the
    existing one afterwards, raising :class:`MetricTypeError` when the name
    is already registered with a different type (or, for histograms,
    different bucket boundaries).
    """

    def __init__(self) -> None:
        self._families: dict[str, Metric] = {}

    # -- family accessors ---------------------------------------------------

    def _family(self, name: str, cls, **kwargs) -> Metric:
        family = self._families.get(name)
        if family is None:
            family = cls(name, **kwargs)
            self._families[name] = family
            return family
        if not isinstance(family, cls):
            raise MetricTypeError(
                f"metric {name!r} is a {family.type}, not a {cls.type}"
            )
        return family

    def counter(self, name: str, help: str = "") -> Counter:
        return self._family(name, Counter, help=help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._family(name, Gauge, help=help)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> Histogram:
        family = self._family(name, Histogram, help=help, buckets=buckets)
        if family.buckets != tuple(float(b) for b in buckets):
            raise MetricTypeError(
                f"histogram {name!r} already registered with buckets "
                f"{family.buckets!r}"
            )
        return family

    def get(self, name: str) -> Metric | None:
        return self._families.get(name)

    def names(self) -> list[str]:
        return sorted(self._families)

    def families(self) -> Iterator[Metric]:
        for name in sorted(self._families):
            yield self._families[name]

    def __len__(self) -> int:
        return len(self._families)

    # -- combination --------------------------------------------------------

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold ``other``'s samples into this registry (and return self).

        Counters and histograms add; gauges take ``other``'s writes.  The
        operation is associative, so scopes and worker snapshots can be
        folded in any grouping.
        """
        for name in sorted(other._families):
            family = other._families[name]
            if isinstance(family, Histogram):
                mine = self._family(
                    name, Histogram, help=family.help, buckets=family.buckets
                )
            else:
                mine = self._family(name, type(family), help=family.help)
            if not mine.help and family.help:
                mine.help = family.help
            mine.merge(family)
        return self

    @contextmanager
    def run_scope(self) -> Iterator["MetricsRegistry"]:
        """A per-run child registry, installed as the active one; its samples
        merge into this registry when the scope exits (even on error)."""
        child = MetricsRegistry()
        try:
            with use_metrics(child):
                yield child
        finally:
            self.merge(child)

    # -- serialization ------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """The JSON-ready snapshot, pinned by ``docs/metrics.schema.json``."""
        metrics = []
        for family in self.families():
            entry: dict[str, Any] = {
                "name": family.name,
                "type": family.type,
                "help": family.help,
                "samples": family.samples(),
            }
            if isinstance(family, Histogram):
                entry["buckets"] = list(family.buckets)
            metrics.append(entry)
        return {"version": 1, "metrics": metrics}

    @classmethod
    def from_snapshot(cls, data: Mapping[str, Any]) -> "MetricsRegistry":
        """Rebuild a registry from :meth:`snapshot` output (exact round-trip)."""
        registry = cls()
        for entry in data.get("metrics", ()):
            name, kind, help = entry["name"], entry["type"], entry.get("help", "")
            if kind == "counter":
                family = registry.counter(name, help=help)
                for sample in entry["samples"]:
                    family.inc(sample["value"], **sample["labels"])
            elif kind == "gauge":
                family = registry.gauge(name, help=help)
                for sample in entry["samples"]:
                    family.set(sample["value"], **sample["labels"])
            elif kind == "histogram":
                family = registry.histogram(
                    name, help=help, buckets=tuple(entry["buckets"])
                )
                for sample in entry["samples"]:
                    key = _label_key(sample["labels"])
                    family._series[key] = (
                        list(sample["counts"]),
                        float(sample["sum"]),
                        int(sample["count"]),
                    )
            else:
                raise MetricTypeError(f"unknown metric type {kind!r} in snapshot")
        return registry

    def copy(self) -> "MetricsRegistry":
        return MetricsRegistry().merge(self)


class NoopMetricsRegistry:
    """The do-nothing registry the module helpers hit when metrics are off."""

    enabled = False

    def counter_inc(self, name, value=1.0, **labels) -> None:
        pass

    def gauge_set(self, name, value, **labels) -> None:
        pass

    def observe(self, name, value, buckets=DEFAULT_BUCKETS, **labels) -> None:
        pass


NOOP_METRICS = NoopMetricsRegistry()

_ACTIVE_METRICS: ContextVar["MetricsRegistry | NoopMetricsRegistry"] = ContextVar(
    "repro_obs_metrics", default=NOOP_METRICS
)


def current_metrics() -> MetricsRegistry | NoopMetricsRegistry:
    """The registry instrumentation is currently dispatching to."""
    return _ACTIVE_METRICS.get()


def metrics_enabled() -> bool:
    """True when a recording registry is installed (cheap hot-path check)."""
    return _ACTIVE_METRICS.get() is not NOOP_METRICS


@contextmanager
def use_metrics(
    registry: MetricsRegistry | NoopMetricsRegistry,
) -> Iterator[MetricsRegistry | NoopMetricsRegistry]:
    """Install ``registry`` as the active one for the duration of the block."""
    token = _ACTIVE_METRICS.set(registry)
    try:
        yield registry
    finally:
        _ACTIVE_METRICS.reset(token)


def metric_inc(name: str, value: float = 1.0, **labels: Any) -> None:
    """Increment a counter on the active registry (no-op when metrics are off)."""
    registry = _ACTIVE_METRICS.get()
    if registry is NOOP_METRICS:
        return
    registry.counter(name).inc(value, **labels)


def metric_set(name: str, value: float, **labels: Any) -> None:
    """Set a gauge on the active registry (no-op when metrics are off)."""
    registry = _ACTIVE_METRICS.get()
    if registry is NOOP_METRICS:
        return
    registry.gauge(name).set(value, **labels)


def metric_observe(
    name: str,
    value: float,
    buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    **labels: Any,
) -> None:
    """Record a histogram observation (no-op when metrics are off)."""
    registry = _ACTIVE_METRICS.get()
    if registry is NOOP_METRICS:
        return
    registry.histogram(name, buckets=buckets).observe(value, **labels)
