"""Metrics exporters: JSON snapshots and Prometheus/OpenMetrics exposition.

Two formats complement the in-process :class:`~repro.obs.metrics.MetricsRegistry`:

* **JSON snapshot** — :func:`write_metrics_json` dumps
  :meth:`MetricsRegistry.snapshot`, which is pinned by
  ``docs/metrics.schema.json`` (validated in CI with the dependency-free
  checker ``python -m repro.obs.schema``) and round-trips exactly through
  :meth:`MetricsRegistry.from_snapshot`;
* **OpenMetrics text** — :func:`to_openmetrics` renders the
  Prometheus-compatible exposition format (``# TYPE`` headers, ``_total``
  counter suffixes, cumulative ``le`` histogram buckets, terminated by
  ``# EOF``), ready for the future mapping-as-a-service daemon to serve on
  a ``/metrics`` endpoint.

Metric names are sanitized for exposition (dots become underscores); the
JSON snapshot keeps the dotted names used in code and docs.
"""

from __future__ import annotations

import json
import math
from typing import Any, Mapping

from .metrics import Counter, Gauge, Histogram, MetricsRegistry


def _expo_name(name: str) -> str:
    """A Prometheus-legal metric name: dots and dashes become underscores."""
    sanitized = "".join(
        c if c.isalnum() or c == "_" else "_" for c in name
    )
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _expo_labels(labels: Mapping[str, str], extra: tuple[tuple[str, str], ...] = ()) -> str:
    items = [*sorted(labels.items()), *extra]
    if not items:
        return ""
    rendered = ",".join(
        f'{_expo_name(k)}="{_escape_label_value(str(v))}"' for k, v in items
    )
    return "{" + rendered + "}"


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def to_openmetrics(registry: MetricsRegistry) -> str:
    """The OpenMetrics text exposition of every family in the registry."""
    lines: list[str] = []
    for family in registry.families():
        name = _expo_name(family.name)
        if family.help:
            lines.append(f"# HELP {name} {family.help}")
        lines.append(f"# TYPE {name} {family.type}")
        if isinstance(family, Counter):
            for sample in family.samples():
                lines.append(
                    f"{name}_total{_expo_labels(sample['labels'])} "
                    f"{_format_value(sample['value'])}"
                )
        elif isinstance(family, Gauge):
            for sample in family.samples():
                lines.append(
                    f"{name}{_expo_labels(sample['labels'])} "
                    f"{_format_value(sample['value'])}"
                )
        elif isinstance(family, Histogram):
            bounds = [*family.buckets, math.inf]
            for sample in family.samples():
                cumulative = family.cumulative_counts(**sample["labels"])
                for bound, running in zip(bounds, cumulative):
                    le = ("le", _format_value(bound))
                    lines.append(
                        f"{name}_bucket{_expo_labels(sample['labels'], (le,))} "
                        f"{running}"
                    )
                lines.append(
                    f"{name}_sum{_expo_labels(sample['labels'])} "
                    f"{_format_value(sample['sum'])}"
                )
                lines.append(
                    f"{name}_count{_expo_labels(sample['labels'])} "
                    f"{sample['count']}"
                )
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def write_openmetrics(registry: MetricsRegistry, path: str) -> None:
    with open(path, "w") as handle:
        handle.write(to_openmetrics(registry))


def metrics_snapshot_json(registry: MetricsRegistry) -> str:
    """The snapshot serialized as stable, indented JSON."""
    return json.dumps(registry.snapshot(), indent=2, sort_keys=True) + "\n"


def write_metrics_json(registry: MetricsRegistry, path: str) -> None:
    with open(path, "w") as handle:
        handle.write(metrics_snapshot_json(registry))


def read_metrics_json(path: str) -> MetricsRegistry:
    """Load a snapshot file back into a registry (exact round-trip)."""
    with open(path) as handle:
        data: dict[str, Any] = json.load(handle)
    return MetricsRegistry.from_snapshot(data)
