"""Conjunctive queries over target instances and certain answers.

Target instances computed by a transformation contain incomplete values —
invented values (labeled nulls) and the unlabeled null.  For a conjunctive
query, the *certain answers* are those that hold in every possible completion
of the instance; for naive tables this is naive evaluation followed by
dropping answers that contain labeled nulls (labeled nulls join with
themselves during evaluation, but an answer mentioning one is not certain).
The unlabeled null is, in the paper's semantics, an ordinary value and stays.

This lets the repository demonstrate the *semantic* difference between the
basic and novel pipelines: both yield the same certain answers for queries
over the certain part of the data, while the basic pipeline's invented
tuples never leak into certain answers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..datalog.engine import _Store, _join
from ..logic.atoms import RelationalAtom
from ..logic.terms import Variable
from ..model.instance import Instance, Row
from ..model.values import is_labeled_null, is_null


@dataclass(frozen=True)
class ConjunctiveQuery:
    """``answer(head) ← body``, a select-project-join query."""

    head: tuple[Variable, ...]
    body: tuple[RelationalAtom, ...]
    null_vars: tuple[Variable, ...] = ()
    nonnull_vars: tuple[Variable, ...] = ()

    def __post_init__(self) -> None:
        bound = {v for atom in self.body for v in atom.variables()}
        for var in self.head:
            if var not in bound:
                raise ValueError(f"unsafe query: head variable {var!r} unbound")

    def __repr__(self) -> str:
        head = ",".join(repr(v) for v in self.head)
        body = ", ".join(repr(a) for a in self.body)
        return f"({head}) <- {body}"


def evaluate_query(query: ConjunctiveQuery, instance: Instance) -> set[Row]:
    """All (naive) answers of the query over the instance."""
    store = _Store()
    for name, relation in instance.relations.items():
        store.add_relation(name, list(relation.rows))
    answers: set[Row] = set()
    for bindings in _join(store, list(query.body), {}):
        if any(not is_null(bindings[v]) for v in query.null_vars):
            continue
        if any(is_null(bindings[v]) for v in query.nonnull_vars):
            continue
        answers.add(tuple(bindings[v] for v in query.head))
    return answers


def certain_answers(query: ConjunctiveQuery, instance: Instance) -> set[Row]:
    """Answers valid in every completion: naive answers without labeled nulls."""
    return {
        row
        for row in evaluate_query(query, instance)
        if not any(is_labeled_null(v) for v in row)
    }


def query(head: Sequence[Variable], *body: RelationalAtom, **conditions) -> ConjunctiveQuery:
    """Convenience constructor: ``query([x], R(x, y), nonnull_vars=[y])``."""
    return ConjunctiveQuery(
        head=tuple(head),
        body=tuple(body),
        null_vars=tuple(conditions.get("null_vars", ())),
        nonnull_vars=tuple(conditions.get("nonnull_vars", ())),
    )


_QUERY_ARROW = "<-"


def parse_query(text: str) -> ConjunctiveQuery:
    """Parse ``"(x, y) <- R(x, z), S(z, y), z != null"`` into a query.

    Atom arguments are variable names; repeated names join.  The conditions
    ``v = null`` and ``v != null`` are supported after the atoms.
    """
    from ..errors import ParseError

    if _QUERY_ARROW not in text:
        raise ParseError(f"a query needs '{_QUERY_ARROW}': {text!r}")
    head_text, _, body_text = text.partition(_QUERY_ARROW)
    head_text = head_text.strip()
    if not (head_text.startswith("(") and head_text.endswith(")")):
        raise ParseError(f"query head must be parenthesized: {head_text!r}")
    variables: dict[str, Variable] = {}

    def var(name: str) -> Variable:
        name = name.strip()
        if not name:
            raise ParseError(f"empty variable in query {text!r}")
        if name not in variables:
            variables[name] = Variable(name)
        return variables[name]

    import re as _re

    atoms: list[RelationalAtom] = []
    null_vars: list[Variable] = []
    nonnull_vars: list[Variable] = []
    rest = body_text.strip()
    for atom_match in _re.finditer(r"([A-Za-z_]\w*)\s*\(([^()]*)\)", rest):
        relation, args = atom_match.groups()
        atoms.append(RelationalAtom(relation, [var(a) for a in args.split(",")]))
    without_atoms = _re.sub(r"[A-Za-z_]\w*\s*\([^()]*\)", "", rest)
    for piece in without_atoms.split(","):
        piece = piece.strip()
        if not piece:
            continue
        if piece.endswith("!= null"):
            nonnull_vars.append(var(piece[: -len("!= null")]))
        elif piece.endswith("= null"):
            null_vars.append(var(piece[: -len("= null")]))
        else:
            raise ParseError(f"unrecognized query condition {piece!r}")
    if not atoms:
        raise ParseError(f"query has no body atoms: {text!r}")
    head_names = [n for n in head_text[1:-1].split(",") if n.strip()]
    bound = {v for atom in atoms for v in atom.variables()}
    head_vars = []
    for name in head_names:
        candidate = var(name)
        if candidate not in bound:
            raise ParseError(f"unsafe query: head variable {name.strip()!r} unbound")
        head_vars.append(candidate)
    return ConjunctiveQuery(
        head=tuple(head_vars),
        body=tuple(atoms),
        null_vars=tuple(null_vars),
        nonnull_vars=tuple(nonnull_vars),
    )
