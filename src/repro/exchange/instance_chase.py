"""Instance-level chase: canonical (universal) solutions for schema mappings.

The paper's "more natural semantics" claim (sections 1 and 8) is relative to
the canonical universal instance semantics of data exchange [5, 19]: chase
the source instance with the tgds of the schema mapping (inventing one
labeled null per existential variable and premise binding — the
All-Source-Vars skolemization), then chase the result with the target key
constraints as egds.  This module implements both steps so transformations
can be compared against the canonical solution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..errors import ConstraintViolationError
from ..logic.mappings import LogicalMapping, SchemaMapping
from ..logic.terms import Variable
from ..model.instance import Instance
from ..model.schema import Schema
from ..model.values import NULL, LabeledNull, is_labeled_null, is_null
from ..obs import metric_inc
from ..datalog.engine import _Store, _eval_term, _join  # reuse the join machinery


def _premise_bindings(mapping: LogicalMapping, source: Instance):
    """All premise bindings over the source instance (conditions included)."""
    store = _Store()
    for name, relation in source.relations.items():
        store.add_relation(name, list(relation.rows))
    for bindings in _join(store, list(mapping.premise.atoms), {}):
        ok = True
        for var in mapping.premise.null_vars:
            if not is_null(bindings[var]):
                ok = False
                break
        if ok:
            for var in mapping.premise.nonnull_vars:
                if is_null(bindings[var]):
                    ok = False
                    break
        if ok:
            for equality in mapping.premise.equalities:
                if _eval_term(equality.left, bindings) != _eval_term(
                    equality.right, bindings
                ):
                    ok = False
                    break
        if ok:
            for disequality in mapping.premise.disequalities:
                if _eval_term(disequality.left, bindings) == _eval_term(
                    disequality.right, bindings
                ):
                    ok = False
                    break
        if ok:
            yield bindings


def _nullable_only(
    mapping: LogicalMapping, target_schema: Schema, variable: Variable
) -> bool:
    """True iff the variable occurs only in nullable consequent positions."""
    found = False
    for atom in mapping.consequent:
        relation = target_schema.relation(atom.relation)
        for position, term in enumerate(atom.terms):
            if term is variable:
                found = True
                if not relation.attributes[position].nullable:
                    return False
    return found


def chase_with_tgds(
    schema_mapping: SchemaMapping,
    source: Instance,
    null_for_nullable_existentials: bool = False,
) -> Instance:
    """The naive tgd chase: the canonical pre-solution.

    Each existential variable of each tgd becomes, per premise binding, a
    labeled null whose arguments are all the source-variable values — the
    All-Source-Vars invention policy that yields the canonical universal
    instance in the Clio setting (Appendix B).  With
    ``null_for_nullable_existentials`` the paper's null policy applies
    instead: an existential variable occurring only in nullable positions
    becomes the unlabeled null (section 6), which is the semantics the novel
    transformations realize.
    """
    target_schema = schema_mapping.target_schema
    assert isinstance(target_schema, Schema)
    result = Instance(target_schema)
    bindings_seen = 0
    invented = 0
    rows_added = 0
    for mapping in schema_mapping:
        source_vars = mapping.source_variables()
        existential = mapping.existential_variables()
        label = mapping.label or "m"
        for bindings in _premise_bindings(mapping, source):
            bindings_seen += 1
            values: dict[Variable, Any] = dict(bindings)
            witness = tuple(bindings[v] for v in source_vars)
            for var in existential:
                if null_for_nullable_existentials and _nullable_only(
                    mapping, target_schema, var
                ):
                    values[var] = NULL
                else:
                    values[var] = LabeledNull(f"N_{var.name}@{label}", witness)
                    invented += 1
            for atom in mapping.consequent:
                row = tuple(
                    values[t] if isinstance(t, Variable) else t for t in atom.terms
                )
                result.add(atom.relation, row)
                rows_added += 1
    metric_inc("chase.bindings", bindings_seen, step="tgd")
    metric_inc("chase.invented", invented, step="tgd")
    metric_inc("chase.rows", rows_added, step="tgd")
    return result


def chase_target_foreign_keys(instance: Instance) -> Instance:
    """Satisfy target foreign keys by inventing referenced tuples.

    For every dangling non-null foreign-key value a referenced tuple is
    added, with fresh labeled nulls in its other positions.  Terminates
    because the schema is weakly acyclic.
    """
    result = instance.copy()
    schema = result.schema
    changed = True
    while changed:
        changed = False
        for fk in schema.foreign_keys:
            target_relation = schema.relation(fk.referenced)
            key_attr = target_relation.key[0]
            existing = result.relation(fk.referenced).project([key_attr])
            position = schema.relation(fk.relation).position(fk.attribute)
            for row in list(result.relation(fk.relation)):
                value = row[position]
                if is_null(value) or (value,) in existing:
                    continue
                fresh = []
                for attribute in target_relation.attributes:
                    if attribute.name == key_attr:
                        fresh.append(value)
                    elif attribute.nullable:
                        fresh.append(NULL)
                    else:
                        fresh.append(
                            LabeledNull(
                                f"N_{fk.referenced}.{attribute.name}", (value,)
                            )
                        )
                result.add(fk.referenced, tuple(fresh))
                existing = result.relation(fk.referenced).project([key_attr])
                changed = True
    return result


@dataclass
class EgdChaseResult:
    """The result of chasing an instance with the target key egds."""

    instance: Instance
    merged: int  # how many labeled nulls were resolved to other values
    failed: bool  # True iff the chase failed (two distinct constants per key)
    failure_reason: str | None = None


def chase_with_key_egds(instance: Instance, resolve_nulls: bool = False) -> EgdChaseResult:
    """Chase a target instance with its schema's key constraints.

    Tuples of one relation agreeing on the key are merged positionwise.  A
    labeled null may be identified with any other value; two distinct
    constants in the same position make the chase fail, like the hard key
    conflicts of the paper.  With ``resolve_nulls`` the unlabeled null also
    yields to any other value (the paper's resolution preference ``copy ≻
    null ≻ invent``); otherwise null behaves like a constant.
    """
    substitution: dict[LabeledNull, Any] = {}
    merged = 0

    def resolve(value: Any) -> Any:
        seen = set()
        while is_labeled_null(value) and value in substitution:
            if value in seen:  # pragma: no cover - defensive
                break
            seen.add(value)
            value = substitution[value]
        if is_labeled_null(value):
            resolved_args = tuple(resolve(a) for a in value.args)
            if resolved_args != value.args:
                value = LabeledNull(value.functor, resolved_args)
        return value

    _FAIL = object()

    def unify(left: Any, right: Any) -> Any:
        """The merged value, or the _FAIL sentinel when irreconcilable."""
        nonlocal merged
        left, right = resolve(left), resolve(right)
        if left == right:
            return left
        if is_labeled_null(left):
            substitution[left] = right
            merged += 1
            return resolve(right)
        if is_labeled_null(right):
            substitution[right] = left
            merged += 1
            return resolve(left)
        if resolve_nulls:
            if is_null(left):
                return right
            if is_null(right):
                return left
        return _FAIL

    current = instance
    for _round in range(1 + instance.total_size()):
        rebuilt = Instance(current.schema)
        failure: str | None = None
        for rel_schema in current.schema:
            key_positions = rel_schema.key_positions()
            groups: dict[tuple, list] = {}
            for row in current.relation(rel_schema.name):
                resolved = tuple(resolve(v) for v in row)
                key = tuple(resolved[p] for p in key_positions)
                groups.setdefault(key, []).append(resolved)
            for key, rows in groups.items():
                base = list(rows[0])
                for other in rows[1:]:
                    for position, value in enumerate(other):
                        outcome = unify(base[position], value)
                        if outcome is _FAIL:
                            failure = (
                                f"{rel_schema.name}: key {key!r} maps to both "
                                f"{resolve(base[position])!r} and {resolve(value)!r}"
                            )
                            break
                        base[position] = outcome
                    if failure:
                        break
                if failure:
                    metric_inc("chase.merged", merged, step="egd")
                    metric_inc("chase.failures", 1, step="egd")
                    return EgdChaseResult(current, merged, True, failure)
                rebuilt.add(rel_schema.name, tuple(resolve(v) for v in base))
        if rebuilt == current:
            metric_inc("chase.merged", merged, step="egd")
            return EgdChaseResult(rebuilt, merged, False)
        current = rebuilt
    return EgdChaseResult(current, merged, False)  # pragma: no cover - fixpoint reached


def canonical_universal_solution(
    schema_mapping: SchemaMapping,
    source: Instance,
    null_for_nullable_existentials: bool = False,
    chase_foreign_keys: bool = False,
) -> Instance:
    """Chase with tgds (then optionally target FKs), then with key egds.

    Raises :class:`ConstraintViolationError` when the egd chase fails (no
    solution exists).  The two flags select the paper's null policy and the
    full data-exchange treatment of target inclusion dependencies.
    """
    pre = chase_with_tgds(
        schema_mapping, source, null_for_nullable_existentials
    )
    if chase_foreign_keys:
        pre = chase_target_foreign_keys(pre)
    result = chase_with_key_egds(
        pre, resolve_nulls=null_for_nullable_existentials
    )
    if result.failed:
        raise ConstraintViolationError(
            f"egd chase failed, no solution exists: {result.failure_reason}"
        )
    return result.instance
