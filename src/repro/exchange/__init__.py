"""Data-exchange semantics: instance chase, universal solutions, metrics."""

from .analysis import TransformationAnalysis, analyze_transformation
from .instance_chase import (
    EgdChaseResult,
    canonical_universal_solution,
    chase_with_key_egds,
    chase_with_tgds,
)
from .metrics import InstanceMetrics, comparison_table, measure_instance
from .queries import ConjunctiveQuery, certain_answers, evaluate_query, parse_query, query
from .solutions import (
    find_instance_homomorphism,
    homomorphically_equivalent,
    is_homomorphic_to,
    is_universal_solution,
)

__all__ = [
    "ConjunctiveQuery",
    "TransformationAnalysis",
    "analyze_transformation",
    "EgdChaseResult",
    "certain_answers",
    "evaluate_query",
    "parse_query",
    "query",
    "InstanceMetrics",
    "canonical_universal_solution",
    "chase_with_key_egds",
    "chase_with_tgds",
    "comparison_table",
    "find_instance_homomorphism",
    "homomorphically_equivalent",
    "is_homomorphic_to",
    "is_universal_solution",
    "measure_instance",
]
