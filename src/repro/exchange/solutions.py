"""Solution-quality checks: homomorphisms between instances, universality.

In data exchange, invented values (labeled nulls) act as placeholders: an
instance ``A`` maps homomorphically into ``B`` when there is a value
assignment for ``A``'s labeled nulls making every tuple of ``A`` a tuple of
``B`` (constants and the unlabeled null are fixed points).  A solution is
*universal* when it maps homomorphically into every solution; against the
canonical solution this gives an effective test, used by the benchmarks to
verify the paper's Appendix-B claims about skolemization strategies.
"""

from __future__ import annotations

from typing import Any

from ..model.instance import Instance
from ..model.values import LabeledNull, is_labeled_null

Assignment = dict[LabeledNull, Any]


def _match_value(pattern: Any, value: Any, assignment: Assignment) -> Assignment | None:
    """Extend the assignment so ``pattern`` maps onto ``value``."""
    if is_labeled_null(pattern):
        bound = assignment.get(pattern)
        if bound is None:
            extended = dict(assignment)
            extended[pattern] = value
            return extended
        return assignment if bound == value else None
    return assignment if pattern == value else None


def find_instance_homomorphism(a: Instance, b: Instance) -> Assignment | None:
    """A homomorphism from ``a`` into ``b`` (labeled nulls as variables).

    Ground facts (no labeled nulls) map only to themselves, so they are
    checked by set membership; backtracking search is limited to the facts
    that actually contain labeled nulls, keeping the search shallow even on
    large instances.
    """
    open_facts: list[tuple[str, tuple]] = []
    for relation, row in a.facts():
        if any(is_labeled_null(v) for v in row):
            open_facts.append((relation, row))
        else:
            try:
                present = row in b.relation(relation)
            except Exception:  # pragma: no cover - schema mismatch
                return None
            if not present:
                return None

    def search(index: int, assignment: Assignment) -> Assignment | None:
        if index == len(open_facts):
            return assignment
        relation, row = open_facts[index]
        try:
            candidates = b.relation(relation).rows
        except Exception:  # pragma: no cover - schema mismatch
            return None
        for candidate in candidates:
            extended: Assignment | None = assignment
            for pattern, value in zip(row, candidate):
                extended = _match_value(pattern, value, extended)
                if extended is None:
                    break
            if extended is None:
                continue
            final = search(index + 1, extended)
            if final is not None:
                return final
        return None

    return search(0, {})


def is_homomorphic_to(a: Instance, b: Instance) -> bool:
    """True iff ``a`` maps homomorphically into ``b``."""
    return find_instance_homomorphism(a, b) is not None


def homomorphically_equivalent(a: Instance, b: Instance) -> bool:
    """True iff homomorphisms exist in both directions."""
    return is_homomorphic_to(a, b) and is_homomorphic_to(b, a)


def is_universal_solution(candidate: Instance, canonical: Instance) -> bool:
    """Is ``candidate`` a universal solution, given the canonical solution?

    The canonical solution is universal; a candidate solution is universal
    iff it is homomorphically equivalent to the canonical one.
    """
    return homomorphically_equivalent(candidate, canonical)
