"""Quality metrics for transformation outputs.

Quantifies the paper's informal "more desirable" (section 2): fewer useless
tuples (tuples carrying only invented or null values besides nothing of the
source), fewer invented values, and no key violations.  The scaling
benchmarks report these side by side for the basic and the novel pipelines.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..model.instance import Instance
from ..model.validation import validate_instance
from ..model.values import is_labeled_null, is_null


@dataclass
class InstanceMetrics:
    """Counts describing the quality of a (target) instance."""

    total_tuples: int
    constants: int
    null_values: int
    invented_values: int  # occurrences of labeled nulls
    distinct_invented: int  # distinct labeled nulls
    useless_tuples: int  # tuples with no constant at all
    partially_invented_tuples: int  # tuples mixing constants and invented values
    key_violations: int
    fk_violations: int
    null_violations: int

    @property
    def ok(self) -> bool:
        return not (self.key_violations or self.fk_violations or self.null_violations)

    def as_row(self) -> dict[str, int]:
        return {
            "tuples": self.total_tuples,
            "invented": self.distinct_invented,
            "nulls": self.null_values,
            "useless": self.useless_tuples,
            "key-violations": self.key_violations,
            "fk-violations": self.fk_violations,
        }


def measure_instance(instance: Instance) -> InstanceMetrics:
    """Compute all quality metrics for an instance."""
    constants = nulls = invented = 0
    useless = partially = 0
    distinct: set = set()
    for _relation, row in instance.facts():
        row_constants = row_invented = 0
        for value in row:
            if is_null(value):
                nulls += 1
            elif is_labeled_null(value):
                invented += 1
                row_invented += 1
                distinct.add(value)
            else:
                constants += 1
                row_constants += 1
        if row_constants == 0:
            useless += 1
        elif row_invented > 0:
            partially += 1
    report = validate_instance(instance)
    return InstanceMetrics(
        total_tuples=instance.total_size(),
        constants=constants,
        null_values=nulls,
        invented_values=invented,
        distinct_invented=len(distinct),
        useless_tuples=useless,
        partially_invented_tuples=partially,
        key_violations=len(report.key_violations),
        fk_violations=len(report.foreign_key_violations),
        null_violations=len(report.null_violations),
    )


def comparison_table(results: dict[str, Instance]) -> str:
    """A small aligned table comparing instances by name (for benchmarks)."""
    rows = {name: measure_instance(instance).as_row() for name, instance in results.items()}
    if not rows:
        return "(no results)"
    columns = list(next(iter(rows.values())))
    widths = {c: max(len(c), *(len(str(r[c])) for r in rows.values())) for c in columns}
    name_width = max(len(n) for n in rows)
    lines = [
        " ".join(["pipeline".ljust(name_width)] + [c.rjust(widths[c]) for c in columns])
    ]
    for name, row in rows.items():
        lines.append(
            " ".join([name.ljust(name_width)] + [str(row[c]).rjust(widths[c]) for c in columns])
        )
    return "\n".join(lines)
