"""Semantic analysis of a transformation run.

Bundles the checks the paper argues about informally — constraint
satisfaction, closeness to the canonical universal-instance semantics,
quality metrics — into one structured report, so examples, benchmarks and
downstream users can ask "how good is this transformation?" in one call.

This also operationalizes the paper's closing question (section 8): "we aim
at determining whether our generation algorithms compute canonical/universal
target instances" — :func:`analyze_transformation` answers it per run.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.pipeline import MappingSystem
from ..model.instance import Instance
from ..model.validation import ValidationReport, validate_instance
from .instance_chase import canonical_universal_solution
from .metrics import InstanceMetrics, measure_instance
from .solutions import is_homomorphic_to


@dataclass
class TransformationAnalysis:
    """Everything known about one transformation output."""

    output: Instance
    metrics: InstanceMetrics
    validation: ValidationReport
    #: output == canonical solution under the paper's null policy
    is_canonical_null_policy: bool
    #: output embeds into the canonical solution (null-policy semantics)
    is_sound_wrt_canonical: bool
    #: the canonical solution embeds into the output
    is_complete_wrt_canonical: bool

    @property
    def is_universal(self) -> bool:
        """Universal in the data-exchange sense (equivalent to canonical)."""
        return self.is_sound_wrt_canonical and self.is_complete_wrt_canonical

    def summary(self) -> str:
        lines = [
            f"target tuples:        {self.metrics.total_tuples}",
            f"invented values:      {self.metrics.distinct_invented}",
            f"null values:          {self.metrics.null_values}",
            f"useless tuples:       {self.metrics.useless_tuples}",
            f"constraints:          {self.validation.summary()}",
            f"canonical (null pol): {self.is_canonical_null_policy}",
            f"sound wrt canonical:  {self.is_sound_wrt_canonical}",
            f"universal solution:   {self.is_universal}",
        ]
        return "\n".join(lines)


def analyze_transformation(
    system: MappingSystem, source: Instance
) -> TransformationAnalysis:
    """Run the transformation and measure it against the exchange semantics."""
    output = system.transform(source)
    metrics = measure_instance(output)
    validation = validate_instance(output)

    # The reference semantics is the canonical universal instance under the
    # paper's null policy (nullable existentials become the unlabeled null,
    # copy ≻ null ≻ invent at egd resolution) — the semantics the paper's
    # transformations are designed to realize (sections 5, 8).
    try:
        canonical = canonical_universal_solution(
            system.schema_mapping, source, null_for_nullable_existentials=True
        )
        is_canonical = output == canonical
        sound = is_homomorphic_to(output, canonical)
        complete = is_homomorphic_to(canonical, output)
    except Exception:
        is_canonical = False
        sound = complete = False

    return TransformationAnalysis(
        output=output,
        metrics=metrics,
        validation=validation,
        is_canonical_null_policy=is_canonical,
        is_sound_wrt_canonical=sound,
        is_complete_wrt_canonical=complete,
    )
