"""Soft key-conflict resolution (Algorithm 4, step 3).

Given the unitary skolemized mappings and the key conflicts identified by
:mod:`repro.core.conflicts`, this module performs the paper's rewriting:

* **hard conflicts** raise :class:`HardKeyConflictError`;
* **basic resolution**: a mapping with preferable competitors is partially
  disabled by conjoining, for each preferable mapping ``m'``, the negation of
  ``m'``'s premise projected on the target key, correlated on the mapping's
  own key variable; the same negations are added to every sibling unitary
  mapping derived from the same original logical mapping;
* **fusion**: for every subset ``M`` of a conflicting set in which each
  member is preferred over some other member on some attribute, a new
  mapping is added whose premise conjoins the members' premises with equated
  keys and whose consequent picks, per attribute, the most-preferred term;
* **Skolem unification**: two invented values in the same position
  (equal-preference invent/invent conflicts, or fusion positions whose
  winners invent with different functors) have their functors unified, and
  the renaming propagates to every mapping (Example 6.7).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from ..errors import HardKeyConflictError, QueryGenerationError
from ..logic.atoms import NegatedPremise, RelationalAtom
from ..logic.mappings import Premise, UnitaryMapping
from ..logic.terms import NULL_TERM, SkolemTerm, Term, Variable
from ..model.schema import Schema
from ..obs import count, span
from .conflicts import (
    COPY,
    INVENT,
    NULL_KIND,
    KeyConflict,
    conflicting_sets,
    find_key_conflicts,
    term_kind,
)


class FunctorUnifier:
    """Union-find over Skolem functor names with paper-style merged names.

    Functor names have the shape ``f_<attribute>@<label>``; a merged class is
    displayed as ``f_<attribute>@<label1>+<label2>`` (the paper's
    ``f^{1,3}_b``).
    """

    def __init__(self) -> None:
        self._parent: dict[str, str] = {}

    def _find(self, name: str) -> str:
        self._parent.setdefault(name, name)
        root = name
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[name] != root:
            self._parent[name], name = root, self._parent[name]
        return root

    def unify(self, left: str, right: str) -> None:
        left_root, right_root = self._find(left), self._find(right)
        if left_root != right_root:
            self._parent[right_root] = left_root

    def renaming(self) -> dict[str, str]:
        """The final renaming for every functor involved in a merge."""
        classes: dict[str, list[str]] = {}
        for name in self._parent:
            classes.setdefault(self._find(name), []).append(name)
        renaming: dict[str, str] = {}
        for members in classes.values():
            if len(members) < 2:
                continue
            merged = _merged_name(sorted(members))
            for member in members:
                renaming[member] = merged
        return renaming


def _merged_name(names: list[str]) -> str:
    bases: list[str] = []
    labels: list[str] = []
    for name in names:
        base, _, label = name.partition("@")
        if base not in bases:
            bases.append(base)
        for piece in label.split("+"):
            if piece and piece not in labels:
                labels.append(piece)
    if labels:
        return f"{bases[0]}@{'+'.join(sorted(labels))}"
    return bases[0]


def rename_functors_in_atom(atom: RelationalAtom, renaming: dict[str, str]) -> RelationalAtom:
    terms = [
        t.rename_functors(renaming) if isinstance(t, SkolemTerm) else t
        for t in atom.terms
    ]
    return RelationalAtom(atom.relation, terms)


def _key_variables(
    mapping: UnitaryMapping, target_schema: Schema
) -> list[Variable]:
    """The variables bound to the key positions of the mapping's consequent.

    Resolution only ever needs these for mappings that participate in a key
    conflict, whose key terms are necessarily source variables.
    """
    relation = target_schema.relation(mapping.consequent.relation)
    variables = []
    for position in relation.key_positions():
        term = mapping.consequent.terms[position]
        if not isinstance(term, Variable):
            raise QueryGenerationError(
                f"cannot correlate a negation on non-variable key term {term!r} "
                f"of mapping {mapping.name or mapping.origin}"
            )
        variables.append(term)
    return variables


def _negation_of(
    preferred: UnitaryMapping,
    correlate_to: list[Variable],
    target_schema: Schema,
) -> NegatedPremise:
    """``¬ φ_preferred^{key(R)}(k)`` correlated on ``correlate_to``."""
    preferred_keys = _key_variables(preferred, target_schema)
    if len(preferred_keys) != len(correlate_to):  # pragma: no cover - defensive
        raise QueryGenerationError("key arity mismatch while building a negation")
    renaming: dict[Variable, Term] = {}
    for var in preferred.premise.variables():
        renaming[var] = Variable(var.name + "~")
    for key_var, shared in zip(preferred_keys, correlate_to):
        renaming[key_var] = shared
    atoms = tuple(a.substitute(renaming) for a in preferred.premise.atoms)
    null_vars = tuple(renaming.get(v, v) for v in preferred.premise.null_vars)
    nonnull_vars = tuple(renaming.get(v, v) for v in preferred.premise.nonnull_vars)
    equalities = tuple(e.substitute(renaming) for e in preferred.premise.equalities)
    disequalities = tuple(
        d.substitute(renaming) for d in preferred.premise.disequalities
    )
    return NegatedPremise(
        atoms,
        correlated=correlate_to,
        null_vars=null_vars,  # type: ignore[arg-type]
        nonnull_vars=nonnull_vars,  # type: ignore[arg-type]
        equalities=equalities,
        disequalities=disequalities,
    )


@dataclass
class ResolutionReport:
    """What key-conflict resolution did."""

    conflicts: list[KeyConflict] = field(default_factory=list)
    fused: list[UnitaryMapping] = field(default_factory=list)
    functor_renaming: dict[str, str] = field(default_factory=dict)
    negations_by_origin: dict[str, int] = field(default_factory=dict)


def resolve_key_conflicts(
    mappings: list[UnitaryMapping],
    source_schema: Schema,
    target_schema: Schema,
    propagate_unification: bool = True,
) -> tuple[list[UnitaryMapping], ResolutionReport]:
    """Rewrite the unitary mappings so target key constraints are satisfied.

    ``propagate_unification`` selects between the paper's two (inconsistent)
    renderings of Skolem unification: Example 6.7 propagates the unified
    functor into every mapping (the default); Example C.4 keeps the original
    functors in the rewritten originals and uses the merged functor only in
    the fused mappings (``propagate_unification=False``).  The two differ
    only by a renaming of invented values.
    """
    with span("qgen.resolution", mappings=len(mappings)) as trace:
        final, report = _resolve_key_conflicts(
            mappings, source_schema, target_schema, propagate_unification
        )
        count("resolution.disabled-negations", sum(report.negations_by_origin.values()))
        count("resolution.fused", len(report.fused))
        count("resolution.unified-functors", len(report.functor_renaming))
        trace.set(conflicts=len(report.conflicts), fused=len(report.fused))
        return final, report


def _resolve_key_conflicts(
    mappings: list[UnitaryMapping],
    source_schema: Schema,
    target_schema: Schema,
    propagate_unification: bool,
) -> tuple[list[UnitaryMapping], ResolutionReport]:
    report = ResolutionReport()
    unifier = FunctorUnifier()
    negations: dict[str, list[NegatedPremise]] = {}
    fused_mappings: list[UnitaryMapping] = []

    for relation_name, group in conflicting_sets(mappings).items():
        if len(group) < 2:
            continue
        # -- identify ------------------------------------------------------
        preferred_over: dict[tuple[int, int], set[str]] = {}
        group_conflicts: list[KeyConflict] = []
        for i in range(len(group)):
            for j in range(i + 1, len(group)):
                for conflict in find_key_conflicts(
                    group[i], group[j], source_schema, target_schema
                ):
                    group_conflicts.append(conflict)
                    if conflict.is_hard:
                        from ..analysis.diagnostics import diagnostic

                        message = (
                            f"hard key conflict: {conflict} — both mappings copy "
                            "source values into the same key"
                        )
                        raise HardKeyConflictError(
                            message,
                            diagnostic=diagnostic(
                                "MAP002",
                                message,
                                subject=f"{relation_name}.{conflict.attribute}",
                            ),
                        )
                    if conflict.preferred == "left":
                        preferred_over.setdefault((i, j), set()).add(conflict.attribute)
                    elif conflict.preferred == "right":
                        preferred_over.setdefault((j, i), set()).add(conflict.attribute)
                    else:  # equal-preference invent/invent: unify the functors
                        left_term = conflict.left.consequent.terms[
                            target_schema.relation(relation_name).position(
                                conflict.attribute
                            )
                        ]
                        right_term = conflict.right.consequent.terms[
                            target_schema.relation(relation_name).position(
                                conflict.attribute
                            )
                        ]
                        assert isinstance(left_term, SkolemTerm)
                        assert isinstance(right_term, SkolemTerm)
                        unifier.unify(left_term.functor, right_term.functor)
        report.conflicts.extend(group_conflicts)
        if not group_conflicts:
            continue

        # -- basic resolution: disable less-preferred mappings ---------------
        for i, mapping in enumerate(group):
            preferable = [
                group[j]
                for j in range(len(group))
                if j != i and preferred_over.get((j, i))
            ]
            if not preferable:
                continue
            keys = _key_variables(mapping, target_schema)
            bucket = negations.setdefault(mapping.origin, [])
            for better in preferable:
                bucket.append(_negation_of(better, keys, target_schema))

        # -- fusion ----------------------------------------------------------
        for size in range(2, len(group) + 1):
            for indices in itertools.combinations(range(len(group)), size):
                if not _qualifies_for_fusion(indices, preferred_over):
                    continue
                members = [group[i] for i in indices]
                outsiders = [group[j] for j in range(len(group)) if j not in indices]
                fused = _build_fused_mapping(
                    members,
                    indices,
                    outsiders,
                    [g for g in range(len(group)) if g not in indices],
                    preferred_over,
                    target_schema,
                    unifier,
                )
                fused_mappings.append(fused)

    # -- assemble --------------------------------------------------------
    final: list[UnitaryMapping] = []
    for mapping in mappings:
        extra = _dedup_negations(negations.get(mapping.origin, []))
        if extra:
            final.append(mapping.with_premise(mapping.premise.with_negations(extra)))
        else:
            final.append(mapping)
    final.extend(fused_mappings)

    renaming = unifier.renaming()
    if renaming:
        first_fused_index = len(mappings)
        final = [
            m.with_consequent(rename_functors_in_atom(m.consequent, renaming))
            if propagate_unification or index >= first_fused_index
            else m
            for index, m in enumerate(final)
        ]
    # The fused mappings in the report are the (possibly renamed) final ones.
    report.fused = final[len(mappings):]
    report.functor_renaming = renaming
    report.negations_by_origin = {k: len(v) for k, v in negations.items()}
    return final, report


def _dedup_negations(items: list[NegatedPremise]) -> list[NegatedPremise]:
    seen: set[tuple] = set()
    unique: list[NegatedPremise] = []
    for item in items:
        key = (item.signature(), tuple(id(v) for v in item.correlated))
        if key not in seen:
            seen.add(key)
            unique.append(item)
    return unique


def _qualifies_for_fusion(
    indices: tuple[int, ...], preferred_over: dict[tuple[int, int], set[str]]
) -> bool:
    """Every member must be preferred over some other member on some attribute."""
    members = set(indices)
    for i in members:
        if not any(
            preferred_over.get((i, j)) for j in members if j != i
        ):
            return False
    return True


def _build_fused_mapping(
    members: list[UnitaryMapping],
    member_indices: tuple[int, ...],
    outsiders: list[UnitaryMapping],
    outsider_indices: list[int],
    preferred_over: dict[tuple[int, int], set[str]],
    target_schema: Schema,
    unifier: FunctorUnifier,
) -> UnitaryMapping:
    relation = target_schema.relation(members[0].consequent.relation)
    key_positions = relation.key_positions()

    # Shared key variables, one per key position.
    shared_keys = [Variable(f"k{j}" if len(key_positions) > 1 else "k") for j in range(len(key_positions))]

    renamed_members: list[UnitaryMapping] = []
    for index, member in enumerate(members):
        member_keys = _key_variables(member, target_schema)
        renaming: dict[Variable, Term] = {}
        for var in member.premise.variables():
            renaming[var] = Variable(f"{var.name}_{index + 1}")
        for key_var, shared in zip(member_keys, shared_keys):
            renaming[key_var] = shared
        renamed_members.append(
            UnitaryMapping(
                premise=member.premise.substitute(renaming),
                consequent=member.consequent.substitute(renaming),
                origin=member.origin,
                name=member.name,
            )
        )

    # Premise: conjunction of the members' renamed premises.
    premise = Premise(
        atoms=tuple(a for m in renamed_members for a in m.premise.atoms),
        null_vars=tuple(v for m in renamed_members for v in m.premise.null_vars),
        nonnull_vars=tuple(v for m in renamed_members for v in m.premise.nonnull_vars),
        equalities=tuple(e for m in renamed_members for e in m.premise.equalities),
        disequalities=tuple(
            d for m in renamed_members for d in m.premise.disequalities
        ),
    )

    # Consequent: per non-key attribute, the term of a most-preferred member.
    consequent_terms: list[Term] = []
    for position in range(relation.arity):
        if position in key_positions:
            consequent_terms.append(shared_keys[key_positions.index(position)])
            continue
        attribute = relation.attributes[position].name
        winner_slots = [
            slot
            for slot, i in enumerate(member_indices)
            if not any(
                attribute in preferred_over.get((j, i), ())
                for j in member_indices
                if j != i
            )
        ]
        winners = [renamed_members[slot] for slot in winner_slots]
        winning_terms = [w.consequent.terms[position] for w in winners]
        kinds = {term_kind(t) for t in winning_terms}
        if kinds == {INVENT}:
            functors = {t.functor for t in winning_terms if isinstance(t, SkolemTerm)}
            first = functors and sorted(functors)[0]
            for functor in functors:
                if functor != first:
                    unifier.unify(first, functor)
            consequent_terms.append(winning_terms[0])
        elif NULL_KIND in kinds and COPY not in kinds:
            consequent_terms.append(NULL_TERM)
        else:
            # Prefer a copying winner when mixed (no conflict forced a choice).
            chosen = next(
                (t for t in winning_terms if term_kind(t) == COPY), winning_terms[0]
            )
            consequent_terms.append(chosen)

    consequent = RelationalAtom(relation.name, consequent_terms)

    # preferableTo(M): outsiders preferred over some member get negated.
    negation_list: list[NegatedPremise] = []
    for outsider, outsider_index in zip(outsiders, outsider_indices):
        if any(
            preferred_over.get((outsider_index, i)) for i in member_indices
        ):
            negation_list.append(_negation_of(outsider, shared_keys, target_schema))
    if negation_list:
        premise = premise.with_negations(_dedup_negations(negation_list))

    origin = "+".join(m.origin or m.name or "?" for m in members)
    return UnitaryMapping(
        premise=premise,
        consequent=consequent,
        origin=origin,
        name=origin,
    )
