"""Skolemization of logical mappings — all four procedures of Appendix B.

Every existentially quantified variable of a logical mapping is replaced
either by ``null`` (when it only occurs in nullable positions and the novel
algorithm's null policy is active, paper section 6) or by a Skolem functor
term.  The four strategies differ only in the functor's arguments:

* :data:`ALL_SOURCE_VARS` — all universally quantified variables ([2]);
* :data:`SOURCE_AND_RHS_VARS` — the source variables that also occur in the
  consequent ([16], the Clio baseline);
* :data:`ALL_SOURCE_OR_KEY_VARS` — the paper's procedure (section 6): all
  source variables when the variable is bound only to a key attribute; the
  key terms of the single atom where it occurs when bound to a non-key
  attribute (which nests Skolem terms); the key terms of the atom where it
  occurs as a non-key when it links a foreign key to a referenced key;
* :data:`SOURCE_HERE_AND_REF_VARS` — the source variables of the atom where
  the variable lives (preferring an atom where it is a key), plus those of
  the atoms whose keys that atom references, directly or indirectly.

Functor names embed the mapping label (``f_<attribute>@<label>``) because the
paper requires "a different Skolem function for each different logical
mapping and existentially quantified variable" — and the key-conflict
machinery relies on distinct functions being distinct.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import QueryGenerationError
from ..logic.mappings import LogicalMapping
from ..logic.terms import NULL_TERM, SkolemTerm, Term, Variable
from ..model.schema import Schema
from ..obs import count, span

ALL_SOURCE_VARS = "all-source-vars"
SOURCE_AND_RHS_VARS = "source-and-rhs-vars"
ALL_SOURCE_OR_KEY_VARS = "all-source-or-key-vars"
SOURCE_HERE_AND_REF_VARS = "source-here-and-ref-vars"

STRATEGIES = (
    ALL_SOURCE_VARS,
    SOURCE_AND_RHS_VARS,
    ALL_SOURCE_OR_KEY_VARS,
    SOURCE_HERE_AND_REF_VARS,
)


@dataclass
class _Occurrence:
    """One occurrence of an existential variable in the consequent."""

    atom_index: int
    relation: str
    attribute: str
    is_key: bool
    is_nullable: bool
    is_foreign_key: bool


def _occurrences(
    mapping: LogicalMapping, target_schema: Schema, variable: Variable
) -> list[_Occurrence]:
    found = []
    for atom_index, atom in enumerate(mapping.consequent):
        relation = target_schema.relation(atom.relation)
        for position, term in enumerate(atom.terms):
            if term is variable:
                attribute = relation.attributes[position].name
                found.append(
                    _Occurrence(
                        atom_index=atom_index,
                        relation=atom.relation,
                        attribute=attribute,
                        is_key=relation.is_key_attribute(attribute),
                        is_nullable=relation.is_nullable(attribute),
                        is_foreign_key=target_schema.has_foreign_key_from(
                            atom.relation, attribute
                        ),
                    )
                )
    return found


def _functor_name(mapping: LogicalMapping, occurrences: list[_Occurrence]) -> str:
    """A functor name from the most specific attribute the variable fills."""
    non_key = [o for o in occurrences if not o.is_key]
    chosen = non_key[0] if non_key else occurrences[0]
    label = mapping.label or "m"
    return f"f_{chosen.attribute}@{label}"


def _key_terms(
    mapping: LogicalMapping, target_schema: Schema, atom_index: int
) -> list[Term]:
    atom = mapping.consequent[atom_index]
    relation = target_schema.relation(atom.relation)
    return [atom.terms[p] for p in relation.key_positions()]


def _referenced_source_vars(
    mapping: LogicalMapping,
    target_schema: Schema,
    atom_index: int,
    source_vars: set[Variable],
) -> list[Variable]:
    """Source variables of an atom and of the atoms its keys reference.

    Implements the closure of the Source-Here-and-Ref-Vars procedure: follow
    foreign keys from the atom to the consequent atoms they reference.
    """
    collected: dict[Variable, None] = {}
    visited: set[int] = set()
    stack = [atom_index]
    while stack:
        index = stack.pop()
        if index in visited:
            continue
        visited.add(index)
        atom = mapping.consequent[index]
        relation = target_schema.relation(atom.relation)
        for position, term in enumerate(atom.terms):
            for var in term.variables():
                if var in source_vars:
                    collected.setdefault(var, None)
            attribute = relation.attributes[position].name
            fk = target_schema.foreign_key_from(atom.relation, attribute)
            if fk is None:
                continue
            # Find a consequent atom of the referenced relation whose key
            # term coincides with this position's term.
            for other_index, other in enumerate(mapping.consequent):
                if other_index == index or other.relation != fk.referenced:
                    continue
                other_rel = target_schema.relation(other.relation)
                key_position = other_rel.position(other_rel.key[0])
                if other.terms[key_position] is atom.terms[position] or (
                    other.terms[key_position] == atom.terms[position]
                ):
                    stack.append(other_index)
    return list(collected)


def _argument_terms(
    mapping: LogicalMapping,
    target_schema: Schema,
    variable: Variable,
    occurrences: list[_Occurrence],
    strategy: str,
) -> list[Term]:
    """The (pre-substitution) argument terms for the variable's functor."""
    source_vars = mapping.source_variables()
    if strategy == ALL_SOURCE_VARS:
        return list(source_vars)
    if strategy == SOURCE_AND_RHS_VARS:
        in_consequent: set[Variable] = set()
        for atom in mapping.consequent:
            in_consequent.update(atom.variables())
        return [v for v in source_vars if v in in_consequent]
    if strategy == ALL_SOURCE_OR_KEY_VARS:
        key_occurrences = [o for o in occurrences if o.is_key]
        non_key_occurrences = [o for o in occurrences if not o.is_key]
        if not non_key_occurrences:
            # Bound only to key attributes: all source variables.
            return list(source_vars)
        # Bound to a non-key attribute (possibly also to a referenced key):
        # the key terms of the atom where it occurs as a non-key.
        return _key_terms(mapping, target_schema, non_key_occurrences[0].atom_index)
    if strategy == SOURCE_HERE_AND_REF_VARS:
        key_occurrences = [o for o in occurrences if o.is_key]
        chosen = key_occurrences[0] if key_occurrences else occurrences[0]
        return _referenced_source_vars(
            mapping, target_schema, chosen.atom_index, set(source_vars)
        )
    raise QueryGenerationError(f"unknown skolemization strategy {strategy!r}")


def skolemize_mapping(
    mapping: LogicalMapping,
    target_schema: Schema,
    strategy: str = ALL_SOURCE_OR_KEY_VARS,
    use_null_for_nullable: bool = True,
) -> LogicalMapping:
    """Replace every existential variable with ``null`` or a Skolem term.

    With ``use_null_for_nullable`` (the novel algorithm) a variable occurring
    only in nullable positions becomes ``null``; the basic algorithms
    skolemize everything.  Skolem terms may nest (the paper's
    ``f_n(f_p(c))``), so variables are resolved in dependency order.
    """
    existential = mapping.existential_variables()
    if not existential:
        return mapping

    plans: dict[Variable, tuple[str, list[Term]] | None] = {}
    for variable in existential:
        occurrences = _occurrences(mapping, target_schema, variable)
        if not occurrences:  # pragma: no cover - defensive
            continue
        if use_null_for_nullable and all(o.is_nullable for o in occurrences):
            plans[variable] = None  # becomes null
            continue
        arguments = _argument_terms(
            mapping, target_schema, variable, occurrences, strategy
        )
        plans[variable] = (_functor_name(mapping, occurrences), arguments)

    resolved: dict[Variable, Term] = {}
    unresolved = dict(plans)
    while unresolved:
        progress = False
        for variable, plan in list(unresolved.items()):
            if plan is None:
                resolved[variable] = NULL_TERM
                del unresolved[variable]
                count("skolem.nulls")
                progress = True
                continue
            functor, arguments = plan
            if any(
                v in unresolved
                for argument in arguments
                for v in argument.variables()
            ):
                continue  # an argument still mentions an unresolved variable
            final_args = [argument.substitute(resolved) for argument in arguments]
            count("skolem.functors")
            resolved[variable] = SkolemTerm(functor, final_args)
            del unresolved[variable]
            progress = True
        if not progress:
            raise QueryGenerationError(
                f"cyclic Skolem dependencies in mapping {mapping.label!r}: "
                f"{sorted(v.name for v in unresolved)}"
            )

    return mapping.substitute_consequent(resolved)


def skolemize_schema_mapping(
    mappings: list[LogicalMapping],
    target_schema: Schema,
    strategy: str = ALL_SOURCE_OR_KEY_VARS,
    use_null_for_nullable: bool = True,
) -> list[LogicalMapping]:
    """Skolemize every logical mapping of a schema mapping."""
    with span("qgen.skolemize", strategy=strategy, mappings=len(mappings)):
        return [
            skolemize_mapping(m, target_schema, strategy, use_null_for_nullable)
            for m in mappings
        ]
