"""Key-conflict identification between unitary logical mappings (Algorithm 4).

Two unitary mappings over the same target relation ``R`` are *key
conflicting* over a non-key attribute ``v`` when they can generate two
tuples with the same key but different ``v`` values:
``φ(k, v) ∧ φ'(k', v') ∧ k = k' ∧ v ≠ v'`` is satisfiable.

Each side contributes a *kind* for ``v`` — ``c`` (copies a source value),
``n`` (a null), ``i`` (invents a value via a Skolem functor) — and the
paper's resolution strategy prefers ``c ≻ n ≻ i``:

* ``c`` vs ``c`` — a **hard** conflict: two source values may compete;
* mixed kinds — a **soft** conflict, the higher kind preferred;
* ``i`` vs ``i`` — equally preferable; resolved by unifying the functors.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..logic.mappings import UnitaryMapping
from ..logic.satisfiability import check_equal_and_differ
from ..logic.terms import Constant, NullTerm, SkolemTerm, Term, Variable
from ..model.schema import Schema
from ..obs import count
from .functionality import rename_unitary

COPY = "c"
NULL_KIND = "n"
INVENT = "i"

_KIND_RANK = {COPY: 2, NULL_KIND: 1, INVENT: 0}


def term_kind(term: Term) -> str:
    """Classify a consequent term: copy / null / invent."""
    if isinstance(term, NullTerm):
        return NULL_KIND
    if isinstance(term, SkolemTerm):
        return INVENT
    if isinstance(term, (Variable, Constant)):
        return COPY
    raise TypeError(f"unexpected consequent term {term!r}")  # pragma: no cover


@dataclass(frozen=True)
class KeyConflict:
    """A key conflict between two unitary mappings over one attribute."""

    left: UnitaryMapping
    right: UnitaryMapping
    attribute: str
    left_kind: str
    right_kind: str

    @property
    def is_hard(self) -> bool:
        return self.left_kind == COPY and self.right_kind == COPY

    @property
    def preferred(self) -> str:
        """``"left"``, ``"right"`` or ``"equal"`` (two invented values)."""
        left_rank = _KIND_RANK[self.left_kind]
        right_rank = _KIND_RANK[self.right_kind]
        if left_rank > right_rank:
            return "left"
        if right_rank > left_rank:
            return "right"
        return "equal"

    def __str__(self) -> str:
        return (
            f"{self.left.name or self.left.origin} {self.left_kind} vs "
            f"{self.right.name or self.right.origin} {self.right_kind} "
            f"on {self.left.consequent.relation}.{self.attribute}"
        )


def find_key_conflicts(
    left: UnitaryMapping,
    right: UnitaryMapping,
    source_schema: Schema,
    target_schema: Schema,
) -> list[KeyConflict]:
    """All key conflicts between two unitary mappings over the same relation.

    The right-hand mapping is renamed apart first (the paper assumes
    pairwise-disjoint variable sets), which also covers siblings sharing a
    premise.
    """
    if left.consequent.relation != right.consequent.relation:
        return []
    renamed = rename_unitary(right)
    relation = target_schema.relation(left.consequent.relation)
    key_positions = relation.key_positions()

    atoms = list(left.premise.atoms) + list(renamed.premise.atoms)
    equalities: list[tuple[Term, Term]] = [
        (left.consequent.terms[p], renamed.consequent.terms[p]) for p in key_positions
    ]
    for source in (left.premise, renamed.premise):
        equalities.extend((e.left, e.right) for e in source.equalities)
    null_terms = list(left.premise.null_vars) + list(renamed.premise.null_vars)
    nonnull_terms = list(left.premise.nonnull_vars) + list(renamed.premise.nonnull_vars)
    disequalities = [
        (d.left, d.right)
        for source in (left.premise, renamed.premise)
        for d in source.disequalities
    ]

    conflicts: list[KeyConflict] = []
    for position in range(relation.arity):
        if position in key_positions:
            continue
        left_term = left.consequent.terms[position]
        right_term = renamed.consequent.terms[position]
        if check_equal_and_differ(
            atoms,
            source_schema,
            equalities,
            (left_term, right_term),
            null_terms,
            nonnull_terms,
            disequalities=disequalities,
        ):
            conflict = KeyConflict(
                left=left,
                right=right,
                attribute=relation.attributes[position].name,
                left_kind=term_kind(left_term),
                right_kind=term_kind(right_term),
            )
            count("conflicts.hard" if conflict.is_hard else "conflicts.soft")
            conflicts.append(conflict)
    return conflicts


def conflicting_sets(
    mappings: list[UnitaryMapping],
) -> dict[str, list[UnitaryMapping]]:
    """Group unitary mappings by target relation (the paper's ``CS_R``)."""
    groups: dict[str, list[UnitaryMapping]] = {}
    for mapping in mappings:
        groups.setdefault(mapping.consequent.relation, []).append(mapping)
    return groups


def find_all_conflicts(
    mappings: list[UnitaryMapping],
    source_schema: Schema,
    target_schema: Schema,
) -> list[KeyConflict]:
    """All pairwise key conflicts inside every conflicting set."""
    conflicts: list[KeyConflict] = []
    for group in conflicting_sets(mappings).values():
        for i in range(len(group)):
            for j in range(i + 1, len(group)):
                conflicts.extend(
                    find_key_conflicts(group[i], group[j], source_schema, target_schema)
                )
    return conflicts
