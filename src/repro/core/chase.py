"""Logical relation generation: the standard chase and the modified chase.

Each base relation of a schema is chased into its *logical relations*
(tableaux).  Two procedures are provided:

* :func:`standard_chase` — the baseline of Clio [14, 16]: ignore nullability,
  traverse every foreign key; each base relation yields exactly one tableau.
* :func:`modified_chase` — the paper's procedure (section 5.1) with three
  rules:

  - **null rule**: a nullable attribute with no condition splits the partial
    tableau into two, one with ``A = null`` and one with ``A ≠ null``;
  - **ind rule**: a foreign key is traversed only if its attribute is
    mandatory or carries a non-null condition, and only if the referenced
    atom is not already present;
  - **fd rule**: two atoms of one relation agreeing on the key are unified
    (it cannot fire during generation from a single base relation, because
    every traversal introduces fresh variables, but it is part of the
    procedure and is exercised by the satisfiability engine).

Termination is guaranteed by weak acyclicity of the foreign keys, which
:func:`logical_relations` checks up front.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..logic.atoms import RelationalAtom
from ..logic.tableau import NONNULL, NULL, PartialTableau, Path
from ..logic.terms import Variable, VariableFactory
from ..model.graph import check_weak_acyclicity
from ..model.schema import Schema
from ..obs import count, span

#: Chase modes.
STANDARD = "standard"
MODIFIED = "modified"


@dataclass
class _ChaseState:
    """A partially built tableau during the (possibly branching) chase."""

    atoms: list[RelationalAtom] = field(default_factory=list)
    paths: list[Path] = field(default_factory=list)
    parents: list[tuple[int, str] | None] = field(default_factory=list)
    null_vars: list[Variable] = field(default_factory=list)
    nonnull_vars: list[Variable] = field(default_factory=list)
    decisions: dict[tuple[Path, str], str] = field(default_factory=dict)
    #: queue of (atom index, attribute) pairs still to be examined
    pending: list[tuple[int, str]] = field(default_factory=list)

    def clone(self) -> "_ChaseState":
        return _ChaseState(
            atoms=list(self.atoms),
            paths=list(self.paths),
            parents=list(self.parents),
            null_vars=list(self.null_vars),
            nonnull_vars=list(self.nonnull_vars),
            decisions=dict(self.decisions),
            pending=list(self.pending),
        )


def _new_atom(
    schema: Schema,
    state: _ChaseState,
    relation: str,
    path: Path,
    parent: tuple[int, str] | None,
    factory: VariableFactory,
    key_term: Variable | None,
) -> int:
    """Append a fresh atom for ``relation``; reuse ``key_term`` for its key."""
    rel = schema.relation(relation)
    terms: list[Variable] = []
    for attribute in rel.attribute_names:
        if key_term is not None and attribute == rel.key[0]:
            terms.append(key_term)
        else:
            terms.append(factory.fresh_for_attribute(attribute))
    index = len(state.atoms)
    state.atoms.append(RelationalAtom(relation, terms))
    state.paths.append(path)
    state.parents.append(parent)
    for attribute in rel.attribute_names:
        state.pending.append((index, attribute))
    return index


def _has_atom_with_key(schema: Schema, state: _ChaseState, relation: str, term) -> bool:
    """ind-rule side condition: an atom ``S(v)`` with ``v.key = term`` already exists."""
    rel = schema.relation(relation)
    key_position = rel.position(rel.key[0])
    for atom in state.atoms:
        if atom.relation == relation and atom.terms[key_position] is term:
            return True
    return False


def chase_relation(
    schema: Schema, relation: str, mode: str = MODIFIED
) -> list[PartialTableau]:
    """Chase one base relation into its logical relations.

    In :data:`STANDARD` mode the result is a single ordinary tableau; in
    :data:`MODIFIED` mode it is the list of partial tableaux obtained by all
    null / non-null splits, with the null branch explored first (matching the
    paper's listing order, e.g. Example 5.1).
    """
    with span("chase.relation", relation=relation, mode=mode) as trace:
        tableaux = _chase_relation(schema, relation, mode)
        count("chase.tableaux", len(tableaux))
        trace.set(tableaux=len(tableaux))
        return tableaux


def _chase_relation(schema: Schema, relation: str, mode: str) -> list[PartialTableau]:
    factory = VariableFactory()
    start = _ChaseState()
    _new_atom(schema, start, relation, (), None, factory, key_term=None)

    finished: list[_ChaseState] = []
    stack = [start]
    while stack:
        state = stack.pop()
        progressed = False
        while state.pending:
            atom_index, attribute = state.pending.pop(0)
            count("chase.steps")
            atom = state.atoms[atom_index]
            rel = schema.relation(atom.relation)
            path = state.paths[atom_index]
            term = atom.terms[rel.position(attribute)]
            nullable = rel.is_nullable(attribute)

            if mode == MODIFIED and nullable and (path, attribute) not in state.decisions:
                # null rule: split into the null and the non-null branch.
                null_branch = state.clone()
                null_branch.decisions[(path, attribute)] = NULL
                null_branch.null_vars.append(term)

                nonnull_branch = state
                nonnull_branch.decisions[(path, attribute)] = NONNULL
                nonnull_branch.nonnull_vars.append(term)
                nonnull_branch.pending.insert(0, (atom_index, attribute))

                # Explore null-first: the stack is LIFO, so push non-null first.
                stack.append(nonnull_branch)
                stack.append(null_branch)
                count("chase.null_splits")
                progressed = True
                break

            fk = schema.foreign_key_from(atom.relation, attribute)
            if fk is None:
                continue
            if mode == MODIFIED and nullable:
                if state.decisions.get((path, attribute)) != NONNULL:
                    continue  # ind rule requires mandatory or non-null
            if _has_atom_with_key(schema, state, fk.referenced, term):
                continue
            assert isinstance(term, Variable)
            count("chase.fk_traversals")
            _new_atom(
                schema,
                state,
                fk.referenced,
                path + (attribute,),
                (atom_index, attribute),
                factory,
                key_term=term,
            )
        else:
            finished.append(state)
            progressed = True
        if not progressed:  # pragma: no cover - defensive
            finished.append(state)

    return [
        PartialTableau(
            schema,
            relation,
            state.atoms,
            state.paths,
            state.parents,
            null_vars=state.null_vars,
            nonnull_vars=state.nonnull_vars,
            decisions=state.decisions,
        )
        for state in finished
    ]


def standard_chase(schema: Schema, relation: str) -> PartialTableau:
    """The single (ordinary) tableau of ``relation`` under the standard chase."""
    return chase_relation(schema, relation, mode=STANDARD)[0]


def modified_chase(schema: Schema, relation: str) -> list[PartialTableau]:
    """All partial tableaux of ``relation`` under the modified chase."""
    return chase_relation(schema, relation, mode=MODIFIED)


def logical_relations(schema: Schema, mode: str = MODIFIED) -> list[PartialTableau]:
    """All logical relations of a schema (Algorithm 1 / 3, step 1).

    Relations are chased in declaration order after checking weak acyclicity.
    """
    with span("chase.schema", schema=schema.name, mode=mode) as trace:
        check_weak_acyclicity(schema)
        tableaux: list[PartialTableau] = []
        for relation in schema.relation_names():
            tableaux.extend(chase_relation(schema, relation, mode=mode))
        trace.set(tableaux=len(tableaux))
        return tableaux
