"""The end-to-end mapping system facade.

A :class:`MappingProblem` is what the paper's visual tool captures: a source
schema, a target schema and a set of (referenced-attribute) correspondences.
A :class:`MappingSystem` runs the two-stage pipeline on it — schema-mapping
generation, then query generation — and can execute the resulting
transformation on source instances.  ``algorithm="basic"`` selects the
Clio-style baseline (Algorithms 1 and 2), ``algorithm="novel"`` the paper's
algorithms (3 and 4); everything is computed lazily and cached.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..datalog.engine import EvaluationResult, evaluate
from ..datalog.program import DatalogProgram
from ..logic.mappings import SchemaMapping
from ..model.instance import Instance
from ..errors import SchemaError
from ..model.schema import Schema
from .correspondences import Correspondence, correspondence
from .query_generation import QueryGenerationResult, generate_queries
from .schema_mapping import NOVEL, SchemaMappingResult, generate_schema_mapping


@dataclass
class MappingProblem:
    """A mapping scenario: two schemas plus the correspondences between them."""

    source_schema: Schema
    target_schema: Schema
    correspondences: list[Correspondence] = field(default_factory=list)
    name: str = "mapping-problem"

    def add_correspondence(
        self, source: str, target: str, label: str = "", where: str = ""
    ) -> Correspondence:
        """Add a correspondence from textual endpoints and return it.

        ``where`` accepts Clio-style filters, e.g. ``"P3.name != 'MJ'"``.
        """
        built = correspondence(source, target, label, where=where)
        built.validate(self.source_schema, self.target_schema)
        self.correspondences.append(built)
        return built

    def validate(self) -> None:
        self.source_schema.validate()
        self.target_schema.validate()
        shared = set(self.source_schema.relation_names()) & set(
            self.target_schema.relation_names()
        )
        if shared:
            raise SchemaError(
                "source and target schemas must use distinct relation names "
                f"(shared: {sorted(shared)}); rename one side"
            )
        for item in self.correspondences:
            item.validate(self.source_schema, self.target_schema)


class MappingSystem:
    """Runs the full pipeline for one mapping problem and one algorithm."""

    def __init__(
        self,
        problem: MappingProblem,
        algorithm: str = NOVEL,
        skolem_strategy: str | None = None,
        optimize: bool = True,
    ):
        problem.validate()
        self.problem = problem
        self.algorithm = algorithm
        self.skolem_strategy = skolem_strategy
        self.optimize = optimize
        self._schema_mapping_result: SchemaMappingResult | None = None
        self._query_result: QueryGenerationResult | None = None

    # -- stage 1: schema mapping generation --------------------------------

    def schema_mapping_result(self) -> SchemaMappingResult:
        if self._schema_mapping_result is None:
            self._schema_mapping_result = generate_schema_mapping(
                self.problem.source_schema,
                self.problem.target_schema,
                self.problem.correspondences,
                algorithm=self.algorithm,
            )
        return self._schema_mapping_result

    @property
    def schema_mapping(self) -> SchemaMapping:
        return self.schema_mapping_result().schema_mapping

    # -- stage 2: query generation -----------------------------------------

    def query_result(self) -> QueryGenerationResult:
        if self._query_result is None:
            self._query_result = generate_queries(
                self.schema_mapping,
                algorithm=self.algorithm,
                skolem_strategy=self.skolem_strategy,
                optimize=self.optimize,
            )
        return self._query_result

    @property
    def transformation(self) -> DatalogProgram:
        return self.query_result().program

    # -- execution -----------------------------------------------------------

    def transform(self, source: Instance) -> Instance:
        """Compute the target instance for a source instance."""
        return self.transform_detailed(source).target

    def transform_detailed(self, source: Instance) -> EvaluationResult:
        """Like :meth:`transform` but also returns the intermediate relations."""
        return evaluate(self.transformation, source)
