"""The end-to-end mapping system facade.

A :class:`MappingProblem` is what the paper's visual tool captures: a source
schema, a target schema and a set of (referenced-attribute) correspondences.
A :class:`MappingSystem` runs the two-stage pipeline on it — schema-mapping
generation, then query generation — and can execute the resulting
transformation on source instances.  ``algorithm="basic"`` selects the
Clio-style baseline (Algorithms 1 and 2), ``algorithm="novel"`` the paper's
algorithms (3 and 4); everything is computed lazily and cached.
"""

from __future__ import annotations

from contextlib import ExitStack, nullcontext
from dataclasses import dataclass, field

from ..datalog.engine import EvaluationResult, evaluate
from ..datalog.exec import ProgramPlan, evaluate_batch, plan_program
from ..datalog.program import DatalogProgram
from ..logic.mappings import SchemaMapping
from ..model.instance import Instance
from ..errors import ReproError, SchemaError
from ..model.schema import Schema
from ..obs import MetricsRegistry, RunReport, Tracer, use_metrics, use_tracer
from .correspondences import Correspondence, correspondence
from .query_generation import QueryGenerationResult, generate_queries
from .schema_mapping import NOVEL, SchemaMappingResult, generate_schema_mapping


@dataclass
class MappingProblem:
    """A mapping scenario: two schemas plus the correspondences between them."""

    source_schema: Schema
    target_schema: Schema
    correspondences: list[Correspondence] = field(default_factory=list)
    name: str = "mapping-problem"

    def add_correspondence(
        self, source: str, target: str, label: str = "", where: str = "", span=None
    ) -> Correspondence:
        """Add a correspondence from textual endpoints and return it.

        ``where`` accepts Clio-style filters, e.g. ``"P3.name != 'MJ'"``.
        ``span`` records the DSL declaration site when the correspondence
        came from a parsed problem file.
        """
        built = correspondence(source, target, label, where=where, span=span)
        built.validate(self.source_schema, self.target_schema)
        self.correspondences.append(built)
        return built

    def validate(self) -> None:
        self.source_schema.validate()
        self.target_schema.validate()
        shared = set(self.source_schema.relation_names()) & set(
            self.target_schema.relation_names()
        )
        if shared:
            raise SchemaError(
                "source and target schemas must use distinct relation names "
                f"(shared: {sorted(shared)}); rename one side"
            )
        for item in self.correspondences:
            item.validate(self.source_schema, self.target_schema)


class MappingSystem:
    """Runs the full pipeline for one mapping problem and one algorithm.

    With ``trace=True`` a :class:`repro.obs.Tracer` records every stage run
    through this system: the stage results carry a
    :class:`~repro.obs.RunReport` each and :meth:`stats` returns the merged
    report (see ``docs/OBSERVABILITY.md``).  With ``metrics=True`` a
    :class:`repro.obs.MetricsRegistry` is installed for every stage run, so
    the typed metric families (``eval.*``, ``exec.*``, ``flow.*``,
    ``semantic.*``) accumulate across this system's lifetime;
    :meth:`metrics_snapshot` serializes them.  Both are off by default and
    the disabled instrumentation is a no-op.

    Cached stage results are fingerprinted against the problem's
    correspondences: mutating the problem (e.g. via
    :meth:`MappingProblem.add_correspondence`) after a result was computed
    invalidates the cache, so the next access recomputes instead of silently
    returning a mapping for the old problem.
    """

    def __init__(
        self,
        problem: MappingProblem,
        algorithm: str = NOVEL,
        skolem_strategy: str | None = None,
        optimize: bool = True,
        trace: bool = False,
        metrics: bool = False,
        semantic_pruning: bool = False,
        verify_optimizations: bool = False,
    ):
        problem.validate()
        self.problem = problem
        self.algorithm = algorithm
        self.skolem_strategy = skolem_strategy
        self.optimize = optimize
        self.semantic_pruning = semantic_pruning
        #: when set, query generation is followed by the differential
        #: verifier (repro.analysis.semantic.verifier); certificate failures
        #: raise carrying the SEM003/SEM004 diagnostic.
        self.verify_optimizations = verify_optimizations
        self.tracer: Tracer | None = Tracer() if trace else None
        self.metrics: MetricsRegistry | None = (
            MetricsRegistry() if metrics else None
        )
        self._schema_mapping_result: SchemaMappingResult | None = None
        self._query_result: QueryGenerationResult | None = None
        self._last_evaluation: EvaluationResult | None = None
        self._verification_report = None
        self._flow_report = None
        self._certification_report = None
        self._cost_report = None
        self._sql_report = None
        self._fingerprint = self._problem_fingerprint()
        #: the AnalysisReport of the most recent :meth:`compile` quick lint
        self.lint_report = None
        self._lint_run_report: RunReport | None = None

    def _traced(self):
        """Install this system's tracer and metrics registry (when enabled)."""
        if self.tracer is None and self.metrics is None:
            return nullcontext()
        stack = ExitStack()
        if self.tracer is not None:
            stack.enter_context(use_tracer(self.tracer))
        if self.metrics is not None:
            stack.enter_context(use_metrics(self.metrics))
        return stack

    # -- cache freshness ----------------------------------------------------

    def _problem_fingerprint(self) -> tuple:
        items = self.problem.correspondences
        return (len(items), tuple(id(item) for item in items))

    def _check_fresh(self) -> None:
        """Drop cached stage results if the problem was mutated since."""
        fingerprint = self._problem_fingerprint()
        if fingerprint != self._fingerprint:
            self._fingerprint = fingerprint
            self._schema_mapping_result = None
            self._query_result = None
            self._last_evaluation = None
            self._verification_report = None
            self._flow_report = None
            self._certification_report = None
            self._cost_report = None
            self._sql_report = None

    # -- stage 1: schema mapping generation --------------------------------

    def schema_mapping_result(self) -> SchemaMappingResult:
        self._check_fresh()
        if self._schema_mapping_result is None:
            with self._traced():
                self._schema_mapping_result = generate_schema_mapping(
                    self.problem.source_schema,
                    self.problem.target_schema,
                    self.problem.correspondences,
                    algorithm=self.algorithm,
                    semantic_pruning=self.semantic_pruning,
                )
        return self._schema_mapping_result

    @property
    def schema_mapping(self) -> SchemaMapping:
        return self.schema_mapping_result().schema_mapping

    # -- stage 2: query generation -----------------------------------------

    def query_result(self) -> QueryGenerationResult:
        self._check_fresh()
        if self._query_result is None:
            mapping = self.schema_mapping
            with self._traced():
                self._query_result = generate_queries(
                    mapping,
                    algorithm=self.algorithm,
                    skolem_strategy=self.skolem_strategy,
                    optimize=self.optimize,
                )
            if self.verify_optimizations:
                report = self.verify()
                if not report.ok:
                    first = report.diagnostics[0]
                    raise ReproError(
                        f"optimization verification failed for "
                        f"{self.problem.name!r}: {first.render()}",
                        diagnostic=first,
                    )
        return self._query_result

    def verify(self):
        """Run (and cache) the differential optimizer / resolution verifier.

        Returns the :class:`repro.analysis.semantic.VerificationReport`
        certifying that ``remove_subsumed_rules`` and key-conflict
        resolution preserved the program's semantics for this problem.
        Never raises on failures — :attr:`verify_optimizations` adds the
        raising behaviour to the pipeline itself.
        """
        from ..analysis.semantic.verifier import verify_generation

        self._check_fresh()
        if self._verification_report is None:
            with self._traced():
                self._verification_report = verify_generation(
                    self.schema_mapping,
                    algorithm=self.algorithm,
                    skolem_strategy=self.skolem_strategy,
                    problem=self.problem.name,
                )
        return self._verification_report

    @property
    def transformation(self) -> DatalogProgram:
        return self.query_result().program

    def flow_report(self):
        """Run (and cache) the flow engine over the generated program.

        Returns the :class:`repro.analysis.flow.FlowReport` with the solved
        nullability / provenance / key-origin fixpoints, the static
        functionality confirmations, and the ``FLW*`` diagnostics (with DSL
        spans when the problem carries correspondence spans).  Forces the
        pipeline stages.
        """
        from ..analysis.flow import analyze_flow

        self._check_fresh()
        if self._flow_report is None:
            program = self.transformation
            with self._traced():
                self._flow_report = analyze_flow(program, self.problem)
        return self._flow_report

    def certify(self):
        """Run (and cache) the constraint certifier over the generated program.

        Returns the :class:`repro.analysis.certify.CertificationReport` with
        one PROVED / REFUTED / UNKNOWN verdict per key, foreign key and
        NOT NULL constraint of the target schema, plus the program-level
        chase-termination certificate.  Forces the pipeline stages.
        """
        from ..analysis.certify import certify_program

        self._check_fresh()
        if self._certification_report is None:
            program = self.transformation
            with self._traced():
                self._certification_report = certify_program(
                    program, subject=self.problem.name
                )
        return self._certification_report

    def cost_report(self):
        """Run (and cache) the cost & cardinality certifier.

        Returns the :class:`repro.analysis.cost.CostReport` with one sound
        symbolic row bound per operator, rule and derived relation of the
        generated program, plus the ``PLN*`` diagnostics.  The fact base is
        the full one: the certifier's PROVED keys and foreign keys
        (:meth:`certify`) and the flow engine's functionality and
        nullability results (:meth:`flow_report`) tighten the bounds beyond
        what the schemas alone prove.  Forces the pipeline stages.
        """
        from ..analysis.cost import CostFacts, analyze_cost

        self._check_fresh()
        if self._cost_report is None:
            program = self.transformation
            certification = self.certify()
            flow = self.flow_report()
            with self._traced():
                facts = CostFacts.for_program(
                    program, certification=certification, flow=flow
                )
                self._cost_report = analyze_cost(
                    program,
                    subject=self.problem.name,
                    facts=facts,
                    plan=self.plan(),
                )
        return self._cost_report

    def sql_pipeline(self):
        """Compile the generated program into its SQL pipeline.

        Returns the :class:`repro.sqlgen.SqlPipeline` — intermediate DDL
        plus one INSERT per rule in stratification order, renderable for
        any supported dialect.  Forces the pipeline stages.  Not cached:
        compilation is cheap and the pipeline is immutable.
        """
        from ..sqlgen import compile_program

        return compile_program(self.transformation)

    def sql_report(self):
        """Run (and cache) the SQL translation validator.

        Returns the :class:`repro.analysis.sqlcheck.SqlCheckReport` with
        one PROVED / UNKNOWN round-trip verdict per compiled INSERT
        statement (each PROVED verdict carries both containment witnesses)
        plus the structural SQL002–SQL005 findings.  Forces the pipeline
        stages.
        """
        from ..analysis.sqlcheck import check_pipeline

        self._check_fresh()
        if self._sql_report is None:
            pipeline = self.sql_pipeline()
            with self._traced():
                self._sql_report = check_pipeline(
                    pipeline, subject=self.problem.name
                )
        return self._sql_report

    def compile(self, strict: bool = True, flow: bool = False) -> DatalogProgram:
        """Lint cheaply, then run both pipeline stages and return the program.

        The lint pass is the always-on subset of the static analyzer
        (:func:`repro.analysis.quick_lint`): schema structure, weak
        acyclicity, correspondence validity and coverage of mandatory target
        attributes — no pipeline stages, no satisfiability checks.  The
        report is kept on :attr:`lint_report`; per-code ``lint.*`` counters
        flow through the tracer when the system was created with
        ``trace=True``.  With ``strict`` (the default) the first lint error
        aborts compilation; warnings never do.

        With ``flow=True`` the flow engine (:meth:`flow_report`) runs after
        query generation and its ``FLW*`` findings are appended to
        :attr:`lint_report`.  ``FLW*`` codes are warnings, so they never
        abort a strict compile; they do make the flow-certified state of the
        program visible to callers inspecting the report.
        """
        from ..analysis.analyzer import quick_lint
        from ..obs import span as obs_span, stage_report

        with self._traced():
            with obs_span("stage.lint", problem=self.problem.name) as trace:
                report = quick_lint(self.problem)
                trace.set(diagnostics=len(report))
            self._lint_run_report = stage_report(trace, "lint")
        self.lint_report = report
        if strict and not report.ok:
            first = report.errors[0]
            raise ReproError(
                f"lint failed for {self.problem.name!r}: {first.render()}",
                diagnostic=first,
            )
        program = self.transformation
        if flow:
            report.extend(self.flow_report().diagnostics)
        return program

    # -- execution -----------------------------------------------------------

    #: reference = tuple-at-a-time oracle interpreter; batch = planned
    #: set-oriented runtime (repro.datalog.exec).
    ENGINES = ("reference", "batch")

    def transform(self, source: Instance, engine: str = "reference") -> Instance:
        """Compute the target instance for a source instance."""
        return self.transform_detailed(source, engine=engine).target

    def transform_detailed(
        self, source: Instance, engine: str = "reference"
    ) -> EvaluationResult:
        """Like :meth:`transform` but also returns the intermediate relations."""
        return self.run(source, engine=engine)

    def run(
        self,
        source: Instance,
        engine: str = "batch",
        workers: int | None = None,
        analyze: bool = False,
    ) -> EvaluationResult:
        """Execute the transformation on a selectable engine.

        ``engine="batch"`` (the default) runs the planned, set-oriented
        batch runtime of :mod:`repro.datalog.exec`; ``engine="reference"``
        runs the tuple-at-a-time interpreter of
        :mod:`repro.datalog.engine`, which stays the differential-testing
        oracle.  ``workers=N`` (batch only) partitions large outer scans
        across a process pool — see ``docs/ENGINE.md``.  ``analyze=True``
        collects the EXPLAIN ANALYZE profile on the returned result (also
        collected implicitly when the system was created with
        ``metrics=True``).
        """
        if engine not in self.ENGINES:
            raise ReproError(
                f"unknown engine {engine!r}: expected one of {self.ENGINES}"
            )
        if workers is not None and engine != "batch":
            raise ReproError("workers=N requires engine='batch'")
        program = self.transformation
        with self._traced():
            if engine == "batch":
                result = evaluate_batch(
                    program, source, workers=workers, analyze=analyze
                )
            else:
                result = evaluate(program, source, analyze=analyze)
        self._last_evaluation = result
        return result

    def plan(self) -> ProgramPlan:
        """The compiled operator trees of the transformation (``repro plan``).

        Statistics default to empty here, so the rendering is deterministic
        without an instance; the batch runtime re-plans each stratum with
        live row counts at execution time.
        """
        return plan_program(self.transformation)

    # -- telemetry -----------------------------------------------------------

    def stats(self) -> RunReport:
        """The merged :class:`~repro.obs.RunReport` of both pipeline stages.

        Forces both stages, then merges their reports (plus the report of the
        most recent :meth:`transform` evaluation, if any).  Requires the
        system to have been created with ``trace=True``.
        """
        if self.tracer is None:
            raise ReproError(
                "telemetry is off: create the MappingSystem with trace=True "
                "to collect run reports"
            )
        stage1 = self.schema_mapping_result().run_report
        stage2 = self.query_result().run_report
        evaluation = (
            self._last_evaluation.run_report if self._last_evaluation else None
        )
        assert stage1 is not None and stage2 is not None
        return stage1.merged(stage2, evaluation, self._lint_run_report)

    def metrics_snapshot(self) -> dict:
        """The serialized state of this system's metrics registry.

        The snapshot format is pinned by ``docs/metrics.schema.json`` and
        round-trips through :meth:`repro.obs.MetricsRegistry.from_snapshot`.
        Requires the system to have been created with ``metrics=True``.
        """
        if self.metrics is None:
            raise ReproError(
                "metrics are off: create the MappingSystem with metrics=True "
                "to collect the typed metric families"
            )
        return self.metrics.snapshot()
