"""Bidirectional mappings: reverse problems and round-trip checks.

The paper's future work (section 8) aims at "an executable mapping as a set
of bidirectional views (query views and update views)".  This module
implements the relational slice of that idea:

* :func:`reverse_problem` flips a mapping problem — every plain attribute
  correspondence ``(S.A, T.B)`` becomes ``(T.B, S.A)``.  Referenced-attribute
  correspondences and filters cannot be flipped (their semantics is a join /
  selection on the *source* side), so problems using them are rejected;
* :func:`check_round_trip` runs the forward transformation and the reverse
  transformation and reports whether the original source instance is
  restored — which holds exactly when the mapping loses no information
  (e.g. CARS2 ⇄ CARS3: Figure 14 forward, Figure 1 backward).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import MappingGenerationError
from ..model.diff import InstanceDiff, diff_instances
from ..model.instance import Instance
from .correspondences import Correspondence
from .pipeline import MappingProblem, MappingSystem


def reverse_problem(problem: MappingProblem) -> MappingProblem:
    """The problem with source and target swapped and correspondences flipped.

    Raises :class:`MappingGenerationError` when a correspondence cannot be
    reversed (referenced-attribute paths and filters are source-side
    constructs with no target-side counterpart in the paper's framework).
    """
    reversed_problem = MappingProblem(
        problem.target_schema,
        problem.source_schema,
        name=f"{problem.name}-reverse",
    )
    for correspondence in problem.correspondences:
        if not correspondence.source.is_plain or not correspondence.target.is_plain:
            raise MappingGenerationError(
                f"cannot reverse referenced-attribute correspondence "
                f"{correspondence!r}: foreign-key paths are source-side only"
            )
        if correspondence.filters:
            raise MappingGenerationError(
                f"cannot reverse filtered correspondence {correspondence!r}"
            )
        flipped = Correspondence(
            correspondence.target,
            correspondence.source,
            label=correspondence.label and f"{correspondence.label}^-1",
        )
        flipped.validate(reversed_problem.source_schema, reversed_problem.target_schema)
        reversed_problem.correspondences.append(flipped)
    return reversed_problem


@dataclass
class RoundTripReport:
    """The outcome of source → target → source."""

    forward: Instance
    back: Instance
    diff: InstanceDiff

    @property
    def restored(self) -> bool:
        """True iff the round trip reproduced the original source exactly."""
        return self.diff.empty

    def summary(self) -> str:
        if self.restored:
            return "round trip restores the source exactly (lossless mapping)"
        return (
            f"round trip loses information: {len(self.diff)} tuple(s) differ in "
            f"{', '.join(self.diff.changed_relations())}"
        )


def check_round_trip(
    problem: MappingProblem,
    source: Instance,
    algorithm: str = "novel",
) -> RoundTripReport:
    """Transform forward, transform back, and diff against the original."""
    forward_system = MappingSystem(problem, algorithm=algorithm)
    backward_system = MappingSystem(reverse_problem(problem), algorithm=algorithm)
    forward = forward_system.transform(source)
    back = backward_system.transform(forward)
    return RoundTripReport(
        forward=forward,
        back=back,
        diff=diff_instances(source, back),
    )
