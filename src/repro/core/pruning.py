"""Pruning of candidate logical mappings (Algorithm 3, step 3).

Three structural pruning rules, applied in the paper's order after the
nullable-related pruning already performed during candidate generation:

* **subsumption**: ``m'`` is subsumed by ``m`` when both tableaux of ``m``
  embed into the corresponding tableaux of ``m'`` (so ``m'`` is "bigger"),
  at least one embedding is strict, and both cover the same correspondences;
* **implication**: ``m`` is implied by ``m'`` when both share the same source
  tableau and ``m``'s target tableau embeds into ``m'``'s (everything ``m``
  asserts, ``m'`` asserts too, with the same value bindings);
* **non-null extension**: for two candidates over the same source tableau
  whose target tableaux are chase siblings related by ``≺`` (the non-null
  extension of a nullable foreign key), the extension is pruned when it
  covers nothing more, and the null variant is pruned when the extension
  covers strictly more.

Embeddings respect null / non-null conditions (a condition of the smaller
tableau must be present in the bigger one) and the value bindings of the
covered correspondences (the data flow must be preserved, not just the
shape).

With ``semantic=True``, :func:`prune_candidates` additionally routes pairs
the syntactic tests cannot decide through the chase-based containment
engine (:mod:`repro.analysis.semantic.containment`): subsumption falls back
to condition-aware query containment with the covered flows as heads, and
implication falls back to tgd implication (``mapping_implies``) — which in
particular drops the requirement that the two candidates share the *same*
source tableau object, catching isomorphic-but-distinct chase results.
The flag is off by default: the syntactic rules are the paper's, and the
default pipeline behaviour must stay bit-for-bit identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..logic.homomorphism import find_homomorphism
from ..logic.tableau import PartialTableau
from ..logic.terms import Term, Variable
from ..obs import count, span
from .candidates import CandidateMapping, PruneRecord


def _condition_check(pattern: PartialTableau, target: PartialTableau):
    """Homomorphism side condition: conditions of the pattern must persist."""

    def check(var: Variable, image: Term) -> bool:
        if var in pattern.null_vars:
            return image in target.null_vars
        if var in pattern.nonnull_vars:
            return image in target.nonnull_vars
        return True

    return check


def _embed_tableau(
    small: PartialTableau,
    big: PartialTableau,
    fixed: dict[Variable, Term],
) -> dict[Variable, Term] | None:
    """An embedding of ``small``'s atoms (and conditions) into ``big``'s."""
    return find_homomorphism(
        small.atoms, big.atoms, fixed=fixed, var_check=_condition_check(small, big)
    )


def _binding_fixed_pairs(
    smaller: CandidateMapping, bigger: CandidateMapping, side: str
) -> dict[Variable, Term] | None:
    """Fixed variable pairs forcing the embeddings to preserve covered flows.

    For every correspondence covered by both candidates, the smaller
    candidate's referenced term must map onto the bigger candidate's
    referenced term, on the requested side ("source" or "target").  Returns
    ``None`` on an inconsistency (same variable forced to two images).
    """
    fixed: dict[Variable, Term] = {}
    small_sel = smaller.selection_by_correspondence()
    big_sel = bigger.selection_by_correspondence()
    for correspondence, small_cov in small_sel.items():
        big_cov = big_sel.get(correspondence)
        if big_cov is None:
            continue
        if side == "source":
            small_term = small_cov.source.referenced_term(smaller.source_tableau)
            big_term = big_cov.source.referenced_term(bigger.source_tableau)
        else:
            small_term = small_cov.target.referenced_term(smaller.target_tableau)
            big_term = big_cov.target.referenced_term(bigger.target_tableau)
        if isinstance(small_term, Variable):
            if small_term in fixed and fixed[small_term] != big_term:
                return None
            fixed[small_term] = big_term
        elif small_term != big_term:  # pragma: no cover - tableau terms are variables
            return None
    return fixed


def subsumes(small: CandidateMapping, big: CandidateMapping) -> bool:
    """True iff ``big`` is subsumed by ``small`` (paper: m' subsumed by m)."""
    if small.covered_set() != big.covered_set():
        return False
    strict = len(big.source_tableau) > len(small.source_tableau) or len(
        big.target_tableau
    ) > len(small.target_tableau)
    if not strict:
        return False
    fixed_source = _binding_fixed_pairs(small, big, "source")
    if fixed_source is None:
        return False
    g = _embed_tableau(small.source_tableau, big.source_tableau, fixed_source)
    if g is None:
        return False
    fixed_target = _binding_fixed_pairs(small, big, "target")
    if fixed_target is None:
        return False
    h = _embed_tableau(small.target_tableau, big.target_tableau, fixed_target)
    return h is not None


def implies(stronger: CandidateMapping, weaker: CandidateMapping) -> bool:
    """True iff ``weaker`` is implied by ``stronger``.

    Requires the identical source tableau (the same chase result, hence the
    same premise and source variables) and an embedding of the weaker
    candidate's target tableau into the stronger one's that preserves every
    covered value flow of the weaker candidate.
    """
    if stronger.source_tableau is not weaker.source_tableau:
        return False
    weak_sel = weaker.selection_by_correspondence()
    strong_sel = stronger.selection_by_correspondence()
    fixed: dict[Variable, Term] = {}
    for correspondence, weak_cov in weak_sel.items():
        strong_cov = strong_sel.get(correspondence)
        if strong_cov is None:
            return False  # the stronger mapping does not move this value
        # Same source term (the tableaux are the same object, so comparable).
        if weak_cov.source.referenced_term(weaker.source_tableau) is not (
            strong_cov.source.referenced_term(stronger.source_tableau)
        ):
            return False
        weak_var = weaker.target_variable(weak_cov)
        strong_var = stronger.target_variable(strong_cov)
        if weak_var in fixed and fixed[weak_var] != strong_var:
            return False
        fixed[weak_var] = strong_var
    h = _embed_tableau(weaker.target_tableau, stronger.target_tableau, fixed)
    return h is not None


def semantic_subsumption_witnesses(
    small: CandidateMapping, big: CandidateMapping
):
    """The chase certificates that ``big`` is subsumed by ``small``.

    Returns ``(source_witness, target_witness)`` — containment witnesses of
    ``big``'s tableau queries in ``small``'s, with the covered flow terms
    (in a canonical correspondence order) as heads so the data flow is
    preserved by construction — or ``None`` when either side has no
    certificate or the structural preconditions (same covered set,
    strictness) fail.
    """
    from ..analysis.semantic.containment import ConjunctiveQuery, contained_in

    if small.covered_set() != big.covered_set():
        return None
    strict = len(big.source_tableau) > len(small.source_tableau) or len(
        big.target_tableau
    ) > len(small.target_tableau)
    if not strict:
        return None

    shared = sorted(small.covered_set(), key=repr)

    def flow_query(candidate: CandidateMapping, side: str) -> ConjunctiveQuery:
        selection = candidate.selection_by_correspondence()
        if side == "source":
            tableau = candidate.source_tableau
            head = tuple(
                selection[c].source.referenced_term(tableau) for c in shared
            )
        else:
            tableau = candidate.target_tableau
            head = tuple(
                selection[c].target.referenced_term(tableau) for c in shared
            )
        return ConjunctiveQuery(
            head_label=f"flows:{side}",
            head=head,
            atoms=tuple(tableau.atoms),
            null_vars=frozenset(tableau.null_vars),
            nonnull_vars=frozenset(tableau.nonnull_vars),
        )

    source = contained_in(flow_query(big, "source"), flow_query(small, "source"))
    if source is None:
        return None
    target = contained_in(flow_query(big, "target"), flow_query(small, "target"))
    if target is None:
        return None
    return source, target


def semantic_subsumes(small: CandidateMapping, big: CandidateMapping) -> bool:
    """The subsumption test, decided by the containment engine.

    Same covered set and strictness conditions as :func:`subsumes`, but the
    two embeddings become chase-based containment checks of the tableau
    queries whose heads are the covered flow terms — so reordered or renamed
    chase results still compare (see
    :func:`semantic_subsumption_witnesses`).
    """
    return semantic_subsumption_witnesses(small, big) is not None


def semantic_implication_witness(
    stronger: CandidateMapping, weaker: CandidateMapping
):
    """The chase certificate that ``stronger`` logically implies ``weaker``.

    Interprets both candidates as their induced logical mappings and asks
    whether the stronger one logically implies the weaker one
    (:func:`repro.analysis.semantic.containment.mapping_implies`).  Unlike
    :func:`implies`, this does not require the two candidates to share the
    same source-tableau *object* — isomorphic chase results compare equal.
    Returns the witness, or ``None``.
    """
    from ..analysis.semantic.containment import mapping_implies
    from .schema_mapping import candidate_to_logical_mapping

    def target_conditions(candidate: CandidateMapping):
        # candidate_to_logical_mapping substitutes covered target variables
        # by their source terms, so thread the target tableau's conditions
        # through the same binding before handing them to the engine.
        theta, _ = candidate.binding()

        def images(variables):
            return frozenset(
                image
                for var in variables
                for image in (theta.get(var, var),)
                if isinstance(image, Variable)
            )

        tableau = candidate.target_tableau
        return images(tableau.null_vars), images(tableau.nonnull_vars)

    strong = candidate_to_logical_mapping(stronger, label=stronger.name)
    weak = candidate_to_logical_mapping(weaker, label=weaker.name)
    return mapping_implies(
        strong,
        weak,
        stronger_consequent_conditions=target_conditions(stronger),
        weaker_consequent_conditions=target_conditions(weaker),
    )


def semantic_implies(stronger: CandidateMapping, weaker: CandidateMapping) -> bool:
    """The implication test, decided by tgd implication over the chase."""
    return semantic_implication_witness(stronger, weaker) is not None


@dataclass
class PruningResult:
    kept: list[CandidateMapping] = field(default_factory=list)
    pruned: list[PruneRecord] = field(default_factory=list)


def prune_candidates(
    candidates: list[CandidateMapping],
    use_nonnull_extension: bool = True,
    semantic: bool = False,
) -> PruningResult:
    """Apply subsumption, implication and non-null-extension pruning in order.

    ``semantic`` (compatibility flag, default off) additionally tries the
    containment-engine variants of subsumption and implication on pairs the
    syntactic tests reject; records gained this way carry a
    ``"... (semantic)"`` reason.
    """
    with span("mapping.pruning", candidates=len(candidates)) as trace:
        result = _prune_candidates(candidates, use_nonnull_extension, semantic)
        count("candidates.kept", len(result.kept))
        trace.set(kept=len(result.kept), pruned=len(result.pruned))
        return result


def _prune_candidates(
    candidates: list[CandidateMapping],
    use_nonnull_extension: bool,
    semantic: bool = False,
) -> PruningResult:
    result = PruningResult()

    def subsumption_test(small: CandidateMapping, big: CandidateMapping) -> str | None:
        if subsumes(small, big):
            return "syntactic"
        if semantic and semantic_subsumes(small, big):
            count("prune.semantic")
            return "semantic"
        return None

    def implication_test(
        stronger: CandidateMapping, weaker: CandidateMapping
    ) -> str | None:
        if implies(stronger, weaker):
            return "syntactic"
        if semantic and semantic_implies(stronger, weaker):
            count("prune.semantic")
            return "semantic"
        return None

    # -- subsumption ------------------------------------------------------
    survivors: list[CandidateMapping] = []
    for candidate in candidates:
        record = next(
            (
                (other, how)
                for other in candidates
                for how in (subsumption_test(other, candidate),)
                if other is not candidate and how is not None
            ),
            None,
        )
        if record is not None:
            subsumer, how = record
            count("prune.subsumption")
            note = " (semantic)" if how == "semantic" else ""
            result.pruned.append(
                PruneRecord(
                    candidate.name,
                    repr(candidate),
                    f"subsumed by {subsumer.name}{note}",
                    rule="subsumption",
                    by=subsumer.name,
                )
            )
        else:
            survivors.append(candidate)

    # -- implication (among remaining) -------------------------------------
    implied_away: set[int] = set()
    for i, candidate in enumerate(survivors):
        for j, other in enumerate(survivors):
            if i == j or j in implied_away:
                continue
            how = implication_test(other, candidate)
            if how is None:
                continue
            if implication_test(candidate, other) is not None and i < j:
                continue  # structurally equal candidates: keep the earlier one
            implied_away.add(i)
            count("prune.implication")
            note = " (semantic)" if how == "semantic" else ""
            result.pruned.append(
                PruneRecord(
                    candidate.name,
                    repr(candidate),
                    f"implied by {other.name}{note}",
                    rule="implication",
                    by=other.name,
                )
            )
            break
    after_implication = [m for i, m in enumerate(survivors) if i not in implied_away]

    # -- non-null extension -------------------------------------------------
    pruned_extension: set[int] = set()
    for i, m in enumerate(after_implication):
        for j, m_prime in enumerate(after_implication):
            if i == j or i in pruned_extension or j in pruned_extension:
                continue
            if not use_nonnull_extension:
                continue
            if m.source_tableau is not m_prime.source_tableau:
                continue
            if not m_prime.target_tableau.is_nonnull_extension_of(m.target_tableau):
                continue
            covered_m = m.covered_set()
            covered_prime = m_prime.covered_set()
            if covered_m == covered_prime:
                pruned_extension.add(j)
                count("prune.nonnull-extension")
                result.pruned.append(
                    PruneRecord(
                        m_prime.name,
                        repr(m_prime),
                        f"non-null extension of {m.name} covering no more correspondences",
                        rule="nonnull-extension",
                        by=m.name,
                    )
                )
            elif covered_m < covered_prime:
                pruned_extension.add(i)
                count("prune.nonnull-extension")
                result.pruned.append(
                    PruneRecord(
                        m.name,
                        repr(m),
                        f"its non-null extension {m_prime.name} covers strictly more",
                        rule="nonnull-extension",
                        by=m_prime.name,
                    )
                )
    result.kept = [
        m for i, m in enumerate(after_implication) if i not in pruned_extension
    ]
    return result
