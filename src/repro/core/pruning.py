"""Pruning of candidate logical mappings (Algorithm 3, step 3).

Three structural pruning rules, applied in the paper's order after the
nullable-related pruning already performed during candidate generation:

* **subsumption**: ``m'`` is subsumed by ``m`` when both tableaux of ``m``
  embed into the corresponding tableaux of ``m'`` (so ``m'`` is "bigger"),
  at least one embedding is strict, and both cover the same correspondences;
* **implication**: ``m`` is implied by ``m'`` when both share the same source
  tableau and ``m``'s target tableau embeds into ``m'``'s (everything ``m``
  asserts, ``m'`` asserts too, with the same value bindings);
* **non-null extension**: for two candidates over the same source tableau
  whose target tableaux are chase siblings related by ``≺`` (the non-null
  extension of a nullable foreign key), the extension is pruned when it
  covers nothing more, and the null variant is pruned when the extension
  covers strictly more.

Embeddings respect null / non-null conditions (a condition of the smaller
tableau must be present in the bigger one) and the value bindings of the
covered correspondences (the data flow must be preserved, not just the
shape).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..logic.homomorphism import find_homomorphism
from ..logic.tableau import PartialTableau
from ..logic.terms import Term, Variable
from ..obs import count, span
from .candidates import CandidateMapping, PruneRecord


def _condition_check(pattern: PartialTableau, target: PartialTableau):
    """Homomorphism side condition: conditions of the pattern must persist."""

    def check(var: Variable, image: Term) -> bool:
        if var in pattern.null_vars:
            return image in target.null_vars
        if var in pattern.nonnull_vars:
            return image in target.nonnull_vars
        return True

    return check


def _embed_tableau(
    small: PartialTableau,
    big: PartialTableau,
    fixed: dict[Variable, Term],
) -> dict[Variable, Term] | None:
    """An embedding of ``small``'s atoms (and conditions) into ``big``'s."""
    return find_homomorphism(
        small.atoms, big.atoms, fixed=fixed, var_check=_condition_check(small, big)
    )


def _binding_fixed_pairs(
    smaller: CandidateMapping, bigger: CandidateMapping, side: str
) -> dict[Variable, Term] | None:
    """Fixed variable pairs forcing the embeddings to preserve covered flows.

    For every correspondence covered by both candidates, the smaller
    candidate's referenced term must map onto the bigger candidate's
    referenced term, on the requested side ("source" or "target").  Returns
    ``None`` on an inconsistency (same variable forced to two images).
    """
    fixed: dict[Variable, Term] = {}
    small_sel = smaller.selection_by_correspondence()
    big_sel = bigger.selection_by_correspondence()
    for correspondence, small_cov in small_sel.items():
        big_cov = big_sel.get(correspondence)
        if big_cov is None:
            continue
        if side == "source":
            small_term = small_cov.source.referenced_term(smaller.source_tableau)
            big_term = big_cov.source.referenced_term(bigger.source_tableau)
        else:
            small_term = small_cov.target.referenced_term(smaller.target_tableau)
            big_term = big_cov.target.referenced_term(bigger.target_tableau)
        if isinstance(small_term, Variable):
            if small_term in fixed and fixed[small_term] != big_term:
                return None
            fixed[small_term] = big_term
        elif small_term != big_term:  # pragma: no cover - tableau terms are variables
            return None
    return fixed


def subsumes(small: CandidateMapping, big: CandidateMapping) -> bool:
    """True iff ``big`` is subsumed by ``small`` (paper: m' subsumed by m)."""
    if small.covered_set() != big.covered_set():
        return False
    strict = len(big.source_tableau) > len(small.source_tableau) or len(
        big.target_tableau
    ) > len(small.target_tableau)
    if not strict:
        return False
    fixed_source = _binding_fixed_pairs(small, big, "source")
    if fixed_source is None:
        return False
    g = _embed_tableau(small.source_tableau, big.source_tableau, fixed_source)
    if g is None:
        return False
    fixed_target = _binding_fixed_pairs(small, big, "target")
    if fixed_target is None:
        return False
    h = _embed_tableau(small.target_tableau, big.target_tableau, fixed_target)
    return h is not None


def implies(stronger: CandidateMapping, weaker: CandidateMapping) -> bool:
    """True iff ``weaker`` is implied by ``stronger``.

    Requires the identical source tableau (the same chase result, hence the
    same premise and source variables) and an embedding of the weaker
    candidate's target tableau into the stronger one's that preserves every
    covered value flow of the weaker candidate.
    """
    if stronger.source_tableau is not weaker.source_tableau:
        return False
    weak_sel = weaker.selection_by_correspondence()
    strong_sel = stronger.selection_by_correspondence()
    fixed: dict[Variable, Term] = {}
    for correspondence, weak_cov in weak_sel.items():
        strong_cov = strong_sel.get(correspondence)
        if strong_cov is None:
            return False  # the stronger mapping does not move this value
        # Same source term (the tableaux are the same object, so comparable).
        if weak_cov.source.referenced_term(weaker.source_tableau) is not (
            strong_cov.source.referenced_term(stronger.source_tableau)
        ):
            return False
        weak_var = weaker.target_variable(weak_cov)
        strong_var = stronger.target_variable(strong_cov)
        if weak_var in fixed and fixed[weak_var] != strong_var:
            return False
        fixed[weak_var] = strong_var
    h = _embed_tableau(weaker.target_tableau, stronger.target_tableau, fixed)
    return h is not None


@dataclass
class PruningResult:
    kept: list[CandidateMapping] = field(default_factory=list)
    pruned: list[PruneRecord] = field(default_factory=list)


def prune_candidates(
    candidates: list[CandidateMapping],
    use_nonnull_extension: bool = True,
) -> PruningResult:
    """Apply subsumption, implication and non-null-extension pruning in order."""
    with span("mapping.pruning", candidates=len(candidates)) as trace:
        result = _prune_candidates(candidates, use_nonnull_extension)
        count("candidates.kept", len(result.kept))
        trace.set(kept=len(result.kept), pruned=len(result.pruned))
        return result


def _prune_candidates(
    candidates: list[CandidateMapping],
    use_nonnull_extension: bool,
) -> PruningResult:
    result = PruningResult()

    # -- subsumption ------------------------------------------------------
    survivors: list[CandidateMapping] = []
    for candidate in candidates:
        subsumer = next(
            (
                other
                for other in candidates
                if other is not candidate and subsumes(other, candidate)
            ),
            None,
        )
        if subsumer is not None:
            count("prune.subsumption")
            result.pruned.append(
                PruneRecord(
                    candidate.name,
                    repr(candidate),
                    f"subsumed by {subsumer.name}",
                    rule="subsumption",
                    by=subsumer.name,
                )
            )
        else:
            survivors.append(candidate)

    # -- implication (among remaining) -------------------------------------
    implied_away: set[int] = set()
    for i, candidate in enumerate(survivors):
        for j, other in enumerate(survivors):
            if i == j or j in implied_away:
                continue
            if not implies(other, candidate):
                continue
            if implies(candidate, other) and i < j:
                continue  # structurally equal candidates: keep the earlier one
            implied_away.add(i)
            count("prune.implication")
            result.pruned.append(
                PruneRecord(
                    candidate.name,
                    repr(candidate),
                    f"implied by {other.name}",
                    rule="implication",
                    by=other.name,
                )
            )
            break
    after_implication = [m for i, m in enumerate(survivors) if i not in implied_away]

    # -- non-null extension -------------------------------------------------
    pruned_extension: set[int] = set()
    for i, m in enumerate(after_implication):
        for j, m_prime in enumerate(after_implication):
            if i == j or i in pruned_extension or j in pruned_extension:
                continue
            if not use_nonnull_extension:
                continue
            if m.source_tableau is not m_prime.source_tableau:
                continue
            if not m_prime.target_tableau.is_nonnull_extension_of(m.target_tableau):
                continue
            covered_m = m.covered_set()
            covered_prime = m_prime.covered_set()
            if covered_m == covered_prime:
                pruned_extension.add(j)
                count("prune.nonnull-extension")
                result.pruned.append(
                    PruneRecord(
                        m_prime.name,
                        repr(m_prime),
                        f"non-null extension of {m.name} covering no more correspondences",
                        rule="nonnull-extension",
                        by=m.name,
                    )
                )
            elif covered_m < covered_prime:
                pruned_extension.add(i)
                count("prune.nonnull-extension")
                result.pruned.append(
                    PruneRecord(
                        m.name,
                        repr(m),
                        f"its non-null extension {m_prime.name} covers strictly more",
                        rule="nonnull-extension",
                        by=m_prime.name,
                    )
                )
    result.kept = [
        m for i, m in enumerate(after_implication) if i not in pruned_extension
    ]
    return result
