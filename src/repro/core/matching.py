"""Correspondence discovery: a simple name-based schema matcher.

The paper notes that "a mapping system may have further components, e.g., a
matching algorithm to automatically discover correspondences between the
source and target schemas" (section 1) and leaves that component out of
scope.  This module provides such a component so the library is usable when
no correspondences are drawn yet: it ranks candidate (referenced-)attribute
correspondences by name similarity and can bootstrap a
:class:`~repro.core.pipeline.MappingProblem` directly.

The matcher is deliberately simple (string similarity over attribute and
relation names, with foreign-key paths explored for referenced-attribute
suggestions); it is a convenience, not a research contribution.
"""

from __future__ import annotations

from dataclasses import dataclass
from difflib import SequenceMatcher

from ..model.schema import Schema
from .correspondences import Correspondence, ReferencedAttribute
from .pipeline import MappingProblem


def name_similarity(left: str, right: str) -> float:
    """Similarity in [0, 1]: exact (case-insensitive) match scores 1."""
    left_l, right_l = left.lower(), right.lower()
    if left_l == right_l:
        return 1.0
    return SequenceMatcher(None, left_l, right_l).ratio()


@dataclass(frozen=True)
class MatchSuggestion:
    """A ranked candidate correspondence."""

    correspondence: Correspondence
    score: float
    reason: str

    def __repr__(self) -> str:
        return f"{self.correspondence!r}  [{self.score:.2f}: {self.reason}]"


def _plain_references(schema: Schema) -> list[ReferencedAttribute]:
    return [
        ReferencedAttribute(((relation.name, attribute.name),))
        for relation in schema
        for attribute in relation.attributes
    ]


def _path_references(schema: Schema, max_depth: int = 2) -> list[ReferencedAttribute]:
    """Referenced attributes with non-empty FK prefix paths, up to a depth."""
    results: list[ReferencedAttribute] = []

    def extend(steps: tuple[tuple[str, str], ...], relation: str, depth: int) -> None:
        if depth > max_depth:
            return
        for fk in schema.foreign_keys_of(relation):
            prefix = steps + ((relation, fk.attribute),)
            target = schema.relation(fk.referenced)
            for attribute in target.attribute_names:
                results.append(
                    ReferencedAttribute(prefix + ((fk.referenced, attribute),))
                )
            extend(prefix, fk.referenced, depth + 1)

    for relation in schema.relation_names():
        extend((), relation, 1)
    return results


def _score(source: ReferencedAttribute, target: ReferencedAttribute) -> tuple[float, str]:
    attribute_score = name_similarity(source.attribute, target.attribute)
    relation_score = name_similarity(source.relation, target.relation)
    score = 0.7 * attribute_score + 0.3 * relation_score
    # Penalize path length: prefer the simplest realization of a match.
    length_penalty = 0.05 * (len(source.steps) - 1 + len(target.steps) - 1)
    score = max(0.0, score - length_penalty)
    if attribute_score == 1.0:
        reason = "attribute names match"
    else:
        reason = f"attribute similarity {attribute_score:.2f}"
    return score, reason


def suggest_correspondences(
    source_schema: Schema,
    target_schema: Schema,
    threshold: float = 0.55,
    include_paths: bool = True,
    max_depth: int = 2,
) -> list[MatchSuggestion]:
    """Rank candidate correspondences between two schemas.

    Returns at most one suggestion per *target* attribute occurrence (the
    best-scoring source endpoint), sorted by descending score.  With
    ``include_paths`` the source side also explores foreign-key paths, so
    the matcher can propose referenced-attribute correspondences like
    ``O.person ▹ P.name → C.name``.
    """
    source_refs = _plain_references(source_schema)
    if include_paths:
        source_refs += _path_references(source_schema, max_depth)
    target_refs = _plain_references(target_schema)

    best: dict[ReferencedAttribute, MatchSuggestion] = {}
    for target_ref in target_refs:
        for source_ref in source_refs:
            score, reason = _score(source_ref, target_ref)
            if score < threshold:
                continue
            suggestion = MatchSuggestion(
                Correspondence(source_ref, target_ref), score, reason
            )
            current = best.get(target_ref)
            if current is None or suggestion.score > current.score:
                best[target_ref] = suggestion
    ranked = sorted(best.values(), key=lambda s: (-s.score, repr(s.correspondence)))
    return ranked


def bootstrap_problem(
    source_schema: Schema,
    target_schema: Schema,
    threshold: float = 0.55,
    name: str = "matched-problem",
) -> tuple[MappingProblem, list[MatchSuggestion]]:
    """Build a MappingProblem from the matcher's suggestions.

    Returns the problem plus the accepted suggestions, so a caller (or the
    CLI) can show what was auto-drawn and let the user adjust.
    """
    suggestions = suggest_correspondences(source_schema, target_schema, threshold)
    problem = MappingProblem(source_schema, target_schema, name=name)
    for index, suggestion in enumerate(suggestions, start=1):
        correspondence = Correspondence(
            suggestion.correspondence.source,
            suggestion.correspondence.target,
            label=f"auto{index}",
        )
        correspondence.validate(source_schema, target_schema)
        problem.correspondences.append(correspondence)
    return problem, suggestions
