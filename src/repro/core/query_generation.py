"""Query generation — Algorithm 2 (basic) and Algorithm 4 (novel).

Both algorithms skolemize the schema mapping, rewrite it into unitary
mappings and "reverse the arrows" into a non-recursive Datalog program.  The
novel algorithm inserts the key-management step in between: the
functionality check and the identification / resolution of key conflicts
(see :mod:`repro.core.functionality`, :mod:`repro.core.conflicts`,
:mod:`repro.core.resolution`).  Negated subqueries introduced by resolution
become intermediate ``tmp`` relations, shared between mappings negating the
same premise projection (the paper's ``OCtmp``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import QueryGenerationError
from ..logic.atoms import NegatedPremise, RelationalAtom
from ..logic.mappings import LogicalMapping, SchemaMapping, UnitaryMapping
from ..logic.terms import Variable
from ..model.schema import Schema
from ..obs import RunReport, count, span, stage_report
from ..datalog.optimize import remove_subsumed_rules
from ..datalog.program import DatalogProgram, Rule
from .functionality import assert_all_functional
from .resolution import ResolutionReport, resolve_key_conflicts
from .schema_mapping import BASIC, NOVEL
from .skolem import (
    ALL_SOURCE_OR_KEY_VARS,
    SOURCE_AND_RHS_VARS,
    skolemize_schema_mapping,
)


def rewrite_to_unitary(mappings: list[LogicalMapping]) -> list[UnitaryMapping]:
    """Split each skolemized mapping into one mapping per consequent atom.

    The paper's subscripted implication arrows — each unitary mapping
    remembers its original logical mapping, because conflict resolution must
    rewrite all siblings together.
    """
    unitary: list[UnitaryMapping] = []
    for mapping in mappings:
        label = mapping.label or "m"
        for index, atom in enumerate(mapping.consequent, start=1):
            unitary.append(
                UnitaryMapping(
                    premise=mapping.premise,
                    consequent=atom,
                    origin=label,
                    name=f"{label}.{index}",
                )
            )
    return unitary


def _tmp_name(negation: NegatedPremise, taken: set[str]) -> str:
    """A readable intermediate-relation name, paper-style (``OCtmp``)."""
    letters = "".join(a.relation[0] for a in negation.atoms[:2]) or "N"
    base = f"{letters}tmp"
    name = base
    suffix = 2
    while name in taken:
        name = f"{base}{suffix}"
        suffix += 1
    return name


@dataclass
class QueryGenerationResult:
    """The emitted program plus the intermediate artifacts of Algorithm 4."""

    program: DatalogProgram
    skolemized: list[LogicalMapping] = field(default_factory=list)
    unitary: list[UnitaryMapping] = field(default_factory=list)
    final: list[UnitaryMapping] = field(default_factory=list)
    resolution: ResolutionReport | None = None
    #: stage telemetry, populated when an obs tracer is active (see repro.obs)
    run_report: RunReport | None = None


def build_program(
    mappings: list[UnitaryMapping],
    source_schema: Schema,
    target_schema: Schema,
) -> DatalogProgram:
    """Reverse the (modified) unitary mappings into Datalog rules.

    Negated premises become intermediate relations: mappings negating the
    same premise projection (same structural signature) share one ``tmp``
    relation and its defining rule.
    """
    program = DatalogProgram(source_schema=source_schema, target_schema=target_schema)
    tmp_by_signature: dict[tuple, str] = {}
    tmp_rules: list[Rule] = []
    taken: set[str] = set(source_schema.relation_names()) | set(
        target_schema.relation_names()
    )

    main_rules: list[Rule] = []
    for mapping in mappings:
        negated_atoms: list[RelationalAtom] = []
        for negation in mapping.premise.negated:
            signature = negation.signature()
            name = tmp_by_signature.get(signature)
            if name is None:
                name = _tmp_name(negation, taken)
                taken.add(name)
                tmp_by_signature[signature] = name
                program.intermediates[name] = len(negation.correlated)
                tmp_rules.append(
                    Rule(
                        head=RelationalAtom(name, negation.correlated),
                        body=negation.atoms,
                        null_vars=tuple(
                            v for v in negation.null_vars if isinstance(v, Variable)
                        ),
                        nonnull_vars=tuple(
                            v for v in negation.nonnull_vars if isinstance(v, Variable)
                        ),
                        equalities=negation.equalities,
                        disequalities=negation.disequalities,
                    )
                )
            negated_atoms.append(RelationalAtom(name, negation.correlated))
        main_rules.append(
            Rule(
                head=mapping.consequent,
                body=mapping.premise.atoms,
                negated=tuple(negated_atoms),
                null_vars=mapping.premise.null_vars,
                nonnull_vars=mapping.premise.nonnull_vars,
                equalities=mapping.premise.equalities,
                disequalities=mapping.premise.disequalities,
            )
        )
    program.rules = main_rules + tmp_rules
    program.validate()
    return program


def generate_queries(
    schema_mapping: SchemaMapping,
    algorithm: str = NOVEL,
    skolem_strategy: str | None = None,
    optimize: bool = True,
    propagate_unification: bool = True,
) -> QueryGenerationResult:
    """Run query generation end to end (Algorithm 2 or 4)."""
    if algorithm not in (BASIC, NOVEL):
        raise QueryGenerationError(f"unknown algorithm {algorithm!r}")
    source_schema = schema_mapping.source_schema
    target_schema = schema_mapping.target_schema
    assert isinstance(source_schema, Schema) and isinstance(target_schema, Schema)

    if skolem_strategy is None:
        skolem_strategy = (
            ALL_SOURCE_OR_KEY_VARS if algorithm == NOVEL else SOURCE_AND_RHS_VARS
        )
    with span(
        "stage.query_generation",
        algorithm=algorithm,
        mappings=len(schema_mapping),
    ) as trace:
        skolemized = skolemize_schema_mapping(
            list(schema_mapping),
            target_schema,
            strategy=skolem_strategy,
            use_null_for_nullable=(algorithm == NOVEL),
        )
        unitary = rewrite_to_unitary(skolemized)
        count("qgen.unitary_mappings", len(unitary))

        resolution: ResolutionReport | None = None
        if algorithm == NOVEL:
            assert_all_functional(unitary, source_schema, target_schema)
            final, resolution = resolve_key_conflicts(
                unitary,
                source_schema,
                target_schema,
                propagate_unification=propagate_unification,
            )
        else:
            final = unitary

        with span("qgen.build_program", mappings=len(final)):
            program = build_program(final, source_schema, target_schema)
        if optimize:
            before = len(program.rules)
            with span("qgen.optimize"):
                program = remove_subsumed_rules(program)
            count("qgen.rules_optimized_away", before - len(program.rules))
        count("qgen.rules", len(program.rules))
        trace.set(rules=len(program.rules))
    return QueryGenerationResult(
        program=program,
        skolemized=skolemized,
        unitary=unitary,
        final=final,
        resolution=resolution,
        run_report=stage_report(trace, "query-generation"),
    )
