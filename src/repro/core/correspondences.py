"""Value correspondences: attribute and referenced-attribute correspondences.

A traditional attribute correspondence (Clio) is a pair ``(R1.A1, R2.A2)`` of
a source and a target attribute.  The paper's *referenced-attribute
correspondences* (section 4) generalize both endpoints to *referenced
attributes*: an attribute prefixed by a path of foreign keys, written
``R1.A1 ▹ ... ▹ Rn.An`` where each ``Ri.Ai`` references the key of ``Ri+1``
and the referenced attribute is the last one, ``Rn.An``.  A plain attribute
is a referenced attribute with an empty prefix path.

Textual syntax accepted by :func:`parse_referenced_attribute` uses ``>`` for
the traversal symbol: ``"O3.person > P3.name"``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..errors import CorrespondenceError
from ..model.schema import Schema

if TYPE_CHECKING:  # pragma: no cover
    from ..analysis.diagnostics import SourceSpan

FILTER_OPERATORS = ("=", "!=")


@dataclass(frozen=True)
class ReferencedAttribute:
    """``R1.A1 ▹ ... ▹ Rn.An``: an attribute reached through a path of FKs."""

    steps: tuple[tuple[str, str], ...]  # (relation, attribute) pairs

    def __post_init__(self) -> None:
        if not self.steps:
            raise CorrespondenceError("a referenced attribute needs at least one step")

    @property
    def relation(self) -> str:
        """The relation of the referenced (last) attribute."""
        return self.steps[-1][0]

    @property
    def attribute(self) -> str:
        """The referenced (last) attribute."""
        return self.steps[-1][1]

    @property
    def is_plain(self) -> bool:
        """True iff the prefix path is empty (a traditional attribute)."""
        return len(self.steps) == 1

    def validate(self, schema: Schema) -> None:
        """Check that every step exists and traverses a declared foreign key."""
        for relation, attribute in self.steps:
            if relation not in schema:
                raise CorrespondenceError(f"{self}: unknown relation {relation!r}")
            if not schema.relation(relation).has_attribute(attribute):
                raise CorrespondenceError(
                    f"{self}: relation {relation} has no attribute {attribute!r}"
                )
        for (relation, attribute), (next_relation, _next_attr) in zip(
            self.steps, self.steps[1:]
        ):
            fk = schema.foreign_key_from(relation, attribute)
            if fk is None or fk.referenced != next_relation:
                raise CorrespondenceError(
                    f"{self}: {relation}.{attribute} is not a foreign key into "
                    f"{next_relation}"
                )

    def __repr__(self) -> str:
        return " > ".join(f"{r}.{a}" for r, a in self.steps)


def parse_referenced_attribute(text: str) -> ReferencedAttribute:
    """Parse ``"R.A"`` or ``"R1.A1 > R2.A2 > ..."`` into a ReferencedAttribute."""
    steps = []
    for piece in text.split(">"):
        piece = piece.strip()
        if piece.count(".") != 1:
            raise CorrespondenceError(
                f"bad referenced-attribute step {piece!r}: expected 'Relation.attribute'"
            )
        relation, attribute = (p.strip() for p in piece.split("."))
        if not relation or not attribute:
            raise CorrespondenceError(f"bad referenced-attribute step {piece!r}")
        steps.append((relation, attribute))
    return ReferencedAttribute(tuple(steps))


@dataclass(frozen=True)
class Filter:
    """A Clio-style filter: a comparison with a constant.

    Filters constrain "attributes occurring in the same relation of the
    filtered attribute and constants" (paper section 7); here the relation
    may be any relation on the correspondence's source path.
    """

    relation: str
    attribute: str
    operator: str  # "=" or "!="
    value: str

    def __post_init__(self) -> None:
        if self.operator not in FILTER_OPERATORS:
            raise CorrespondenceError(
                f"unsupported filter operator {self.operator!r}; "
                f"use one of {FILTER_OPERATORS}"
            )

    def __repr__(self) -> str:
        return f"{self.relation}.{self.attribute} {self.operator} {self.value!r}"


@dataclass(frozen=True)
class Correspondence:
    """A value correspondence between a source and a target referenced attribute.

    When both sides are plain attributes this is a traditional attribute
    correspondence; referenced-attribute correspondences strictly generalize
    them (paper section 4).  Optional Clio-style :class:`Filter` conditions
    restrict the source tuples the correspondence applies to (section 7
    discusses their expressiveness relative to r-a correspondences).
    """

    source: ReferencedAttribute
    target: ReferencedAttribute
    label: str = ""
    filters: tuple[Filter, ...] = ()
    #: DSL declaration site; excluded from equality and hashing.
    span: "SourceSpan | None" = field(default=None, compare=False, repr=False)

    @property
    def is_plain(self) -> bool:
        return self.source.is_plain and self.target.is_plain

    def validate(self, source_schema: Schema, target_schema: Schema) -> None:
        self.source.validate(source_schema)
        self.target.validate(target_schema)
        path_relations = {relation for relation, _attr in self.source.steps}
        for item in self.filters:
            if item.relation not in path_relations:
                raise CorrespondenceError(
                    f"filter {item!r}: relation {item.relation!r} is not on the "
                    f"source path of {self.source!r}"
                )
            if not source_schema.relation(item.relation).has_attribute(item.attribute):
                raise CorrespondenceError(
                    f"filter {item!r}: {item.relation} has no attribute "
                    f"{item.attribute!r}"
                )

    def __repr__(self) -> str:
        name = f"{self.label}: " if self.label else ""
        text = f"({name}{self.source!r} , {self.target!r})"
        if self.filters:
            text += " where " + " and ".join(repr(f) for f in self.filters)
        return text


def parse_filter(text: str) -> Filter:
    """Parse ``"R.attr = 'value'"`` or ``"R.attr != 'value'"``."""
    for operator in ("!=", "="):
        if operator in text:
            left, _, right = text.partition(operator)
            left = left.strip()
            right = right.strip()
            if left.count(".") != 1:
                raise CorrespondenceError(f"bad filter attribute {left!r}")
            relation, attribute = (p.strip() for p in left.split("."))
            if right.startswith("'") and right.endswith("'") and len(right) >= 2:
                right = right[1:-1]
            if not right:
                raise CorrespondenceError(f"empty filter value in {text!r}")
            return Filter(relation, attribute, operator, right)
    raise CorrespondenceError(f"no comparison operator in filter {text!r}")


def correspondence(
    source: str,
    target: str,
    label: str = "",
    where: str = "",
    span: "SourceSpan | None" = None,
) -> Correspondence:
    """Build a correspondence from textual endpoints.

    ``correspondence("P3.name", "P2.name")`` is a traditional attribute
    correspondence; ``correspondence("O3.person > P3.name", "C1.name")`` is a
    referenced-attribute correspondence.  ``where`` accepts Clio-style filters
    like ``"P3.email != 'x' and P3.name = 'MJ'"``.
    """
    filters: tuple[Filter, ...] = ()
    if where:
        filters = tuple(parse_filter(piece) for piece in where.split(" and "))
    return Correspondence(
        parse_referenced_attribute(source),
        parse_referenced_attribute(target),
        label,
        filters,
        span=span,
    )


def correspondences(*pairs: tuple[str, str] | tuple[str, str, str]) -> list[Correspondence]:
    """Build several correspondences at once from (source, target[, label]) tuples."""
    built = []
    for pair in pairs:
        if len(pair) == 3:
            source, target, label = pair
        else:
            source, target = pair
            label = ""
        built.append(correspondence(source, target, label))
    return built
