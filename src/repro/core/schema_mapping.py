"""Schema mapping generation — Algorithm 1 (basic) and Algorithm 3 (novel).

Both algorithms share the same skeleton: chase each schema into logical
relations, pair them into skeletons, build candidate logical mappings from
covered correspondences, prune, and emit one source-to-target tgd per
surviving candidate.  The differences (paper section 5.3, underlined steps)
are configuration:

* the basic algorithm uses the **standard** chase and only
  subsumption/implication pruning;
* the novel algorithm uses the **modified** chase (partial tableaux), the
  refined coverage notions, nullable-related pruning and non-null-extension
  pruning.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import MappingGenerationError
from ..logic.atoms import Disequality, Equality
from ..logic.mappings import LogicalMapping, Premise, SchemaMapping
from ..logic.tableau import PartialTableau
from ..model.schema import Schema
from ..obs import RunReport, count, span, stage_report
from .candidates import (
    CandidateGeneration,
    CandidateMapping,
    PruneRecord,
    generate_candidates,
)
from .chase import MODIFIED, STANDARD, logical_relations
from .correspondences import Correspondence
from .pruning import prune_candidates

BASIC = "basic"
NOVEL = "novel"


@dataclass
class SchemaMappingReport:
    """Everything the generation run decided, for inspection and tests."""

    source_tableaux: list[PartialTableau] = field(default_factory=list)
    target_tableaux: list[PartialTableau] = field(default_factory=list)
    skeleton_count: int = 0
    candidates: list[CandidateMapping] = field(default_factory=list)
    pruned: list[PruneRecord] = field(default_factory=list)
    kept: list[CandidateMapping] = field(default_factory=list)

    def pruned_by_rule(self, rule: str) -> list[PruneRecord]:
        return [p for p in self.pruned if p.rule == rule]


@dataclass
class SchemaMappingResult:
    """The generated schema mapping together with its report."""

    schema_mapping: SchemaMapping
    report: SchemaMappingReport
    #: stage telemetry, populated when an obs tracer is active (see repro.obs)
    run_report: RunReport | None = None


def candidate_to_logical_mapping(
    candidate: CandidateMapping, label: str
) -> LogicalMapping:
    """Interpret a surviving candidate as a source-to-target tgd.

    Covered correspondences become shared variables: each covered target
    variable is replaced by its source term.  The target tableau's null and
    non-null conditions are dropped (paper section 5.2, "Actual Schema
    Mapping Generation"); the source conditions are kept in the premise.
    """
    theta, extra_equalities = candidate.binding()
    source_tableau = candidate.source_tableau
    target_tableau = candidate.target_tableau
    equalities = [Equality(a, b) for a, b in extra_equalities]
    disequalities = []
    for term, operator, constant in candidate.filter_conditions():
        if operator == "=":
            equalities.append(Equality(term, constant))
        else:
            disequalities.append(Disequality(term, constant))
    premise = Premise(
        atoms=tuple(source_tableau.atoms),
        null_vars=tuple(
            sorted(source_tableau.null_vars, key=lambda v: v.index)
        ),
        nonnull_vars=tuple(
            sorted(source_tableau.nonnull_vars, key=lambda v: v.index)
        ),
        equalities=tuple(equalities),
        disequalities=tuple(disequalities),
    )
    consequent = tuple(atom.substitute(theta) for atom in target_tableau.atoms)
    return LogicalMapping(
        premise=premise,
        consequent=consequent,
        label=label,
        covered=candidate.selection,
        source_tableau=source_tableau,
        target_tableau=target_tableau,
    )


def generate_schema_mapping(
    source_schema: Schema,
    target_schema: Schema,
    correspondences: list[Correspondence],
    algorithm: str = NOVEL,
    semantic_pruning: bool = False,
) -> SchemaMappingResult:
    """Run schema-mapping generation end to end.

    ``algorithm`` is :data:`BASIC` (Algorithm 1) or :data:`NOVEL`
    (Algorithm 3).  ``semantic_pruning`` additionally routes pruning pairs
    the syntactic tests miss through the chase-based containment engine
    (see :func:`repro.core.pruning.prune_candidates`).
    """
    if algorithm not in (BASIC, NOVEL):
        raise MappingGenerationError(f"unknown algorithm {algorithm!r}")
    for correspondence in correspondences:
        correspondence.validate(source_schema, target_schema)

    with span(
        "stage.schema_mapping",
        algorithm=algorithm,
        correspondences=len(correspondences),
    ) as trace:
        chase_mode = MODIFIED if algorithm == NOVEL else STANDARD
        report = SchemaMappingReport()
        with span("chase.source"):
            report.source_tableaux = logical_relations(source_schema, mode=chase_mode)
        with span("chase.target"):
            report.target_tableaux = logical_relations(target_schema, mode=chase_mode)

        generation: CandidateGeneration = generate_candidates(
            report.source_tableaux,
            report.target_tableaux,
            correspondences,
            apply_nullable_pruning=(algorithm == NOVEL),
        )
        report.skeleton_count = generation.skeleton_count
        report.candidates = generation.candidates
        report.pruned.extend(generation.pruned)

        pruning = prune_candidates(
            generation.candidates,
            use_nonnull_extension=(algorithm == NOVEL),
            semantic=semantic_pruning,
        )
        report.pruned.extend(pruning.pruned)
        report.kept = pruning.kept

        mapping = SchemaMapping(source_schema, target_schema)
        for index, candidate in enumerate(pruning.kept, start=1):
            mapping.mappings.append(
                candidate_to_logical_mapping(candidate, label=f"m{index}")
            )
        count("mapping.tgds", len(mapping.mappings))
        trace.set(mappings=len(mapping.mappings))
    return SchemaMappingResult(
        schema_mapping=mapping,
        report=report,
        run_report=stage_report(trace, "schema-mapping"),
    )
