"""The functionality check of Algorithm 4 (step 2).

A unitary logical mapping ``m = φ(x) → R(t_key, t_v1, ...)`` is *functional*
when it cannot, on its own, violate the key constraint of ``R``: for every
non-key position ``v`` the query ``φ(k, v) ∧ φ(k', v') ∧ k = k' ∧ v ≠ v'``
must be unsatisfiable over instances satisfying the source constraints.

The check doubles the premise with fresh variables, equates the two copies'
key terms (decomposing Skolem terms via injectivity) and asks the
congruence-closure engine whether the non-key terms can still differ.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import NonFunctionalMappingError
from ..logic.mappings import Premise, UnitaryMapping
from ..logic.satisfiability import check_equal_and_differ
from ..logic.terms import Term, Variable
from ..model.schema import Schema
from ..obs import count, span


def rename_premise(premise: Premise) -> tuple[Premise, dict[Variable, Term]]:
    """A copy of a premise with fresh variables, plus the renaming used."""
    renaming: dict[Variable, Term] = {}
    for var in premise.variables():
        renaming[var] = Variable(var.name + "'")
    # Null / non-null condition variables are premise variables already; a
    # defensive pass covers conditions on variables missing from the atoms.
    for var in list(premise.null_vars) + list(premise.nonnull_vars):
        renaming.setdefault(var, Variable(var.name + "'"))
    return premise.substitute(renaming), renaming


def rename_unitary(mapping: UnitaryMapping) -> UnitaryMapping:
    """A copy of a unitary mapping with fresh premise (and consequent) variables."""
    premise, renaming = rename_premise(mapping.premise)
    return UnitaryMapping(
        premise=premise,
        consequent=mapping.consequent.substitute(renaming),
        origin=mapping.origin,
        name=mapping.name,
    )


@dataclass
class FunctionalityViolation:
    """A witness that a unitary mapping is not functional."""

    mapping: UnitaryMapping
    attribute: str

    def __str__(self) -> str:
        return (
            f"mapping {self.mapping.name or self.mapping.origin} can produce two "
            f"{self.mapping.consequent.relation} tuples with the same key but "
            f"different values for {self.attribute!r}"
        )


def check_functionality(
    mapping: UnitaryMapping,
    source_schema: Schema,
    target_schema: Schema,
) -> FunctionalityViolation | None:
    """Return a violation witness, or ``None`` when the mapping is functional."""
    count("functionality.checks")
    copy = rename_unitary(mapping)
    relation = target_schema.relation(mapping.consequent.relation)
    key_positions = relation.key_positions()

    atoms = list(mapping.premise.atoms) + list(copy.premise.atoms)
    equalities: list[tuple[Term, Term]] = [
        (mapping.consequent.terms[p], copy.consequent.terms[p]) for p in key_positions
    ]
    for source in (mapping.premise, copy.premise):
        equalities.extend((e.left, e.right) for e in source.equalities)
    null_terms = list(mapping.premise.null_vars) + list(copy.premise.null_vars)
    nonnull_terms = list(mapping.premise.nonnull_vars) + list(copy.premise.nonnull_vars)
    disequalities = [
        (d.left, d.right)
        for source in (mapping.premise, copy.premise)
        for d in source.disequalities
    ]

    for position in range(relation.arity):
        if position in key_positions:
            continue
        differ = (mapping.consequent.terms[position], copy.consequent.terms[position])
        if check_equal_and_differ(
            atoms,
            source_schema,
            equalities,
            differ,
            null_terms,
            nonnull_terms,
            disequalities=disequalities,
        ):
            return FunctionalityViolation(mapping, relation.attributes[position].name)
    return None


def assert_all_functional(
    mappings: list[UnitaryMapping],
    source_schema: Schema,
    target_schema: Schema,
) -> None:
    """Raise :class:`NonFunctionalMappingError` on the first violation found."""
    with span("qgen.functionality", mappings=len(mappings)):
        for mapping in mappings:
            violation = check_functionality(mapping, source_schema, target_schema)
            if violation is not None:
                from ..analysis.diagnostics import diagnostic

                raise NonFunctionalMappingError(
                    str(violation),
                    diagnostic=diagnostic(
                        "MAP003",
                        str(violation),
                        subject=mapping.name or mapping.origin,
                    ),
                )
