"""Coverage of (referenced-attribute) correspondences by partial tableaux.

Implements the paper's notions (sections 4 and 5.2):

* a *coverage mapping* of a referenced attribute ``R1.A1 ▹ ... ▹ Rn.An`` by a
  tableau: a sequence of atoms, one per step, where each step's term equals
  the next atom's key term (i.e. the next atom is the FK child);
* the *coverage level* of a (referenced) attribute in a partial tableau:
  ``mand``, ``null``, ``nonnull``, or ``none`` — with the whole-path proviso
  that every prefix attribute must be covered at level mand or nonnull;
* the *coverage degree* of a correspondence by a skeleton: the pair of levels
  of its two referenced attributes.

Degrees are classified three ways (reconciling section 5.2 with the
case-by-case analysis of Appendix A):

* **covered** — both levels in ``{mand, nonnull}``: the correspondence
  contributes a value-flow condition to the candidate logical mapping;
* **poison** — ``(mand, null)``, ``(nonnull, null)`` or ``(null, nonnull)``:
  the skeleton must be pruned (nullable-related pruning, first rule);
* **neutral** — everything else (``(null, mand)``, ``(null, null)``, or any
  degree involving ``none``): the correspondence is simply not covered.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..logic.tableau import MAND, NONE, NONNULL, NULL, PartialTableau
from ..logic.terms import Term
from ..obs import count
from .correspondences import Correspondence, ReferencedAttribute

_VALUE_LEVELS = frozenset({MAND, NONNULL})
_POISON_DEGREES = frozenset({(MAND, NULL), (NONNULL, NULL), (NULL, NONNULL)})


@dataclass(frozen=True)
class CoverageMapping:
    """One way a referenced attribute is realized inside a tableau."""

    reference: ReferencedAttribute
    atom_indices: tuple[int, ...]
    level: str

    def referenced_term(self, tableau: PartialTableau) -> Term:
        """The term occurring at the referenced (last) attribute position."""
        return tableau.term_at(self.atom_indices[-1], self.reference.attribute)


def coverage_mappings(
    reference: ReferencedAttribute, tableau: PartialTableau
) -> list[CoverageMapping]:
    """All coverage mappings of ``reference`` in ``tableau`` with their levels.

    Only complete paths are returned; a broken path (a step attribute at
    level null, or a missing FK child) contributes nothing, which realizes the
    ``none`` coverage level for that route.
    """
    results: list[CoverageMapping] = []
    first_relation = reference.steps[0][0]
    for start in tableau.atoms_for(first_relation):
        indices = [start]
        ok = True
        for step, (relation, attribute) in enumerate(reference.steps[:-1]):
            atom_index = indices[-1]
            level = tableau.attribute_level(atom_index, attribute)
            if level not in _VALUE_LEVELS:
                ok = False
                break
            child = tableau.child_of(atom_index, attribute)
            if child is None or tableau.atoms[child].relation != reference.steps[step + 1][0]:
                ok = False
                break
            indices.append(child)
        if not ok:
            continue
        last_level = tableau.attribute_level(indices[-1], reference.attribute)
        count(f"coverage.level.{last_level}")
        results.append(CoverageMapping(reference, tuple(indices), last_level))
    if not results:
        count(f"coverage.level.{NONE}")
    return results


def coverage_level(reference: ReferencedAttribute, tableau: PartialTableau) -> str:
    """The best coverage level of ``reference`` in ``tableau`` (``none`` if absent)."""
    levels = [cm.level for cm in coverage_mappings(reference, tableau)]
    for preferred in (MAND, NONNULL, NULL):
        if preferred in levels:
            return preferred
    return NONE


@dataclass(frozen=True)
class CoveredCorrespondence:
    """A correspondence with one selected coverage-mapping pair and its degree."""

    correspondence: Correspondence
    source: CoverageMapping
    target: CoverageMapping

    @property
    def degree(self) -> tuple[str, str]:
        return (self.source.level, self.target.level)


def is_covered_degree(degree: tuple[str, str]) -> bool:
    """Covered: both levels carry a value (mand or nonnull)."""
    return degree[0] in _VALUE_LEVELS and degree[1] in _VALUE_LEVELS


def is_poison_degree(degree: tuple[str, str]) -> bool:
    """Poison: the degrees that force pruning of the whole candidate."""
    return degree in _POISON_DEGREES


@dataclass
class SkeletonCoverage:
    """Per-skeleton coverage analysis of one correspondence."""

    correspondence: Correspondence
    covered_pairs: list[CoveredCorrespondence]
    has_poison: bool


def analyse_correspondence(
    correspondence: Correspondence,
    source_tableau: PartialTableau,
    target_tableau: PartialTableau,
) -> SkeletonCoverage:
    """Classify every coverage-mapping pair of one correspondence in a skeleton."""
    source_cms = coverage_mappings(correspondence.source, source_tableau)
    target_cms = coverage_mappings(correspondence.target, target_tableau)
    covered: list[CoveredCorrespondence] = []
    poison = False
    for source_cm in source_cms:
        for target_cm in target_cms:
            degree = (source_cm.level, target_cm.level)
            if is_covered_degree(degree):
                covered.append(CoveredCorrespondence(correspondence, source_cm, target_cm))
            elif is_poison_degree(degree):
                poison = True
    # A correspondence with at least one covered realization is not poisonous:
    # the covered pair is selected and the skeleton survives.
    if covered:
        poison = False
        count("coverage.covered_pairs", len(covered))
    elif poison:
        count("coverage.poison_degrees")
    return SkeletonCoverage(correspondence, covered, poison)
