"""Skeletons and candidate logical mappings (Algorithm 1 / 3, step 2).

A *skeleton* pairs a source logical relation with a target logical relation.
For each skeleton we analyse every correspondence (see
:mod:`repro.core.coverage`); a skeleton with at least one covered
correspondence yields candidate logical mappings — one per selection of a
coverage-mapping pair for each coverable correspondence (the paper's
"coverage" of a skeleton).

Nullable-related pruning (section 5.2) is applied here, during generation:

1. a skeleton exhibiting a *poison* coverage degree — ``(mand, null)``,
   ``(nonnull, null)`` or ``(null, nonnull)`` — is discarded entirely;
2. a candidate whose target tableau has a nullable, non-null attribute
   occurrence with no outgoing foreign key that is not bound by any covered
   correspondence is discarded (a sibling tableau assigning null is
   preferable).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from ..logic.tableau import PartialTableau
from ..logic.terms import Constant, Term, Variable
from ..obs import count, span
from .correspondences import Correspondence, Filter
from .coverage import CoveredCorrespondence, analyse_correspondence


@dataclass
class CandidateMapping:
    """A candidate logical mapping ``(T1, T2, V)`` with a selected coverage."""

    name: str
    source_tableau: PartialTableau
    target_tableau: PartialTableau
    selection: tuple[CoveredCorrespondence, ...]

    def covered_set(self) -> frozenset[Correspondence]:
        return frozenset(c.correspondence for c in self.selection)

    def selection_by_correspondence(self) -> dict[Correspondence, CoveredCorrespondence]:
        return {c.correspondence: c for c in self.selection}

    def source_term(self, covered: CoveredCorrespondence) -> Term:
        return covered.source.referenced_term(self.source_tableau)

    def target_variable(self, covered: CoveredCorrespondence) -> Variable:
        term = covered.target.referenced_term(self.target_tableau)
        assert isinstance(term, Variable)
        return term

    def binding(self) -> tuple[dict[Variable, Term], list[tuple[Term, Term]]]:
        """The substitution realizing the covered correspondences.

        Maps each covered target variable to its source term.  If two covered
        correspondences bind the same target variable to different source
        terms, the extra pairs are returned as source-side equalities.
        """
        theta: dict[Variable, Term] = {}
        extra: list[tuple[Term, Term]] = []
        for covered in self.selection:
            target_var = self.target_variable(covered)
            source_term = self.source_term(covered)
            if target_var in theta:
                if theta[target_var] is not source_term:
                    extra.append((theta[target_var], source_term))
            else:
                theta[target_var] = source_term
        return theta, extra

    def filter_conditions(self) -> list[tuple[Term, str, Constant]]:
        """Clio-style filter conditions realized on this candidate's premise.

        For every covered correspondence carrying filters, the filter's
        attribute is located on the selected source coverage path and its
        term compared against the constant: ``(term, operator, constant)``.
        """
        conditions: list[tuple[Term, str, Constant]] = []
        for covered in self.selection:
            for item in covered.correspondence.filters:
                term = self._filter_term(covered, item)
                conditions.append((term, item.operator, Constant(item.value)))
        return conditions

    def _filter_term(self, covered: CoveredCorrespondence, item: Filter) -> Term:
        tableau = self.source_tableau
        for step_index, (relation, _attr) in enumerate(
            covered.correspondence.source.steps
        ):
            if relation == item.relation:
                atom_index = covered.source.atom_indices[step_index]
                return tableau.term_at(atom_index, item.attribute)
        raise AssertionError(  # pragma: no cover - validated upstream
            f"filter relation {item.relation!r} not on the covered path"
        )

    def __repr__(self) -> str:
        covered = ", ".join(
            c.correspondence.label or repr(c.correspondence) for c in self.selection
        )
        return f"{self.name}: {self.source_tableau!r} / {self.target_tableau!r} / {covered}"


@dataclass
class PruneRecord:
    """Why a skeleton or candidate was discarded (for reports and tests)."""

    name: str
    description: str
    reason: str
    rule: str  # "poison", "unbound-nonnull", "subsumption", "implication", "nonnull-extension"
    by: str | None = None  # the name of the candidate that caused the pruning


@dataclass
class CandidateGeneration:
    """The result of candidate generation: survivors plus the prune log."""

    candidates: list[CandidateMapping] = field(default_factory=list)
    pruned: list[PruneRecord] = field(default_factory=list)
    skeleton_count: int = 0


def _unbound_nonnull_violation(candidate: CandidateMapping) -> str | None:
    """Nullable-related pruning, second rule.

    Returns the offending ``relation.attribute`` or ``None``.  An attribute
    occurrence is offending when it is nullable with a non-null condition, has
    no outgoing foreign key, and its term is not bound by any covered
    correspondence.
    """
    tableau = candidate.target_tableau
    schema = tableau.schema
    bound = {candidate.target_variable(c) for c in candidate.selection}
    for atom_index, atom in enumerate(tableau.atoms):
        relation = schema.relation(atom.relation)
        for attribute in relation.attribute_names:
            if not relation.is_nullable(attribute):
                continue
            term = tableau.term_at(atom_index, attribute)
            if term not in tableau.nonnull_vars:
                continue
            if schema.has_foreign_key_from(atom.relation, attribute):
                continue
            if term in bound:
                continue
            return f"{atom.relation}.{attribute}"
    return None


def generate_candidates(
    source_tableaux: list[PartialTableau],
    target_tableaux: list[PartialTableau],
    correspondences: list[Correspondence],
    apply_nullable_pruning: bool = True,
) -> CandidateGeneration:
    """Enumerate skeletons and build candidate logical mappings.

    With ``apply_nullable_pruning`` False (the basic Algorithm 1), poison
    degrees cannot arise (standard-chase tableaux have no null conditions) and
    the unbound-non-null rule is skipped.
    """
    with span(
        "mapping.candidates",
        source_tableaux=len(source_tableaux),
        target_tableaux=len(target_tableaux),
    ) as trace:
        result = _generate_candidates(
            source_tableaux, target_tableaux, correspondences, apply_nullable_pruning
        )
        count("candidates.skeletons", result.skeleton_count)
        trace.set(skeletons=result.skeleton_count, candidates=len(result.candidates))
        return result


def _generate_candidates(
    source_tableaux: list[PartialTableau],
    target_tableaux: list[PartialTableau],
    correspondences: list[Correspondence],
    apply_nullable_pruning: bool,
) -> CandidateGeneration:
    result = CandidateGeneration()
    for source_tableau in source_tableaux:
        for target_tableau in target_tableaux:
            result.skeleton_count += 1
            skeleton_name = f"S{result.skeleton_count}"
            analyses = [
                analyse_correspondence(c, source_tableau, target_tableau)
                for c in correspondences
            ]
            if apply_nullable_pruning:
                poisoned = [a for a in analyses if a.has_poison]
                if poisoned:
                    count("prune.poison")
                    result.pruned.append(
                        PruneRecord(
                            skeleton_name,
                            f"{source_tableau!r} / {target_tableau!r}",
                            "poison coverage degree for "
                            + ", ".join(repr(a.correspondence) for a in poisoned),
                            rule="poison",
                        )
                    )
                    continue
            coverable = [a for a in analyses if a.covered_pairs]
            if not coverable:
                continue  # a skeleton covering nothing is simply not a candidate
            for selection_index, combo in enumerate(
                itertools.product(*(a.covered_pairs for a in coverable))
            ):
                # A skeleton with several coverage selections yields several
                # candidates, distinguished by a selection suffix.
                name = f"S{result.skeleton_count}"
                if selection_index:
                    name = f"{name}.{selection_index}"
                candidate = CandidateMapping(
                    name=name,
                    source_tableau=source_tableau,
                    target_tableau=target_tableau,
                    selection=tuple(combo),
                )
                count("candidates.generated")
                if apply_nullable_pruning:
                    offending = _unbound_nonnull_violation(candidate)
                    if offending is not None:
                        count("prune.unbound-nonnull")
                        result.pruned.append(
                            PruneRecord(
                                candidate.name,
                                repr(candidate),
                                f"nullable non-null attribute {offending} has no "
                                "foreign key and is not bound by any correspondence",
                                rule="unbound-nonnull",
                            )
                        )
                        continue
                result.candidates.append(candidate)
    return result
