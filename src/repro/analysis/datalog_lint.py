"""Static checks on generated Datalog programs (the ``DLG*`` codes, §6).

The paper's query-generation algorithms emit safe, non-recursive programs by
construction; this linter re-establishes those guarantees on any
:class:`~repro.datalog.program.DatalogProgram` — including hand-built or
deserialized ones — and adds two checks the runtime never performs:

* ``DLG004`` — every Skolem functor must be applied at one arity only, or
  invented values would collide unpredictably across rules;
* ``DLG010`` — nulls that can reach a non-nullable target attribute,
  decided by the nullability fixpoint of :mod:`repro.analysis.flow` (which
  tracks nulls from nullable source attributes through rule variables and
  intermediate ``tmp`` relations to the target columns).
"""

from __future__ import annotations

from typing import Iterable

from ..datalog.program import DatalogProgram, Rule, unsafe_rule_variables
from ..datalog.stratify import find_recursion_cycle
from ..logic.terms import SkolemTerm, Term
from .diagnostics import Diagnostic, ERROR, WARNING, diagnostic


def safety_diagnostics(rule: Rule) -> list[Diagnostic]:
    """``DLG001`` for every unbound head / negated / condition variable."""
    return [
        diagnostic(
            "DLG001",
            f"unsafe rule: {kind} variable {var!r} is not bound by a "
            f"positive body atom in {rule!r}",
            subject=rule.head_relation,
        )
        for kind, var in unsafe_rule_variables(rule)
    ]


def recursion_diagnostic(program: DatalogProgram) -> Diagnostic | None:
    """``DLG002`` with the relation cycle and the rule that closes it."""
    found = find_recursion_cycle(program)
    if found is None:
        return None
    cycle, closing_rule = found
    pretty = " -> ".join(cycle)
    closed_by = f" (closed by rule {closing_rule!r})" if closing_rule else ""
    return diagnostic(
        "DLG002",
        f"recursive Datalog program: {pretty}{closed_by}",
        subject=cycle[0] if cycle else "",
    )


def dead_relation_diagnostics(program: DatalogProgram) -> list[Diagnostic]:
    """``DLG003`` for intermediate relations no rule ever reads."""
    read = {
        atom.relation
        for rule in program.rules
        for atom in list(rule.body) + list(rule.negated)
    }
    return [
        diagnostic(
            "DLG003",
            f"intermediate relation {name!r} is defined but never read by "
            "any rule",
            subject=name,
        )
        for name in program.intermediates
        if name not in read
    ]


def _skolem_arities(terms: Iterable[Term], arities: dict[str, set[int]]) -> None:
    for term in terms:
        if isinstance(term, SkolemTerm):
            arities.setdefault(term.functor, set()).add(len(term.args))
            _skolem_arities(term.args, arities)


def functor_arity_diagnostics(program: DatalogProgram) -> list[Diagnostic]:
    """``DLG004`` for Skolem functors applied at more than one arity."""
    arities: dict[str, set[int]] = {}
    for rule in program.rules:
        _skolem_arities(rule.head.terms, arities)
        for atom in rule.body:
            _skolem_arities(atom.terms, arities)
    return [
        diagnostic(
            "DLG004",
            f"Skolem functor {functor!r} is used with inconsistent arities "
            f"{sorted(seen)}; invented values would collide unpredictably",
            subject=functor,
        )
        for functor, seen in sorted(arities.items())
        if len(seen) > 1
    ]


def null_flow_diagnostics(program: DatalogProgram) -> list[Diagnostic]:
    """``DLG010``: nulls reaching non-nullable target attributes.

    A client of the flow engine's nullability analysis: the fixpoint solves
    the per-position can-be-null facts (tracking nulls through intermediate
    ``tmp`` relations), and each target rule's head terms are re-evaluated
    under the solved environment so the finding names the offending rule.
    """
    target = program.target_schema
    if target is None:
        return []
    if find_recursion_cycle(program) is not None:
        return []  # recursive program: reported as DLG002, dataflow undefined

    from ..datalog.stratify import stratify
    from .flow import NO, YES, NullabilityAnalysis, rule_term_status, solve
    from .flow.lattice import BOTTOM

    solved = solve(program, NullabilityAnalysis(program))
    found: list[Diagnostic] = []
    for relation in stratify(program):
        if relation in program.intermediates or relation not in target:
            continue
        attributes = target.relation(relation).attributes
        for rule in program.rules_for(relation):
            for index, term in enumerate(rule.head.terms):
                if index >= len(attributes) or attributes[index].nullable:
                    continue
                status = rule_term_status(term, rule, solved.env)
                if status in (NO, BOTTOM):
                    continue  # never null, or the rule cannot fire at all
                attribute = attributes[index]
                certainty = (
                    "always null" if status == YES else "may be null"
                )
                found.append(
                    diagnostic(
                        "DLG010",
                        f"value flowing into mandatory attribute "
                        f"{relation}.{attribute.name} {certainty} in rule "
                        f"{rule!r}",
                        subject=f"{relation}.{attribute.name}",
                        severity=ERROR if status == YES else WARNING,
                    )
                )
    return found


def lint_program(program: DatalogProgram) -> list[Diagnostic]:
    """All ``DLG*`` diagnostics of one Datalog program."""
    found: list[Diagnostic] = []
    for rule in program.rules:
        found.extend(safety_diagnostics(rule))
    recursion = recursion_diagnostic(program)
    if recursion is not None:
        found.append(recursion)
    found.extend(dead_relation_diagnostics(program))
    found.extend(functor_arity_diagnostics(program))
    found.extend(null_flow_diagnostics(program))
    return found
