"""Static checks on generated Datalog programs (the ``DLG*`` codes, §6).

The paper's query-generation algorithms emit safe, non-recursive programs by
construction; this linter re-establishes those guarantees on any
:class:`~repro.datalog.program.DatalogProgram` — including hand-built or
deserialized ones — and adds two checks the runtime never performs:

* ``DLG004`` — every Skolem functor must be applied at one arity only, or
  invented values would collide unpredictably across rules;
* ``DLG010`` — a dataflow walk from nullable source attributes through rule
  variables (and through intermediate ``tmp`` relations, whose per-position
  nullability is inferred from their defining rules) to target columns,
  flagging nulls that can reach a non-nullable target attribute.
"""

from __future__ import annotations

from typing import Iterable

from ..datalog.program import DatalogProgram, Rule, unsafe_rule_variables
from ..datalog.stratify import find_recursion_cycle
from ..logic.terms import Constant, NullTerm, SkolemTerm, Term, Variable
from ..model.schema import Schema
from .diagnostics import Diagnostic, ERROR, WARNING, diagnostic

# Dataflow lattice for "can this term be null?".
_NO = "no"
_MAYBE = "maybe"
_NULL = "null"


def safety_diagnostics(rule: Rule) -> list[Diagnostic]:
    """``DLG001`` for every unbound head / negated / condition variable."""
    return [
        diagnostic(
            "DLG001",
            f"unsafe rule: {kind} variable {var!r} is not bound by a "
            f"positive body atom in {rule!r}",
            subject=rule.head_relation,
        )
        for kind, var in unsafe_rule_variables(rule)
    ]


def recursion_diagnostic(program: DatalogProgram) -> Diagnostic | None:
    """``DLG002`` with the relation cycle and the rule that closes it."""
    found = find_recursion_cycle(program)
    if found is None:
        return None
    cycle, closing_rule = found
    pretty = " -> ".join(cycle)
    closed_by = f" (closed by rule {closing_rule!r})" if closing_rule else ""
    return diagnostic(
        "DLG002",
        f"recursive Datalog program: {pretty}{closed_by}",
        subject=cycle[0] if cycle else "",
    )


def dead_relation_diagnostics(program: DatalogProgram) -> list[Diagnostic]:
    """``DLG003`` for intermediate relations no rule ever reads."""
    read = {
        atom.relation
        for rule in program.rules
        for atom in list(rule.body) + list(rule.negated)
    }
    return [
        diagnostic(
            "DLG003",
            f"intermediate relation {name!r} is defined but never read by "
            "any rule",
            subject=name,
        )
        for name in program.intermediates
        if name not in read
    ]


def _skolem_arities(terms: Iterable[Term], arities: dict[str, set[int]]) -> None:
    for term in terms:
        if isinstance(term, SkolemTerm):
            arities.setdefault(term.functor, set()).add(len(term.args))
            _skolem_arities(term.args, arities)


def functor_arity_diagnostics(program: DatalogProgram) -> list[Diagnostic]:
    """``DLG004`` for Skolem functors applied at more than one arity."""
    arities: dict[str, set[int]] = {}
    for rule in program.rules:
        _skolem_arities(rule.head.terms, arities)
        for atom in rule.body:
            _skolem_arities(atom.terms, arities)
    return [
        diagnostic(
            "DLG004",
            f"Skolem functor {functor!r} is used with inconsistent arities "
            f"{sorted(seen)}; invented values would collide unpredictably",
            subject=functor,
        )
        for functor, seen in sorted(arities.items())
        if len(seen) > 1
    ]


def _nullable_positions(schema: Schema | None) -> dict[str, list[bool]]:
    if schema is None:
        return {}
    return {
        relation.name: [a.nullable for a in relation.attributes]
        for relation in schema
    }


def _term_null_status(
    term: Term, rule: Rule, nullability: dict[str, list[bool]]
) -> str:
    """Whether ``term`` can be null under the rule's bindings and conditions."""
    if isinstance(term, NullTerm):
        return _NULL
    if isinstance(term, (Constant, SkolemTerm)):
        return _NO  # constants and invented values are never null
    if not isinstance(term, Variable):  # pragma: no cover - defensive
        return _MAYBE
    if term in rule.nonnull_vars:
        return _NO
    if term in rule.null_vars:
        return _NULL
    for equality in rule.equalities:
        if (equality.left is term and isinstance(equality.right, Constant)) or (
            equality.right is term and isinstance(equality.left, Constant)
        ):
            return _NO
    for atom in rule.body:
        positions = nullability.get(atom.relation)
        for index, body_term in enumerate(atom.terms):
            if body_term is not term:
                continue
            if positions is not None and index < len(positions):
                if not positions[index]:
                    return _NO  # bound at a mandatory position: never null
    # Bound only at nullable (or unknown) positions — or unbound, which
    # DLG001 reports separately.  Either way the value may be null.
    return _MAYBE


def null_flow_diagnostics(program: DatalogProgram) -> list[Diagnostic]:
    """``DLG010``: nulls reaching non-nullable target attributes.

    Per-position nullability of intermediate relations is inferred from
    their defining rules in evaluation order, so a null entering a ``tmp``
    relation is tracked through to the target rules that read it.
    """
    target = program.target_schema
    if target is None:
        return []
    nullability = _nullable_positions(program.source_schema)
    nullability.update(_nullable_positions(target))

    if find_recursion_cycle(program) is not None:
        return []  # recursive program: reported as DLG002, dataflow undefined

    from ..datalog.stratify import stratify

    found: list[Diagnostic] = []
    for relation in stratify(program):
        rules = program.rules_for(relation)
        if relation in program.intermediates:
            # Infer the tmp relation's nullability from its defining rules.
            arity = program.intermediates[relation]
            inferred = [False] * arity
            for rule in rules:
                for index, term in enumerate(rule.head.terms[:arity]):
                    if _term_null_status(term, rule, nullability) != _NO:
                        inferred[index] = True
            nullability[relation] = inferred
            continue
        if relation not in target:
            continue
        attributes = target.relation(relation).attributes
        for rule in rules:
            for index, term in enumerate(rule.head.terms):
                if index >= len(attributes) or attributes[index].nullable:
                    continue
                status = _term_null_status(term, rule, nullability)
                if status == _NO:
                    continue
                attribute = attributes[index]
                certainty = (
                    "always null" if status == _NULL else "may be null"
                )
                found.append(
                    diagnostic(
                        "DLG010",
                        f"value flowing into mandatory attribute "
                        f"{relation}.{attribute.name} {certainty} in rule "
                        f"{rule!r}",
                        subject=f"{relation}.{attribute.name}",
                        severity=ERROR if status == _NULL else WARNING,
                    )
                )
    return found


def lint_program(program: DatalogProgram) -> list[Diagnostic]:
    """All ``DLG*`` diagnostics of one Datalog program."""
    found: list[Diagnostic] = []
    for rule in program.rules:
        found.extend(safety_diagnostics(rule))
    recursion = recursion_diagnostic(program)
    if recursion is not None:
        found.append(recursion)
    found.extend(dead_relation_diagnostics(program))
    found.extend(functor_arity_diagnostics(program))
    found.extend(null_flow_diagnostics(program))
    return found
