"""The diagnostics framework: codes, severities, source spans, reports.

Every well-formedness condition the paper states — weak acyclicity of the
foreign keys (§3.1), coverage of correspondences (§5.2–5.3), functionality
and key-conflict freedom of the unitary mappings (§6), safety and
non-recursion of the emitted Datalog (§6) — is checked somewhere in this
code base.  This module gives those checks a shared vocabulary: a
:class:`Diagnostic` carries a stable code (``SCH010``, ``MAP002``, ...), a
severity, a human message, a paper-section pointer and, when the subject
came from the text DSL, a :class:`SourceSpan`.  An :class:`AnalysisReport`
aggregates diagnostics and renders them for the CLI, and
:func:`repro.analysis.sarif.to_sarif` serializes a report as SARIF 2.1.0.

The full code reference lives in ``docs/ANALYSIS.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable, Iterator

ERROR = "error"
WARNING = "warning"
INFO = "info"

#: Severities from most to least severe (SARIF levels use the same names).
SEVERITIES = (ERROR, WARNING, INFO)
_SEVERITY_RANK = {name: rank for rank, name in enumerate(SEVERITIES)}


def severity_at_least(severity: str, threshold: str) -> bool:
    """True iff ``severity`` is at least as severe as ``threshold``."""
    return _SEVERITY_RANK[severity] <= _SEVERITY_RANK[threshold]


@dataclass(frozen=True)
class SourceSpan:
    """A location in a DSL source file (1-based line and column)."""

    line: int
    column: int | None = None
    end_line: int | None = None
    end_column: int | None = None
    file: str | None = None

    def __str__(self) -> str:
        where = self.file or "<input>"
        text = f"{where}:{self.line}"
        if self.column is not None:
            text += f":{self.column}"
        return text


@dataclass(frozen=True)
class CodeInfo:
    """The registry entry for one stable diagnostic code."""

    code: str
    title: str
    severity: str
    section: str  # the paper section the condition comes from
    help: str = ""


#: The stable diagnostic codes of the static analyzer.  ``SCH*`` are schema
#: conditions (§3), ``MAP*`` mapping-level conditions (§5.3 and §6), ``DLG*``
#: conditions on generated Datalog programs (§6), ``INS*`` instance-level
#: constraint violations (§3.1) and ``PRS*`` DSL parse problems.
CODES: dict[str, CodeInfo] = {
    info.code: info
    for info in (
        CodeInfo("SCH001", "dangling foreign key", ERROR, "§3.1",
                 "A foreign key names an unknown relation or attribute."),
        CodeInfo("SCH002", "foreign key / key arity mismatch", ERROR, "§3.1",
                 "A foreign key references a relation whose key is composite; "
                 "the paper restricts foreign keys to reference simple keys."),
        CodeInfo("SCH003", "duplicate foreign key", ERROR, "§3.1",
                 "Two foreign keys are declared on the same attribute."),
        CodeInfo("SCH010", "weak-acyclicity violation", ERROR, "§3.1",
                 "The foreign keys do not form a weakly acyclic set: a cycle "
                 "of the dependency graph goes through a special edge, so the "
                 "modified chase is not guaranteed to terminate."),
        CodeInfo("MAP001", "uncovered mandatory target attribute", WARNING, "§5.3",
                 "No correspondence reaches a non-nullable target attribute; "
                 "every generated mapping must invent (Skolemize) its value."),
        CodeInfo("MAP002", "unresolved hard key conflict", ERROR, "§6",
                 "Two unitary mappings copy distinct source values into the "
                 "same target key (Algorithm 4, step 3: signal an error)."),
        CodeInfo("MAP003", "non-functional unitary mapping", ERROR, "§6",
                 "A unitary mapping can, on its own, produce two tuples with "
                 "the same key but different values (Algorithm 4, step 2)."),
        CodeInfo("MAP004", "invalid correspondence", ERROR, "§4",
                 "A correspondence endpoint names an unknown relation or "
                 "attribute, or traverses a non-foreign-key step."),
        CodeInfo("MAP005", "schema-mapping generation failed", ERROR, "§5",
                 "Algorithm 1/3 could not produce a schema mapping."),
        CodeInfo("DLG001", "unsafe rule", ERROR, "§6",
                 "A head, negated or condition variable is not bound by a "
                 "positive body atom."),
        CodeInfo("DLG002", "recursion cycle", ERROR, "§6",
                 "The program is recursive; query generation must emit "
                 "non-recursive Datalog."),
        CodeInfo("DLG003", "dead intermediate relation", WARNING, "§6",
                 "A tmp relation is defined but never read by any rule."),
        CodeInfo("DLG004", "inconsistent Skolem functor arity", ERROR, "§6",
                 "The same Skolem functor is applied to argument lists of "
                 "different lengths; invented values would collide "
                 "unpredictably."),
        CodeInfo("DLG010", "null flowing into non-nullable target attribute",
                 ERROR, "§6",
                 "A (possibly) null value reaches a mandatory target column; "
                 "the transformation can emit constraint-violating tuples."),
        CodeInfo("INS001", "null in mandatory attribute", ERROR, "§3.1",
                 "An instance tuple holds null in a non-nullable attribute."),
        CodeInfo("INS002", "key violation", ERROR, "§3.1",
                 "Two instance tuples share the same primary-key value."),
        CodeInfo("INS003", "foreign-key violation", ERROR, "§3.1",
                 "A non-null foreign-key value has no matching referenced "
                 "key."),
        CodeInfo("PRS001", "parse error", ERROR, "§4",
                 "The DSL input could not be parsed."),
        CodeInfo("SEM001", "semantically subsumed rule", WARNING, "§6",
                 "A generated Datalog rule is provably contained in another "
                 "rule for the same relation (chase witness attached); "
                 "removing it cannot change the program's output."),
        CodeInfo("SEM002", "semantically subsumed unitary mapping", WARNING,
                 "§5",
                 "A unitary mapping's query is provably contained in another "
                 "mapping's query — the semantic generalization of the "
                 "paper's subsumption / implication pruning."),
        CodeInfo("SEM003", "optimizer changed program semantics", ERROR, "§6",
                 "A rule dropped by query optimization has no containment "
                 "certificate, or the optimized program disagrees with the "
                 "unoptimized one on a canonical instance."),
        CodeInfo("FLW001", "dead correspondence: only null can reach the target",
                 WARNING, "§5.3",
                 "The provenance fixpoint proves that only the unlabeled "
                 "null value can reach a correspondence-targeted position; "
                 "the correspondence never delivers a source value."),
        CodeInfo("FLW002", "mandatory attribute fed only by invented values",
                 WARNING, "§5.3",
                 "Every value the generated rules place in a non-nullable, "
                 "non-key target attribute is a Skolem (labeled-null) value; "
                 "no source value ever reaches the column.  Inventing keys "
                 "is §5.1's intended mechanism, so key attributes are "
                 "exempt."),
        CodeInfo("FLW003", "functionality not statically confirmed", WARNING,
                 "§6",
                 "The static FD closure could not prove that a target rule's "
                 "non-key attributes are functionally determined by its key "
                 "(Algorithm 4, step 2).  The dynamic check in "
                 "repro.core.functionality decides exactly; this warning "
                 "marks rules whose functionality rests on it."),
        CodeInfo("SEM004", "resolution certificate failure", ERROR, "§6",
                 "Key-conflict resolution produced a program that violates a "
                 "target key on a canonical instance, or rewrote a mapping "
                 "beyond negation-disabling and functor renaming."),
        CodeInfo("CER001", "target key not certified", ERROR, "§3.1",
                 "The static certifier could not prove that the generated "
                 "program preserves a target primary key: either a concrete "
                 "counterexample source instance exists (REFUTED, error) or "
                 "the egd-style reasoning was inconclusive (UNKNOWN, "
                 "warning)."),
        CodeInfo("CER002", "target foreign key not certified", ERROR, "§3.1",
                 "The FK-projection query is not provably contained in the "
                 "referenced-key query: the program may emit dangling "
                 "references (REFUTED with counterexample, or UNKNOWN)."),
        CodeInfo("CER003", "target NOT NULL not certified", ERROR, "§3.1",
                 "The nullability fixpoint cannot exclude null reaching a "
                 "mandatory target attribute (REFUTED with counterexample, "
                 "or UNKNOWN)."),
        CodeInfo("TRM001", "program chase not provably terminating", ERROR,
                 "§3.1",
                 "The generated program's Skolem-position dependency graph "
                 "has a cycle through a special edge, so no chase-depth "
                 "bound exists and the constraint certifier cannot run its "
                 "other passes."),
        CodeInfo("PLN001", "cross-product join in compiled plan", WARNING,
                 "§6",
                 "A join step of a compiled rule pipeline has no bound probe "
                 "positions: it pairs every accumulated row with every row "
                 "of the joined relation.  The cardinality bound picks up a "
                 "full size factor; a correspondence path (foreign-key walk) "
                 "connecting the atoms would avoid it."),
        CodeInfo("PLN002", "super-linear rule cardinality bound", WARNING,
                 "§6",
                 "The symbolic row bound of a generated rule has total "
                 "degree two or more in the source relation sizes, so its "
                 "output can grow super-linearly.  Rules emitted from the "
                 "paper's key-preserving correspondences are linear; a "
                 "quadratic bound signals a join the key facts cannot "
                 "tame."),
        CodeInfo("PLN003", "unbounded Skolem fan-out", ERROR, "§3.1",
                 "No chase-depth bound exists for the program (TRM001), so "
                 "no finite cardinality bound exists for any derived "
                 "relation: invented values can feed back into rule bodies "
                 "indefinitely."),
        CodeInfo("PLN004", "join order dominated by cost-advised order",
                 INFO, "§6",
                 "The statistics-free greedy join order of a rule is "
                 "strictly more expensive, under the symbolic cost model, "
                 "than the order the cost advisor found; the planner uses "
                 "the advised order on the static path."),
        CodeInfo("SQL001", "SQL round-trip not proved", ERROR, "§6",
                 "An emitted SQL statement, lowered back into a conjunctive "
                 "query, could not be proved equivalent to the Datalog rule "
                 "it was compiled from: the translation validator has no "
                 "certificate that the SQL means what the rule means."),
        CodeInfo("SQL002", "dialect-unsafe SQL construct", ERROR, "§6",
                 "A statement uses a construct whose meaning is not portable "
                 "across the supported dialects — e.g. a raw IS comparison "
                 "between computed expressions, which is null-safe equality "
                 "on SQLite but a syntax error elsewhere.  Use the "
                 "dialect-parameterized AST nodes (NullSafeEq/NullSafeNe) "
                 "instead."),
        CodeInfo("SQL003", "ambiguous Skolem string encoding", ERROR, "§6",
                 "An expression encodes an invented value without "
                 "length-prefixed arguments, so distinct labeled nulls can "
                 "collide (f('x,y') vs f('x','y')) and the target instance "
                 "silently identifies values the chase keeps apart."),
        CodeInfo("SQL004", "INSERT without duplicate elimination", WARNING,
                 "§6",
                 "An INSERT statement has neither SELECT DISTINCT nor an "
                 "EXCEPT guard against rows already present; the SQL "
                 "pipeline can produce bag semantics where the Datalog "
                 "engine produces sets."),
        CodeInfo("SQL005", "nondeterministic statement ordering", ERROR, "§6",
                 "A pipeline statement reads a relation that a later "
                 "statement writes: the pipeline's result depends on "
                 "statement order beyond stratification, so it is not a "
                 "faithful compilation of the stratified program."),
    )
}


@dataclass(frozen=True)
class Diagnostic:
    """One finding of the static analyzer."""

    code: str
    message: str
    severity: str
    span: SourceSpan | None = None
    subject: str = ""  # e.g. "O3.person", "rule C2(...) <- ...", "figure-1"
    section: str = ""
    #: For SEM* findings: the rendered containment witness (homomorphism).
    witness: str = ""

    @property
    def title(self) -> str:
        info = CODES.get(self.code)
        return info.title if info else self.code

    def with_span(self, span: SourceSpan | None) -> "Diagnostic":
        return replace(self, span=span) if span is not None else self

    def render(self) -> str:
        """One text line: ``file:line: CODE severity: message [§n]``."""
        prefix = f"{self.span}: " if self.span else ""
        section = f" [{self.section}]" if self.section else ""
        witness = f" witness {self.witness}" if self.witness else ""
        return (
            f"{prefix}{self.code} {self.severity}: {self.message}{witness}{section}"
        )

    def __str__(self) -> str:
        return self.render()


def diagnostic(
    code: str,
    message: str,
    *,
    span: SourceSpan | None = None,
    subject: str = "",
    severity: str | None = None,
    witness: str = "",
) -> Diagnostic:
    """Build a :class:`Diagnostic`, defaulting severity/section from ``CODES``.

    Per-code counters are recorded through the active :mod:`repro.obs`
    tracer (``lint.<code>``), so lint activity shows up in run reports.
    """
    from ..obs import count

    info = CODES.get(code)
    if info is None:
        raise KeyError(f"unknown diagnostic code {code!r}")
    count(f"lint.{code}")
    return Diagnostic(
        code=code,
        message=message,
        severity=severity or info.severity,
        span=span,
        subject=subject,
        section=info.section,
        witness=witness,
    )


@dataclass
class AnalysisReport:
    """The outcome of one analysis run: an ordered list of diagnostics."""

    diagnostics: list[Diagnostic] = field(default_factory=list)
    subject: str = ""  # what was analyzed (file path, scenario name, ...)

    def add(self, item: Diagnostic) -> None:
        self.diagnostics.append(item)

    def extend(self, items: Iterable[Diagnostic]) -> None:
        self.diagnostics.extend(items)

    def merged(self, *others: "AnalysisReport") -> "AnalysisReport":
        combined = AnalysisReport(list(self.diagnostics), subject=self.subject)
        for other in others:
            combined.diagnostics.extend(other.diagnostics)
        return combined

    # -- queries ---------------------------------------------------------

    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == ERROR]

    @property
    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == WARNING]

    @property
    def ok(self) -> bool:
        """True iff the report has no errors (warnings/infos allowed)."""
        return not self.errors

    def at_least(self, threshold: str) -> list[Diagnostic]:
        """Diagnostics at or above ``threshold`` severity."""
        return [
            d for d in self.diagnostics if severity_at_least(d.severity, threshold)
        ]

    def by_code(self) -> dict[str, int]:
        """Per-code diagnostic counts, sorted by code."""
        counts: dict[str, int] = {}
        for item in self.diagnostics:
            counts[item.code] = counts.get(item.code, 0) + 1
        return dict(sorted(counts.items()))

    def codes(self) -> list[str]:
        """The distinct codes present, sorted."""
        return sorted({d.code for d in self.diagnostics})

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    # -- rendering -------------------------------------------------------

    def summary(self) -> str:
        if not self.diagnostics:
            return "clean: no diagnostics"
        parts = [
            f"{len(self.errors)} error(s)",
            f"{len(self.warnings)} warning(s)",
        ]
        infos = len(self.diagnostics) - len(self.errors) - len(self.warnings)
        if infos:
            parts.append(f"{infos} info(s)")
        return ", ".join(parts)

    def render(self) -> str:
        """The full text report, one line per diagnostic plus a summary."""
        lines = [d.render() for d in self.diagnostics]
        lines.append(self.summary())
        return "\n".join(lines)
