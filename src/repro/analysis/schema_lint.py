"""Schema well-formedness checks (the ``SCH*`` codes, paper §3.1).

The structural conditions — foreign keys must name existing relations and
attributes (``SCH001``), reference simple keys only (``SCH002``), be declared
at most once per attribute (``SCH003``) — are checked both here and at
:class:`repro.model.schema.Schema` construction time; the constructor routes
through :func:`foreign_key_diagnostics` so its raises carry the structured
diagnostic.  The global condition — weak acyclicity (``SCH010``) — reuses
:func:`repro.model.graph.find_special_cycle` and prints the special cycle.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping

from ..model.graph import find_special_cycle
from .diagnostics import Diagnostic, diagnostic

if TYPE_CHECKING:  # pragma: no cover
    from ..model.schema import ForeignKey, RelationSchema, Schema


def foreign_key_diagnostics(
    relations: Mapping[str, "RelationSchema"], fk: "ForeignKey"
) -> list[Diagnostic]:
    """Structural diagnostics for one foreign key (``SCH001`` / ``SCH002``)."""
    span = getattr(fk, "span", None)
    subject = f"{fk.relation}.{fk.attribute}"
    found: list[Diagnostic] = []
    if fk.relation not in relations:
        found.append(
            diagnostic(
                "SCH001",
                f"foreign key {fk} is declared on unknown relation "
                f"{fk.relation!r}",
                span=span,
                subject=subject,
            )
        )
    elif not relations[fk.relation].has_attribute(fk.attribute):
        found.append(
            diagnostic(
                "SCH001",
                f"foreign key {fk}: relation {fk.relation} has no attribute "
                f"{fk.attribute!r}",
                span=span,
                subject=subject,
            )
        )
    if fk.referenced not in relations:
        found.append(
            diagnostic(
                "SCH001",
                f"foreign key {fk} references unknown relation "
                f"{fk.referenced!r}",
                span=span,
                subject=subject,
            )
        )
    elif not relations[fk.referenced].has_simple_key:
        found.append(
            diagnostic(
                "SCH002",
                f"foreign key {fk}: referenced relation {fk.referenced} has "
                f"the composite key {relations[fk.referenced].key}; the "
                "paper restricts foreign keys to reference simple keys",
                span=span,
                subject=subject,
            )
        )
    return found


def duplicate_foreign_key_diagnostic(fk: "ForeignKey") -> Diagnostic:
    """``SCH003``: a second foreign key on the same attribute."""
    return diagnostic(
        "SCH003",
        f"duplicate foreign key on {fk.relation}.{fk.attribute}",
        span=getattr(fk, "span", None),
        subject=f"{fk.relation}.{fk.attribute}",
    )


def weak_acyclicity_diagnostic(schema: "Schema") -> Diagnostic | None:
    """``SCH010`` with the special cycle printed, or None when acyclic."""
    cycle = find_special_cycle(schema)
    if cycle is None:
        return None
    pretty = " -> ".join(f"{r}.{a}" for r, a in cycle)
    # Anchor the diagnostic on a foreign key that starts the special cycle.
    span = None
    fk = schema.foreign_key_from(*cycle[0])
    if fk is not None:
        span = getattr(fk, "span", None)
    return diagnostic(
        "SCH010",
        f"schema {schema.name!r}: foreign keys are not weakly acyclic "
        f"(cycle through a special edge: {pretty})",
        span=span,
        subject=schema.name,
    )


def lint_schema(schema: "Schema") -> list[Diagnostic]:
    """All ``SCH*`` diagnostics of one schema.

    Structural conditions are re-checked even though
    :class:`~repro.model.schema.Schema` construction enforces them, so the
    linter also works on schemas assembled leniently by
    :func:`repro.dsl.parser.parse_problem_lenient`.
    """
    found: list[Diagnostic] = []
    seen: set[tuple[str, str]] = set()
    for fk in schema.foreign_keys:
        found.extend(foreign_key_diagnostics(schema.relations, fk))
        position = (fk.relation, fk.attribute)
        if position in seen:
            found.append(duplicate_foreign_key_diagnostic(fk))
        seen.add(position)
    # Weak acyclicity is only meaningful once the structure is sound.
    if not found:
        cycle = weak_acyclicity_diagnostic(schema)
        if cycle is not None:
            found.append(cycle)
    return found
