"""Verdicts and reports of the constraint certifier.

Every target-schema constraint — each primary key, each foreign key, each
NOT NULL attribute — receives exactly one :class:`ConstraintVerdict`:

* ``PROVED`` carries a human-readable witness (the proof artifact: a
  nullability fixpoint value, a per-pair disjointness argument, a
  containment homomorphism);
* ``REFUTED`` carries a *minimal counterexample*: a valid source instance
  whose chase (checked on both engines) violates the constraint;
* ``UNKNOWN`` means the static reasoning was inconclusive — the dynamic
  validator remains the arbiter.

A :class:`CertificationReport` aggregates the verdicts together with the
program-level termination certificate and renders as text, JSON, or an
:class:`~repro.analysis.diagnostics.AnalysisReport` (REFUTED → error,
UNKNOWN → warning) for SARIF export and ``lint --certify``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..diagnostics import (
    WARNING,
    AnalysisReport,
    Diagnostic,
    SourceSpan,
    diagnostic,
)

if TYPE_CHECKING:  # pragma: no cover
    from ...model.instance import Instance

PROVED = "PROVED"
REFUTED = "REFUTED"
UNKNOWN = "UNKNOWN"

#: Constraint kind → diagnostic code for non-PROVED verdicts.
KIND_CODES = {
    "key": "CER001",
    "foreign-key": "CER002",
    "not-null": "CER003",
    "termination": "TRM001",
}


@dataclass
class ConstraintVerdict:
    """One target constraint and what the certifier concluded about it."""

    kind: str  # "key" | "foreign-key" | "not-null" | "termination"
    constraint: str  # e.g. "key of C2 (code)", "C2.person -> P2"
    relation: str
    verdict: str
    witness: str = ""  # the proof artifact (PROVED)
    reason: str = ""  # why not proved (REFUTED / UNKNOWN)
    counterexample: "Instance | None" = None  # REFUTED only
    span: SourceSpan | None = None

    @property
    def code(self) -> str:
        return KIND_CODES[self.kind]

    def diagnostic_item(self) -> Diagnostic | None:
        """The lint diagnostic for a non-PROVED verdict, else ``None``."""
        if self.verdict == PROVED:
            return None
        message = f"{self.constraint}: {self.verdict}"
        if self.reason:
            message += f" — {self.reason}"
        if self.counterexample is not None:
            message += (
                f" (counterexample source instance with "
                f"{self.counterexample.total_size()} row(s))"
            )
        return diagnostic(
            self.code,
            message,
            subject=self.relation,
            severity=WARNING if self.verdict == UNKNOWN else None,
            span=self.span,
        )

    def render(self) -> str:
        line = f"[{self.verdict}] {self.kind} {self.constraint}"
        if self.verdict == PROVED and self.witness:
            line += f"\n    witness: {self.witness}"
        elif self.reason:
            line += f"\n    reason: {self.reason}"
        if self.counterexample is not None:
            indented = "\n".join(
                "    " + text_line
                for text_line in self.counterexample.to_text().splitlines()
            )
            line += f"\n    counterexample source instance:\n{indented}"
        return line

    def to_dict(self) -> dict:
        data: dict = {
            "kind": self.kind,
            "constraint": self.constraint,
            "relation": self.relation,
            "verdict": self.verdict,
        }
        if self.witness:
            data["witness"] = self.witness
        if self.reason:
            data["reason"] = self.reason
        if self.counterexample is not None:
            data["counterexample"] = self.counterexample.to_text()
        return data


@dataclass
class CertificationReport:
    """All constraint verdicts of one generated program."""

    subject: str = ""  # scenario / problem name
    verdicts: list[ConstraintVerdict] = field(default_factory=list)
    #: the program-level termination certificate (bound, graph sizes);
    #: structured counterpart of the "termination" verdict.
    termination: "object | None" = None

    def add(self, verdict: ConstraintVerdict) -> None:
        self.verdicts.append(verdict)

    def of_kind(self, kind: str) -> list[ConstraintVerdict]:
        return [v for v in self.verdicts if v.kind == kind]

    def with_verdict(self, verdict: str) -> list[ConstraintVerdict]:
        return [v for v in self.verdicts if v.verdict == verdict]

    @property
    def proved(self) -> list[ConstraintVerdict]:
        return self.with_verdict(PROVED)

    @property
    def refuted(self) -> list[ConstraintVerdict]:
        return self.with_verdict(REFUTED)

    @property
    def unknown(self) -> list[ConstraintVerdict]:
        return self.with_verdict(UNKNOWN)

    @property
    def ok(self) -> bool:
        """True iff every constraint (termination included) is PROVED."""
        return all(v.verdict == PROVED for v in self.verdicts)

    def counts(self) -> dict[str, int]:
        return {
            PROVED: len(self.proved),
            REFUTED: len(self.refuted),
            UNKNOWN: len(self.unknown),
        }

    def diagnostics(self) -> AnalysisReport:
        report = AnalysisReport(subject=self.subject)
        for verdict in self.verdicts:
            item = verdict.diagnostic_item()
            if item is not None:
                report.add(item)
        return report

    def summary(self) -> str:
        counts = self.counts()
        return (
            f"certify: {counts[PROVED]} proved, {counts[REFUTED]} refuted, "
            f"{counts[UNKNOWN]} unknown"
        )

    def render(self) -> str:
        header = f"certification of {self.subject}" if self.subject else (
            "certification report"
        )
        lines = [header]
        for kind in ("termination", "key", "foreign-key", "not-null"):
            for verdict in self.of_kind(kind):
                lines.append(verdict.render())
        lines.append(self.summary())
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "subject": self.subject,
            "ok": self.ok,
            "counts": self.counts(),
            "verdicts": [v.to_dict() for v in self.verdicts],
        }
