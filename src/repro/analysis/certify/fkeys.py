"""The foreign-key pass (CER002): referential integrity as CQ containment.

A target foreign key ``R.a → S`` holds iff every non-null value the program
places at ``R.a`` also shows up as the key of some ``S`` row *of the same
chase result*.  Per delivering rule ``r`` of ``R`` this is a containment of
conjunctive queries (the Calì–Torlone reduction):

    Q_fk  =  { r.head[a] | body(r), r.head[a] ≠ null }
    Q_key =  { s.head[key(S)] | body(s) }        for some rule s of S

``Q_fk ⊆ Q_key`` means each firing of ``r`` is matched by a firing of ``s``
emitting the referenced key — the PR 3 containment engine produces the
homomorphism witness.  Rules that place ``null`` (or an always-null
variable) at the position satisfy the constraint trivially; the paper's
data model lets null foreign keys dangle (§3.1).

Both queries are enriched with *schema-derived* non-null marks — a variable
bound at a mandatory source position can never be null in a valid source
instance — which is exactly the extra knowledge the generic containment
engine does not assume.  When no referenced rule contains ``Q_fk`` the pass
hunts for a counterexample (rule body realized with the FK value non-null,
replayed through both engines); confirmation refutes, otherwise UNKNOWN.
"""

from __future__ import annotations

from ...datalog.program import DatalogProgram, Rule
from ...logic.terms import NullTerm, Variable
from ...obs import metric_inc
from ..semantic.containment import (
    ConjunctiveQuery,
    ContainmentEngine,
    Witness,
)
from .closure import EgdClosure, negation_refutation
from .counterexample import confirmed_counterexample, fk_violation_check
from .report import PROVED, REFUTED, UNKNOWN, ConstraintVerdict

#: A private head label shared by both sides of every FK containment check
#: (the engine requires equal labels; FK projections have no relation name).
_HEAD_LABEL = "__certify_fk__"


def certify_foreign_keys(program: DatalogProgram) -> list[ConstraintVerdict]:
    """One verdict per foreign key of the target schema."""
    schema = program.target_schema
    if schema is None:
        return []
    engine = ContainmentEngine()
    verdicts = []
    for fk in schema.foreign_keys:
        verdict = _certify_foreign_key(program, engine, fk)
        verdict.span = fk.span
        metric_inc(
            "certify.verdicts", 1, kind="foreign-key", verdict=verdict.verdict
        )
        verdicts.append(verdict)
    return verdicts


def _certify_foreign_key(
    program: DatalogProgram, engine: ContainmentEngine, fk
) -> ConstraintVerdict:
    schema = program.target_schema
    constraint = f"{fk.relation}.{fk.attribute} -> {fk.referenced}"
    position = schema.relation(fk.relation).position(fk.attribute)
    key_position = schema.relation(fk.referenced).position(
        schema.relation(fk.referenced).key[0]
    )
    referenced_rules = program.rules_for(fk.referenced)
    proofs: list[str] = []
    unknowns: list[str] = []

    for index, rule in enumerate(program.rules_for(fk.relation)):
        term = rule.head.terms[position]
        if isinstance(term, NullTerm) or (
            isinstance(term, Variable) and term in rule.null_vars
        ):
            proofs.append(
                f"rule {index}: always places null at {fk.attribute} — "
                f"null foreign keys satisfy the constraint (§3.1)"
            )
            continue
        witness = _containment_proof(
            engine, rule, term, referenced_rules, key_position, program
        )
        if witness is not None:
            proofs.append(f"rule {index}: {witness}")
            continue
        counterexample = _fk_counterexample(program, rule, term, fk)
        if counterexample is not None:
            return ConstraintVerdict(
                kind="foreign-key",
                constraint=constraint,
                relation=fk.relation,
                verdict=REFUTED,
                reason=(
                    f"rule {index} ({rule!r}) emits a dangling "
                    f"{fk.attribute} value; confirmed on both engines"
                ),
                counterexample=counterexample,
            )
        unknowns.append(
            f"rule {index}: FK projection not provably contained in any "
            f"{fk.referenced} key query, no counterexample confirmed"
        )

    if unknowns:
        return ConstraintVerdict(
            kind="foreign-key",
            constraint=constraint,
            relation=fk.relation,
            verdict=UNKNOWN,
            reason="; ".join(unknowns),
        )
    if not proofs:
        proofs.append(
            f"no rule derives {fk.relation}; the constraint holds vacuously"
        )
    return ConstraintVerdict(
        kind="foreign-key",
        constraint=constraint,
        relation=fk.relation,
        verdict=PROVED,
        witness="; ".join(proofs),
    )


def _schema_nonnull_vars(rule: Rule, program: DatalogProgram) -> set[Variable]:
    """Variables bound at mandatory source positions (never null when the
    body matches a valid source instance)."""
    schema = program.source_schema
    found: set[Variable] = set()
    if schema is None:
        return found
    for atom in rule.body:
        if atom.relation not in schema:
            continue
        relation = schema.relation(atom.relation)
        for index, term in enumerate(atom.terms):
            if (
                isinstance(term, Variable)
                and index < relation.arity
                and not relation.attributes[index].nullable
            ):
                found.add(term)
    return found


def _fk_query(
    rule: Rule, term, program: DatalogProgram
) -> ConjunctiveQuery:
    """The FK-projection query of one delivering rule, restricted non-null."""
    nonnull = set(rule.nonnull_vars) | _schema_nonnull_vars(rule, program)
    if isinstance(term, Variable):
        nonnull.add(term)
    return ConjunctiveQuery(
        head_label=_HEAD_LABEL,
        head=(term,),
        atoms=tuple(rule.body),
        null_vars=frozenset(rule.null_vars),
        nonnull_vars=frozenset(nonnull),
        equalities=tuple(rule.equalities),
        disequalities=tuple(rule.disequalities),
        negated=tuple(rule.negated),
    )


def _key_query(
    rule: Rule, key_position: int, program: DatalogProgram
) -> ConjunctiveQuery:
    """The referenced-key projection query of one referenced-relation rule."""
    return ConjunctiveQuery(
        head_label=_HEAD_LABEL,
        head=(rule.head.terms[key_position],),
        atoms=tuple(rule.body),
        null_vars=frozenset(rule.null_vars),
        nonnull_vars=frozenset(rule.nonnull_vars),
        equalities=tuple(rule.equalities),
        disequalities=tuple(rule.disequalities),
        negated=tuple(rule.negated),
    )


def _containment_proof(
    engine: ContainmentEngine,
    rule: Rule,
    term,
    referenced_rules: list[Rule],
    key_position: int,
    program: DatalogProgram,
) -> str | None:
    fk_query = _fk_query(rule, term, program)
    for ref_index, referenced in enumerate(referenced_rules):
        witness: Witness | None = engine.contained_in(
            fk_query, _key_query(referenced, key_position, program)
        )
        if witness is not None:
            return (
                f"FK projection contained in {referenced.head_relation} key "
                f"query of rule {ref_index} — witness {witness.render()}"
            )
    return None


def _fk_counterexample(program: DatalogProgram, rule: Rule, term, fk):
    """A valid source instance making ``rule`` emit a dangling FK value."""
    closure = EgdClosure(schema=program.source_schema)
    closure.add_rule(rule)
    if isinstance(term, Variable):
        # The FK constraint only bites for non-null values.
        if closure.info(term).null:
            return None
        closure.mark_nonnull(term)
    closure.saturate()
    if closure.contradiction is not None:
        return None
    if negation_refutation(closure, (rule,), program) is not None:
        return None
    return confirmed_counterexample(
        program, closure, fk_violation_check(fk.relation, fk.attribute)
    )
