"""The constraint certifier: static proofs that target constraints hold.

:func:`certify_program` runs four passes over a generated Datalog program
and answers, for *every* key, foreign key and NOT NULL constraint of the
target schema, one of

* **PROVED** — with a witness (the proof artifact);
* **REFUTED** — with a minimal, valid counterexample source instance whose
  chase violates the constraint on *both* evaluation engines;
* **UNKNOWN** — the static reasoning was inconclusive.

The passes:

1. :mod:`.termination` — program-level weak acyclicity and the chase-depth
   bound (TRM001).  A bounded certificate is the precondition of the other
   passes (their canonical-instance arguments unfold the chase finitely);
   when it fails every remaining constraint is reported UNKNOWN.
2. :mod:`.keys` — egd-style key proofs over the PR 3 containment machinery
   and the PR 4 key-origin functionality records (CER001).
3. :mod:`.fkeys` — referential integrity as CQ containment of the
   FK-projection query in the referenced-key query (CER002).
4. :mod:`.notnull` — a thin client of the nullability fixpoint (CER003).

This turns the paper's §3–§4 guarantee — the generated mapping produces
only valid target instances — into a machine-checked theorem per scenario;
``repro certify --all-scenarios`` re-proves it for the bundled suite.
"""

from __future__ import annotations

from ...datalog.program import DatalogProgram
from ...obs import metric_inc, span
from .report import (
    PROVED,
    REFUTED,
    UNKNOWN,
    CertificationReport,
    ConstraintVerdict,
)
from .termination import TerminationCertificate, certify_termination

__all__ = [
    "PROVED",
    "REFUTED",
    "UNKNOWN",
    "CertificationReport",
    "ConstraintVerdict",
    "TerminationCertificate",
    "certify_program",
    "certify_termination",
]


def certify_program(
    program: DatalogProgram, subject: str = ""
) -> CertificationReport:
    """Certify every target constraint of one generated program."""
    from .fkeys import certify_foreign_keys
    from .keys import certify_keys
    from .notnull import certify_not_null

    with span("certify", subject=subject or "<program>"):
        report = CertificationReport(subject=subject)
        certificate = certify_termination(program)
        report.termination = certificate
        report.add(_termination_verdict(certificate))
        if certificate.bounded:
            report.verdicts.extend(certify_keys(program))
            report.verdicts.extend(certify_foreign_keys(program))
            report.verdicts.extend(certify_not_null(program))
        else:
            report.verdicts.extend(_all_unknown(program))
        metric_inc("certify.runs", 1, ok=str(report.ok).lower())
    return report


def _termination_verdict(
    certificate: TerminationCertificate,
) -> ConstraintVerdict:
    if certificate.bounded:
        return ConstraintVerdict(
            kind="termination",
            constraint="chase termination of the generated program",
            relation="<program>",
            verdict=PROVED,
            witness=certificate.witness(),
        )
    # Weak acyclicity is sufficient, not necessary, for termination — a
    # special cycle leaves termination open, it does not disprove it.
    return ConstraintVerdict(
        kind="termination",
        constraint="chase termination of the generated program",
        relation="<program>",
        verdict=UNKNOWN,
        reason=certificate.witness(),
    )


def _all_unknown(program: DatalogProgram) -> list[ConstraintVerdict]:
    """Every constraint UNKNOWN: the termination precondition failed."""
    schema = program.target_schema
    if schema is None:
        return []
    reason = (
        "termination precondition failed: no chase-depth bound, so the "
        "canonical-instance arguments of the key/FK/NOT NULL passes do "
        "not apply"
    )
    verdicts = []
    for relation in schema:
        verdicts.append(
            ConstraintVerdict(
                kind="key",
                constraint=f"key of {relation.name} ({', '.join(relation.key)})",
                relation=relation.name,
                verdict=UNKNOWN,
                reason=reason,
                span=relation.span,
            )
        )
        for attribute in relation.attributes:
            if not attribute.nullable:
                verdicts.append(
                    ConstraintVerdict(
                        kind="not-null",
                        constraint=f"NOT NULL {relation.name}.{attribute.name}",
                        relation=relation.name,
                        verdict=UNKNOWN,
                        reason=reason,
                        span=attribute.span or relation.span,
                    )
                )
    for fk in schema.foreign_keys:
        verdicts.append(
            ConstraintVerdict(
                kind="foreign-key",
                constraint=f"{fk.relation}.{fk.attribute} -> {fk.referenced}",
                relation=fk.relation,
                verdict=UNKNOWN,
                reason=reason,
                span=fk.span,
            )
        )
    return verdicts
