"""Program-level weak acyclicity and the chase-depth bound (TRM001).

:mod:`repro.model.graph` checks weak acyclicity of a *schema*'s foreign
keys (§3.1).  This pass lifts the same test to the generated Datalog
program, viewed as a set of tgds whose existential variables are the Skolem
functor applications:

* nodes are the positions ``(relation, index)`` of every head relation and
  every body relation of the program;
* a rule with head term ``x`` (a variable) at position π gets an *ordinary*
  edge from every body position binding ``x`` to π — values flow unchanged;
* a rule with head term ``f(..., x, ...)`` (a Skolem term, possibly nested)
  at position π gets a *special* edge from every body position binding any
  variable of the term to π — a fresh invented value is created from ``x``.

The program is chase-terminating when no cycle goes through a special edge
(the classical weak-acyclicity argument: invented values can then only be
nested to bounded depth).  The certificate also reports that bound — the
maximum number of special edges on any path, computed by longest-path DP
over the strongly-connected-component condensation — which equals the
maximum Skolem nesting depth any chase sequence can reach.  The other
certifier passes require a bounded certificate: their canonical-instance
arguments unfold the program only finitely often.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ...datalog.program import DatalogProgram, Rule
from ...logic.terms import SkolemTerm, Variable
from ...obs import metric_inc

Position = tuple[str, int]


@dataclass
class ProgramDependencyGraph:
    """The Skolem-position dependency graph of one Datalog program."""

    nodes: set[Position] = field(default_factory=set)
    ordinary_edges: set[tuple[Position, Position]] = field(default_factory=set)
    special_edges: set[tuple[Position, Position]] = field(default_factory=set)

    def all_edges(self) -> set[tuple[Position, Position]]:
        return self.ordinary_edges | self.special_edges

    def successors(self, node: Position) -> list[Position]:
        return sorted(v for (u, v) in self.all_edges() if u == node)


@dataclass
class TerminationCertificate:
    """The outcome of the program-level weak-acyclicity test."""

    bounded: bool
    #: max special edges on any path = max Skolem nesting depth of any chase
    depth_bound: int | None
    graph: ProgramDependencyGraph
    #: a cycle through a special edge, as a position list, when unbounded
    cycle: list[Position] | None = None

    def witness(self) -> str:
        if self.bounded:
            return (
                f"program dependency graph is weakly acyclic "
                f"({len(self.graph.nodes)} positions, "
                f"{len(self.graph.ordinary_edges)} ordinary / "
                f"{len(self.graph.special_edges)} special edges); "
                f"chase depth bound {self.depth_bound}"
            )
        assert self.cycle is not None
        path = " -> ".join(f"{r}.{i}" for r, i in self.cycle)
        return f"special cycle: {path}"


def _body_positions(rule: Rule) -> dict[Variable, list[Position]]:
    positions: dict[Variable, list[Position]] = {}
    for atom in rule.body:
        for index, term in enumerate(atom.terms):
            if isinstance(term, Variable):
                positions.setdefault(term, []).append((atom.relation, index))
    return positions


def build_program_graph(program: DatalogProgram) -> ProgramDependencyGraph:
    """The dependency graph over the program's (relation, position) pairs."""
    graph = ProgramDependencyGraph()
    for rule in program.rules:
        binding = _body_positions(rule)
        for sources in binding.values():
            graph.nodes.update(sources)
        for index, term in enumerate(rule.head.terms):
            target = (rule.head_relation, index)
            graph.nodes.add(target)
            if isinstance(term, Variable):
                for source in binding.get(term, ()):
                    graph.ordinary_edges.add((source, target))
            elif isinstance(term, SkolemTerm):
                # Every variable anywhere under the functor feeds the
                # invented value — nested Skolems included.
                for var in term.variables():
                    for source in binding.get(var, ()):
                        graph.special_edges.add((source, target))
    return graph


def _find_special_cycle(graph: ProgramDependencyGraph) -> list[Position] | None:
    """A cycle through a special edge, or ``None`` (mirrors model.graph)."""
    adjacency: dict[Position, list[Position]] = {}
    for u, v in sorted(graph.all_edges()):
        adjacency.setdefault(u, []).append(v)
    for u, v in sorted(graph.special_edges):
        path = _find_path(adjacency, v, u)
        if path is not None:
            return [u] + path
    return None


def _find_path(
    adjacency: dict[Position, list[Position]],
    start: Position,
    goal: Position,
) -> list[Position] | None:
    stack: list[tuple[Position, list[Position]]] = [(start, [start])]
    seen = {start}
    while stack:
        node, path = stack.pop()
        if node == goal:
            return path
        for succ in adjacency.get(node, ()):
            if succ not in seen:
                seen.add(succ)
                stack.append((succ, path + [succ]))
    return None


def _sccs(graph: ProgramDependencyGraph) -> dict[Position, int]:
    """Node → SCC id, ids in reverse topological order (Tarjan, iterative)."""
    adjacency: dict[Position, list[Position]] = {}
    for u, v in sorted(graph.all_edges()):
        adjacency.setdefault(u, []).append(v)
    index_of: dict[Position, int] = {}
    low: dict[Position, int] = {}
    on_stack: set[Position] = set()
    stack: list[Position] = []
    component: dict[Position, int] = {}
    counter = iter(range(len(graph.nodes) + 1))
    next_component = iter(range(len(graph.nodes) + 1))

    for root in sorted(graph.nodes):
        if root in index_of:
            continue
        work: list[tuple[Position, int]] = [(root, 0)]
        while work:
            node, child_index = work.pop()
            if child_index == 0:
                index_of[node] = low[node] = next(counter)
                stack.append(node)
                on_stack.add(node)
            children = adjacency.get(node, [])
            recursed = False
            for i in range(child_index, len(children)):
                child = children[i]
                if child not in index_of:
                    work.append((node, i + 1))
                    work.append((child, 0))
                    recursed = True
                    break
                if child in on_stack:
                    low[node] = min(low[node], index_of[child])
            if recursed:
                continue
            if low[node] == index_of[node]:
                scc = next(next_component)
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component[member] = scc
                    low[member] = index_of[node]
                    if member == node:
                        break
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
    return component


def _depth_bound(graph: ProgramDependencyGraph) -> int:
    """Max special edges on any path (graph must be weakly acyclic)."""
    component = _sccs(graph)
    # Weak acyclicity puts every special edge between distinct SCCs, so the
    # condensation DAG carries them all; longest-path DP gives the bound.
    condensed: dict[int, list[tuple[int, int]]] = {}
    indegree: dict[int, int] = {c: 0 for c in component.values()}
    for u, v in sorted(graph.special_edges):
        condensed.setdefault(component[u], []).append((component[v], 1))
    for u, v in sorted(graph.ordinary_edges):
        if component[u] != component[v]:
            condensed.setdefault(component[u], []).append((component[v], 0))
    for edges in condensed.values():
        for target, _ in edges:
            indegree[target] += 1

    from collections import deque

    depth: dict[int, int] = {c: 0 for c in indegree}
    queue = deque(c for c, d in indegree.items() if d == 0)
    while queue:
        node = queue.popleft()
        for target, weight in condensed.get(node, ()):
            depth[target] = max(depth[target], depth[node] + weight)
            indegree[target] -= 1
            if indegree[target] == 0:
                queue.append(target)
    return max(depth.values(), default=0)


def certify_termination(program: DatalogProgram) -> TerminationCertificate:
    """Decide program-level weak acyclicity and the chase-depth bound."""
    graph = build_program_graph(program)
    cycle = _find_special_cycle(graph)
    if cycle is not None:
        metric_inc("certify.termination", 1, outcome="unbounded")
        return TerminationCertificate(
            bounded=False, depth_bound=None, graph=graph, cycle=cycle
        )
    bound = _depth_bound(graph)
    metric_inc("certify.termination", 1, outcome="bounded")
    metric_inc("certify.chase_depth_bound", bound)
    return TerminationCertificate(bounded=True, depth_bound=bound, graph=graph)
