"""The NOT NULL pass (CER003): a thin client of the nullability fixpoint.

Every mandatory target attribute is PROVED when the solved nullability
environment assigns its position ``NO`` (never null) or ``BOTTOM`` (no row
ever reaches it — vacuously satisfied).  Otherwise the pass hunts for a
concrete demonstration: for each rule that can place a null at the
position, it builds the egd closure of the rule body with the offending
head variable constrained null, realizes it as a valid source instance and
replays it through both engines.  A confirmed violation is a REFUTED
verdict with the minimized counterexample; an unconfirmed hunt stays
UNKNOWN — the fixpoint over-approximates, so ``MAYBE`` alone never refutes.
"""

from __future__ import annotations

from ...datalog.program import DatalogProgram, Rule
from ...logic.terms import NullTerm, Variable
from ...model.instance import Instance
from ...obs import metric_inc
from ..flow.lattice import BOTTOM, NO
from ..flow.nullability import NullabilityAnalysis
from ..flow.solver import FlowResult, solve
from .closure import EgdClosure, negation_refutation
from .counterexample import confirmed_counterexample, null_violation_check
from .report import PROVED, REFUTED, UNKNOWN, ConstraintVerdict


def certify_not_null(
    program: DatalogProgram,
    flow: FlowResult | None = None,
) -> list[ConstraintVerdict]:
    """One verdict per mandatory attribute of every target relation."""
    schema = program.target_schema
    if schema is None:
        return []
    if flow is None:
        flow = solve(program, NullabilityAnalysis(program))
    verdicts = []
    for relation in schema:
        for position, attribute in enumerate(relation.attributes):
            if attribute.nullable:
                continue
            verdict = _certify_attribute(
                program, flow, relation.name, attribute.name, position
            )
            verdict.span = attribute.span or relation.span
            metric_inc(
                "certify.verdicts",
                1,
                kind="not-null",
                verdict=verdict.verdict,
            )
            verdicts.append(verdict)
    return verdicts


def _certify_attribute(
    program: DatalogProgram,
    flow: FlowResult,
    relation: str,
    attribute: str,
    position: int,
) -> ConstraintVerdict:
    constraint = f"NOT NULL {relation}.{attribute}"
    value = flow.value(relation, position)
    if value == NO:
        return ConstraintVerdict(
            kind="not-null",
            constraint=constraint,
            relation=relation,
            verdict=PROVED,
            witness=(
                f"nullability fixpoint proves {relation}.{attribute} is "
                f"never null (value NO)"
            ),
        )
    if value == BOTTOM:
        return ConstraintVerdict(
            kind="not-null",
            constraint=constraint,
            relation=relation,
            verdict=PROVED,
            witness=(
                f"no rule ever derives a row reaching {relation}.{attribute} "
                f"(value ⊥); the constraint holds vacuously"
            ),
        )
    # The fixpoint says MAYBE/YES — hunt for a concrete refutation.
    check = null_violation_check(relation, attribute)
    for rule in program.rules_for(relation):
        counterexample = _null_counterexample(program, rule, position, check)
        if counterexample is not None:
            return ConstraintVerdict(
                kind="not-null",
                constraint=constraint,
                relation=relation,
                verdict=REFUTED,
                reason=(
                    f"rule {rule!r} places null at {relation}.{attribute}; "
                    f"confirmed on both engines"
                ),
                counterexample=counterexample,
            )
    return ConstraintVerdict(
        kind="not-null",
        constraint=constraint,
        relation=relation,
        verdict=UNKNOWN,
        reason=(
            f"nullability fixpoint reports {value!r} at "
            f"{relation}.{attribute} but no counterexample could be "
            f"confirmed on both engines"
        ),
    )


def _null_counterexample(
    program: DatalogProgram,
    rule: Rule,
    position: int,
    check,
) -> Instance | None:
    """A valid source instance making this rule emit null at ``position``."""
    term = rule.head.terms[position]
    closure = EgdClosure(schema=program.source_schema)
    closure.add_rule(rule)
    if isinstance(term, Variable):
        closure.equate(term, NullTerm())
    elif not isinstance(term, NullTerm):
        return None  # constants and Skolem terms are never the unlabeled null
    closure.saturate()
    if closure.contradiction is not None:
        return None
    if negation_refutation(closure, (rule,), program) is not None:
        return None  # the rule body can never fire under this constraint
    return confirmed_counterexample(program, closure, check)
