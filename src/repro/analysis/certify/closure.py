"""Equality-generating (egd-style) reasoning over combined rule bodies.

The key certifier asks: can two firings of target rules agree on a target
key but disagree elsewhere?  The classical way to answer is to *chase* the
pair with the available equality-generating dependencies — here the source
key → row functional dependencies of §3.1 — after asserting the key
equalities, and look for either a contradiction (the firings can never
collide) or full row agreement (collisions always coincide).

:class:`EgdClosure` implements that chase as a congruence closure over the
variables of one or two rule bodies:

* rule equalities, asserted key equalities and Skolem-argument unifications
  (Skolem functors are injective, §6) merge variable classes;
* each class carries its pinned constant and null / non-null marks; a class
  bound at a non-nullable *source* position is marked non-null, because the
  certifier reasons over valid source instances only;
* :meth:`saturate` closes the atom set under the source FDs: two atoms of
  one relation whose key positions are provably equal denote the same row,
  so every remaining position unifies;
* contradictory constraints — null vs. non-null, two distinct constants, a
  ground (source-bound) value vs. an invented Skolem value, two Skolem
  terms with distinct functors, a violated disequality — mark the closure
  :attr:`contradiction`; for the pair analysis that *is* the proof that the
  two firings can never share a key.

The closure assumes every variable ranges over *ground* source values
(constants or the unlabeled null): bodies of generated target rules are
source atoms, and source instances never contain invented values.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ...datalog.program import DatalogProgram, Rule
from ...logic.atoms import RelationalAtom
from ...logic.homomorphism import iter_homomorphisms
from ...logic.terms import (
    Constant,
    NullTerm,
    SkolemTerm,
    Term,
    Variable,
)
from ..semantic.containment import (
    FrozenValue,
    _is_nonnull_like,
    _is_null_like,
    _terms_agree,
)


@dataclass
class _ClassInfo:
    """Constraints accumulated on one equivalence class of variables."""

    pin: Constant | None = None
    null: bool = False
    nonnull: bool = False


@dataclass
class EgdClosure:
    """A congruence closure over rule-body variables under source FDs."""

    schema: "object"  # the source Schema (FDs + NOT NULL), or None
    atoms: list[RelationalAtom] = field(default_factory=list)
    #: why the constraint set is unsatisfiable, or None while it still is
    contradiction: str | None = None

    def __post_init__(self) -> None:
        self._parent: dict[Variable, Variable] = {}
        self._info: dict[Variable, _ClassInfo] = {}
        self._diseqs: list[tuple[Term, Term]] = []

    # -- union-find --------------------------------------------------------

    def _find(self, var: Variable) -> Variable:
        parent = self._parent
        if var not in parent:
            parent[var] = var
            self._info[var] = _ClassInfo()
            return var
        while parent[var] is not var:
            parent[var] = parent[parent[var]]
            var = parent[var]
        return var

    def info(self, var: Variable) -> _ClassInfo:
        return self._info[self._find(var)]

    def mark_nonnull(self, var: Variable) -> None:
        """Assert that ``var`` holds a non-null value."""
        self._mark_nonnull_root(self._find(var))

    def _fail(self, reason: str) -> None:
        if self.contradiction is None:
            self.contradiction = reason

    def _merge(self, a: Variable, b: Variable) -> None:
        ra, rb = self._find(a), self._find(b)
        if ra is rb:
            return
        self._parent[ra] = rb
        merged = self._info.pop(ra)
        into = self._info[rb]
        if merged.pin is not None:
            self._pin_root(rb, merged.pin)
        if merged.null:
            self._mark_null_root(rb)
        if merged.nonnull:
            self._mark_nonnull_root(rb)
        del into  # constraints folded via the *_root helpers above

    def _pin_root(self, root: Variable, constant: Constant) -> None:
        info = self._info[root]
        if info.pin is not None and info.pin != constant:
            self._fail(
                f"variable pinned to two distinct constants "
                f"({info.pin!r} and {constant!r})"
            )
            return
        info.pin = constant
        if info.null:
            self._fail(f"null-constrained variable pinned to constant {constant!r}")
        info.nonnull = True

    def _mark_null_root(self, root: Variable) -> None:
        info = self._info[root]
        if info.nonnull or info.pin is not None:
            self._fail("a value is required to be both null and non-null")
        info.null = True

    def _mark_nonnull_root(self, root: Variable) -> None:
        info = self._info[root]
        if info.null:
            self._fail("a value is required to be both null and non-null")
        info.nonnull = True

    # -- loading rules -----------------------------------------------------

    def add_rule(self, rule: Rule) -> None:
        """Load one rule's body atoms and conditions into the closure."""
        self.add_atoms(rule.body)
        for var in rule.null_vars:
            self._mark_null_root(self._find(var))
        for var in rule.nonnull_vars:
            self._mark_nonnull_root(self._find(var))
        for eq in rule.equalities:
            self.equate(eq.left, eq.right)
        for diseq in rule.disequalities:
            self._diseqs.append((diseq.left, diseq.right))

    def add_atoms(self, atoms: "tuple[RelationalAtom, ...] | list") -> None:
        for atom in atoms:
            self.atoms.append(atom)
            rel = self._source_relation(atom.relation)
            for position, term in enumerate(atom.terms):
                if not isinstance(term, Variable):
                    continue
                self._find(term)
                if rel is not None and position < rel.arity:
                    if not rel.attributes[position].nullable:
                        # Valid source instances keep mandatory attributes
                        # non-null; the certifier only reasons over those.
                        self._mark_nonnull_root(self._find(term))

    def _source_relation(self, name: str):
        if self.schema is None or name not in self.schema:
            return None
        return self.schema.relation(name)

    # -- equating terms ----------------------------------------------------

    def equate(self, left: Term, right: Term) -> None:
        """Assert ``left = right``; records a contradiction when impossible."""
        if self.contradiction is not None:
            return
        if isinstance(left, Variable) and isinstance(right, Variable):
            self._merge(left, right)
            return
        if isinstance(left, Variable) or isinstance(right, Variable):
            var, other = (
                (left, right) if isinstance(left, Variable) else (right, left)
            )
            assert isinstance(var, Variable)
            if isinstance(other, Constant):
                self._pin_root(self._find(var), other)
            elif isinstance(other, NullTerm):
                self._mark_null_root(self._find(var))
            elif isinstance(other, SkolemTerm):
                # Source-bound variables hold ground values; Skolem terms
                # denote invented (labeled-null) values — disjoint domains.
                self._fail("a ground source value cannot equal an invented value")
            return
        if isinstance(left, SkolemTerm) and isinstance(right, SkolemTerm):
            if left.functor != right.functor or len(left.args) != len(right.args):
                self._fail(
                    f"Skolem functors {left.functor} and {right.functor} "
                    "have disjoint ranges"
                )
                return
            for a, b in zip(left.args, right.args):
                self.equate(a, b)  # functors are injective (§6)
            return
        if isinstance(left, SkolemTerm) or isinstance(right, SkolemTerm):
            self._fail("an invented value cannot equal a constant or null")
            return
        if not _terms_agree(left, right):
            self._fail(f"distinct fixed values {left!r} and {right!r}")

    # -- the FD chase ------------------------------------------------------

    def saturate(self, max_rounds: int = 100) -> None:
        """Close under source key → row FDs, then re-check disequalities."""
        for _ in range(max_rounds):
            if self.contradiction is not None:
                return
            if not self._saturate_once():
                break
        for left, right in self._diseqs:
            if self.terms_equal(left, right):
                self._fail(f"disequality {left!r} != {right!r} is violated")
                return

    def _saturate_once(self) -> bool:
        changed = False
        by_relation: dict[str, list[RelationalAtom]] = {}
        for atom in self.atoms:
            by_relation.setdefault(atom.relation, []).append(atom)
        for name, atoms in by_relation.items():
            rel = self._source_relation(name)
            if rel is None or not rel.key:
                continue
            key_positions = rel.key_positions()
            for i, first in enumerate(atoms):
                for second in atoms[i + 1:]:
                    if any(p >= len(first.terms) for p in key_positions):
                        continue  # pragma: no cover - malformed atom
                    if all(
                        self.terms_equal(first.terms[p], second.terms[p])
                        for p in key_positions
                    ):
                        for a, b in zip(first.terms, second.terms):
                            if not self.terms_equal(a, b):
                                self.equate(a, b)
                                changed = True
                            if self.contradiction is not None:
                                return False
        return changed

    # -- queries -----------------------------------------------------------

    def normalize(self, term: Term) -> tuple:
        """A hashable normal form deciding guaranteed equality of terms."""
        if isinstance(term, Variable):
            root = self._find(term)
            info = self._info[root]
            if info.pin is not None:
                return ("const", info.pin.value)
            if info.null:
                return ("null",)
            return ("class", id(root))
        if isinstance(term, NullTerm):
            return ("null",)
        if isinstance(term, Constant):
            return ("const", term.value)
        if isinstance(term, SkolemTerm):
            return ("skolem", term.functor, tuple(self.normalize(a) for a in term.args))
        return ("term", repr(term))  # pragma: no cover - defensive

    def terms_equal(self, left: Term, right: Term) -> bool:
        """True iff the closure proves the terms denote the same value."""
        return self.normalize(left) == self.normalize(right)

    def entails_nonnull(self, term: Term) -> bool:
        if isinstance(term, (Constant, SkolemTerm)):
            return True
        if isinstance(term, Variable):
            info = self.info(term)
            return info.nonnull or info.pin is not None
        return False

    def entails_null(self, term: Term) -> bool:
        if isinstance(term, NullTerm):
            return True
        return isinstance(term, Variable) and self.info(term).null

    # -- freezing (for homomorphism searches) ------------------------------

    def frozen(self) -> tuple[list[RelationalAtom], dict[Variable, Term]]:
        """The atoms with every class frozen to one canonical term.

        Pinned classes freeze to their constant; every other class becomes a
        :class:`FrozenValue` carrying its null / non-null mark, so condition
        checks during homomorphism searches stay local.
        """
        substitution: dict[Variable, Term] = {}
        frozen_roots: dict[Variable, Term] = {}
        for index, var in enumerate(self._parent):
            root = self._find(var)
            if root not in frozen_roots:
                info = self._info[root]
                if info.pin is not None:
                    frozen_roots[root] = info.pin
                else:
                    frozen_roots[root] = FrozenValue(
                        len(frozen_roots),
                        root.name,
                        null=info.null,
                        nonnull=info.nonnull,
                    )
            substitution[var] = frozen_roots[root]
        return (
            [atom.substitute(substitution) for atom in self.atoms],
            substitution,
        )


def rename_rule(rule: Rule) -> Rule:
    """A copy of ``rule`` over fresh variables (for self-pair analysis)."""
    mapping: dict[Variable, Term] = {}
    for var in rule.body_variables():
        mapping.setdefault(var, Variable(var.name + "'"))
    for term in rule.head.terms:
        for var in term.variables():
            mapping.setdefault(var, Variable(var.name + "'"))
    return Rule(
        head=rule.head.substitute(mapping),
        body=tuple(a.substitute(mapping) for a in rule.body),
        negated=tuple(a.substitute(mapping) for a in rule.negated),
        null_vars=tuple(mapping.get(v, v) for v in rule.null_vars),
        nonnull_vars=tuple(mapping.get(v, v) for v in rule.nonnull_vars),
        equalities=tuple(e.substitute(mapping) for e in rule.equalities),
        disequalities=tuple(d.substitute(mapping) for d in rule.disequalities),
    )


def negation_refutation(
    closure: EgdClosure,
    rules: "tuple[Rule, ...] | list",
    program: DatalogProgram,
) -> str | None:
    """A proof that some ``not N(args)`` premise fails on the combined body.

    For every negated premise of the given rules, evaluate ``N`` over the
    frozen combined body: a condition-respecting homomorphism from one of
    ``N``'s defining rules whose head maps onto ``args`` shows ``N(args)``
    holds whenever the combined body does — contradicting the negation, so
    the combination never fires.  Returns the rendered proof, or ``None``.

    Sound because freezing only *instantiates* the combined body: anything
    derivable from the frozen atoms is derivable from every instance the
    body matches.  Defining rules with their own negations are skipped
    (conservative).
    """
    if closure.contradiction is not None:
        return None
    frozen_atoms, substitution = closure.frozen()
    for rule in rules:
        for negated in rule.negated:
            frozen_args = [t.substitute(substitution) for t in negated.terms]
            for defining in program.rules_for(negated.relation):
                if defining.negated:
                    continue  # nested negation: stay conservative
                fixed: dict[Variable, Term] = {}
                if not _bind_head(defining.head.terms, frozen_args, fixed):
                    continue
                witness = _conditioned_hom(defining, frozen_atoms, fixed)
                if witness is not None:
                    return (
                        f"¬{negated.relation}({', '.join(map(repr, negated.terms))})"
                        f" is contradicted: {negated.relation} is derivable "
                        f"from the combined bodies via "
                        f"{defining.head.relation} <- "
                        + ", ".join(repr(a) for a in defining.body)
                    )
    return None


def _bind_head(
    head_terms: "tuple[Term, ...]",
    frozen_args: "list[Term]",
    fixed: dict[Variable, Term],
) -> bool:
    """Structurally bind a defining rule's head onto frozen negation args."""
    if len(head_terms) != len(frozen_args):
        return False
    for pattern, image in zip(head_terms, frozen_args):
        if isinstance(pattern, Variable):
            bound = fixed.get(pattern)
            if bound is not None:
                if not _terms_agree(bound, image):
                    return False
            else:
                fixed[pattern] = image
        elif isinstance(pattern, SkolemTerm):
            if not isinstance(image, SkolemTerm):
                return False
            if pattern.functor != image.functor or len(pattern.args) != len(
                image.args
            ):
                return False
            if not _bind_head(tuple(pattern.args), list(image.args), fixed):
                return False
        elif not _terms_agree(pattern, image):
            return False
    return True


def _conditioned_hom(
    defining: Rule,
    frozen_atoms: "list[RelationalAtom]",
    fixed: dict[Variable, Term],
) -> dict | None:
    """A homomorphism from a defining rule's body respecting its conditions."""
    null_vars = set(defining.null_vars)
    nonnull_vars = set(defining.nonnull_vars)

    def var_check(var: Variable, image: Term) -> bool:
        if var in null_vars:
            return _is_null_like(image)
        if var in nonnull_vars:
            return _is_nonnull_like(image)
        return True

    for var, image in fixed.items():
        if not var_check(var, image):
            return None
    for theta in iter_homomorphisms(
        defining.body, frozen_atoms, fixed=fixed, var_check=var_check
    ):
        if all(
            _terms_agree(eq.left.substitute(theta), eq.right.substitute(theta))
            for eq in defining.equalities
        ) and all(
            _frozen_diseq(d.left.substitute(theta), d.right.substitute(theta))
            for d in defining.disequalities
        ):
            return theta
    return None


def _frozen_diseq(left: Term, right: Term) -> bool:
    """Is ``left != right`` guaranteed for all instantiations of the freeze?"""
    if isinstance(left, Constant) and isinstance(right, Constant):
        return left != right
    if (_is_null_like(left) and _is_nonnull_like(right)) or (
        _is_null_like(right) and _is_nonnull_like(left)
    ):
        return True
    if isinstance(left, SkolemTerm) and isinstance(right, SkolemTerm):
        return left.functor != right.functor
    return False
