"""The key pass (CER001): egd-style proofs that target keys hold.

A target key ``key(R)`` holds in every chase result iff no two rule
firings (of the same rule or of two different rules for ``R``) can agree on
the key positions yet produce different rows.  The pass decomposes the
proof obligation accordingly:

* *within one rule* — the PR 4 key-origin functionality records
  (Algorithm 4, step 2 lifted to a static FD closure): a confirmed record
  proves any two firings of that rule agreeing on the key emit the same
  row.  Unconfirmed records fall back to the pair analysis against a
  renamed copy of the rule.

* *across two rules* — the combined bodies are loaded into an
  :class:`~repro.analysis.certify.closure.EgdClosure`, the key head terms
  are equated, and the closure is saturated under the source FDs.  The pair
  is then harmless when one of these holds, each yielding a one-line proof:

  1. the constraints are contradictory (disjoint Skolem ranges, an
     invented-vs-ground clash, a null condition against a non-null one, a
     violated disequality, two distinct constants) — the firings can never
     share a key;
  2. some negated premise of either rule is contradicted: the negated
     intermediate relation is derivable from the combined bodies
     themselves, so the combination never fires (the paper's key-conflict
     resolution installs exactly these negations, §6);
  3. all head positions are provably equal — colliding firings emit
     identical rows, which set semantics deduplicates.

Any pair surviving all three is a *suspected* violation: the closure is
realized as a concrete valid source instance and replayed through both
engines (:mod:`.counterexample`); only a confirmed, minimized
counterexample refutes the key, otherwise the verdict is UNKNOWN.
"""

from __future__ import annotations

from ...datalog.program import DatalogProgram, Rule
from ...obs import metric_inc
from ..flow.keyorigin import FunctionalityRecord, functionality_records
from .closure import EgdClosure, negation_refutation, rename_rule
from .counterexample import confirmed_counterexample, key_violation_check
from .report import PROVED, REFUTED, UNKNOWN, ConstraintVerdict


def certify_keys(program: DatalogProgram) -> list[ConstraintVerdict]:
    """One verdict per target-relation key."""
    schema = program.target_schema
    if schema is None:
        return []
    records = {
        id(record.rule): record for record in functionality_records(program)
    }
    verdicts = []
    for relation in schema:
        verdict = _certify_relation_key(program, relation, records)
        verdict.span = relation.span
        metric_inc("certify.verdicts", 1, kind="key", verdict=verdict.verdict)
        verdicts.append(verdict)
    return verdicts


def _certify_relation_key(
    program: DatalogProgram,
    relation,
    records: dict[int, FunctionalityRecord],
) -> ConstraintVerdict:
    name = relation.name
    constraint = f"key of {name} ({', '.join(relation.key)})"
    rules = program.rules_for(name)
    key_positions = relation.key_positions()
    proofs: list[str] = []
    unknowns: list[str] = []

    if not rules:
        return ConstraintVerdict(
            kind="key",
            constraint=constraint,
            relation=name,
            verdict=PROVED,
            witness=f"no rule derives {name}; the key holds vacuously",
        )

    # Within-rule functionality (two firings of the same rule).
    for index, rule in enumerate(rules):
        record = records.get(id(rule))
        if record is not None and record.confirmed:
            proofs.append(
                f"rule {index}: key functionally determines the row "
                f"(static FD closure, Algorithm 4 step 2)"
            )
            continue
        outcome = _analyze_pair(
            program, rule, rename_rule(rule), key_positions, name
        )
        if outcome.proof is not None:
            proofs.append(f"rule {index} (self-pair): {outcome.proof}")
        elif outcome.counterexample is not None:
            return _refuted(constraint, name, f"rule {index}", outcome)
        else:
            unknowns.append(
                f"rule {index}: functionality not statically confirmed "
                f"and no counterexample confirmed"
            )

    # Cross-rule pairs.
    for i, first in enumerate(rules):
        for j in range(i + 1, len(rules)):
            outcome = _analyze_pair(
                program, first, rename_rule(rules[j]), key_positions, name
            )
            if outcome.proof is not None:
                proofs.append(f"rules {i}+{j}: {outcome.proof}")
            elif outcome.counterexample is not None:
                return _refuted(constraint, name, f"rules {i}+{j}", outcome)
            else:
                unknowns.append(
                    f"rules {i}+{j}: neither disjointness nor row agreement "
                    f"provable, no counterexample confirmed"
                )

    if unknowns:
        return ConstraintVerdict(
            kind="key",
            constraint=constraint,
            relation=name,
            verdict=UNKNOWN,
            reason="; ".join(unknowns),
        )
    return ConstraintVerdict(
        kind="key",
        constraint=constraint,
        relation=name,
        verdict=PROVED,
        witness="; ".join(proofs),
    )


class _PairOutcome:
    __slots__ = ("proof", "counterexample")

    def __init__(self, proof=None, counterexample=None):
        self.proof = proof
        self.counterexample = counterexample


def _refuted(constraint, name, which, outcome) -> ConstraintVerdict:
    return ConstraintVerdict(
        kind="key",
        constraint=constraint,
        relation=name,
        verdict=REFUTED,
        reason=(
            f"{which} can emit two rows agreeing on the key but differing "
            f"elsewhere; confirmed on both engines"
        ),
        counterexample=outcome.counterexample,
    )


def _analyze_pair(
    program: DatalogProgram,
    first: Rule,
    second: Rule,
    key_positions: tuple[int, ...],
    relation: str,
) -> _PairOutcome:
    """Can firings of ``first`` and ``second`` collide on the key?

    ``second`` must already be variable-disjoint from ``first`` (renamed).
    """
    closure = EgdClosure(schema=program.source_schema)
    closure.add_rule(first)
    closure.add_rule(second)
    for position in key_positions:
        closure.equate(first.head.terms[position], second.head.terms[position])
    closure.saturate()
    if closure.contradiction is not None:
        return _PairOutcome(proof=f"key-equal firings impossible: {closure.contradiction}")
    negation_proof = negation_refutation(closure, (first, second), program)
    if negation_proof is not None:
        return _PairOutcome(
            proof=f"key-equal firings impossible: {negation_proof}"
        )
    disagreeing = [
        position
        for position in range(len(first.head.terms))
        if not closure.terms_equal(
            first.head.terms[position], second.head.terms[position]
        )
    ]
    if not disagreeing:
        return _PairOutcome(
            proof=(
                "key-equal firings provably emit identical rows "
                "(FD closure over the combined bodies)"
            )
        )
    counterexample = confirmed_counterexample(
        program, closure, key_violation_check(relation)
    )
    return _PairOutcome(counterexample=counterexample)
