"""Concrete counterexamples: build, replay on both engines, minimize.

A REFUTED verdict is only as good as its evidence.  This module turns an
:class:`~repro.analysis.certify.closure.EgdClosure` describing a suspected
violation into a *valid* source instance, replays it through **both**
evaluation engines (the tuple-at-a-time reference interpreter and the
compiled batch runtime), and accepts the refutation only when
:func:`repro.model.validation.validate_instance` reports the exact expected
violation on both target instances.  Anything less — the instance cannot be
made valid, or either engine's output satisfies the constraint — downgrades
the verdict to UNKNOWN.  Accepted counterexamples are then greedily
minimized by row removal.

Instance construction:

* every closure class becomes one concrete value — its pinned constant, the
  unlabeled ``NULL`` for null-marked classes, or a fresh distinct constant;
* atoms become rows (FD saturation already merged same-key atoms, so the
  rows satisfy the source keys);
* dangling foreign keys are repaired by a chase that adds referenced rows
  (nullable attributes null, the rest fresh) — terminating because bundled
  source schemas are weakly acyclic, with a depth guard for hand-built ones.
"""

from __future__ import annotations

from itertools import count as _counter
from typing import Callable

from ...datalog.engine import evaluate
from ...datalog.exec import evaluate_batch
from ...datalog.program import DatalogProgram
from ...logic.terms import Term
from ...model.instance import Instance
from ...model.validation import validate_instance
from ...model.values import NULL
from ...obs import metric_inc
from .closure import EgdClosure

#: FK-repair chase rounds before giving up (weakly acyclic schemas need
#: at most the schema's dependency depth; this guards hand-built inputs).
MAX_REPAIR_ROUNDS = 50

#: A predicate over a ValidationReport: "does the expected violation show?"
ViolationCheck = Callable[[object], bool]


def key_violation_check(relation: str) -> ViolationCheck:
    return lambda report: any(
        v.relation == relation for v in report.key_violations
    )


def null_violation_check(relation: str, attribute: str) -> ViolationCheck:
    return lambda report: any(
        v.relation == relation and v.attribute == attribute
        for v in report.null_violations
    )


def fk_violation_check(relation: str, attribute: str) -> ViolationCheck:
    return lambda report: any(
        v.relation == relation and v.attribute == attribute
        for v in report.foreign_key_violations
    )


def instance_from_closure(closure: EgdClosure, schema) -> Instance | None:
    """A concrete source instance realizing the closure's atoms.

    ``None`` when the closure is contradictory or an atom does not fit the
    schema (wrong relation or arity) — no instance realizes it then.
    """
    if closure.contradiction is not None:
        return None
    instance = Instance(schema)
    fresh = _counter()
    values: dict[tuple, object] = {}

    def concrete(term: Term) -> object:
        normal = closure.normalize(term)
        tag = normal[0]
        if tag == "const":
            return normal[1]
        if tag == "null":
            return NULL
        if normal not in values:
            values[normal] = f"v{next(fresh)}"
        return values[normal]

    for atom in closure.atoms:
        if atom.relation not in schema:
            return None
        relation = schema.relation(atom.relation)
        if relation.arity != len(atom.terms):
            return None
        instance.add(atom.relation, tuple(concrete(t) for t in atom.terms))
    if not repair_foreign_keys(instance, fresh):
        return None
    return instance


def repair_foreign_keys(instance: Instance, fresh=None) -> bool:
    """Chase dangling foreign keys by adding referenced rows.

    Added rows carry the dangling value at the key, ``NULL`` at nullable
    attributes and fresh constants elsewhere.  Returns ``False`` when the
    repair does not converge within :data:`MAX_REPAIR_ROUNDS`.
    """
    if fresh is None:
        fresh = _counter()
    schema = instance.schema
    for _ in range(MAX_REPAIR_ROUNDS):
        report = validate_instance(instance)
        if not report.foreign_key_violations:
            return True
        for violation in report.foreign_key_violations:
            referenced = schema.relation(violation.referenced)
            key_attr = referenced.key[0]
            row = []
            for attribute in referenced.attributes:
                if attribute.name == key_attr:
                    row.append(violation.value)
                elif attribute.nullable:
                    row.append(NULL)
                else:
                    row.append(f"r{next(fresh)}")
            instance.add(violation.referenced, tuple(row))
    return False


def violation_reproduces(
    program: DatalogProgram,
    source: Instance,
    check: ViolationCheck,
) -> bool:
    """True iff the violation shows on *both* engines from a valid source."""
    if not validate_instance(source).ok:
        return False
    for engine in (evaluate, evaluate_batch):
        target = engine(program, source).target
        if not check(validate_instance(target)):
            return False
    return True


def minimize(
    program: DatalogProgram,
    source: Instance,
    check: ViolationCheck,
) -> Instance:
    """Greedily drop rows while the counterexample keeps reproducing.

    Row removal can re-dangle foreign keys; a candidate whose removal makes
    the source invalid is simply kept (``violation_reproduces`` insists on
    validity), so the result stays a valid instance.
    """
    current = source
    changed = True
    while changed:
        changed = False
        for relation in current.schema:
            for row in current.relation(relation.name).rows:
                candidate = _without_row(current, relation.name, row)
                if violation_reproduces(program, candidate, check):
                    current = candidate
                    changed = True
    return current


def _without_row(instance: Instance, relation: str, row: tuple) -> Instance:
    copy = Instance(instance.schema)
    for rel_schema in instance.schema:
        for existing in instance.relation(rel_schema.name).rows:
            if rel_schema.name == relation and existing == row:
                continue
            copy.add(rel_schema.name, existing)
    return copy


def confirmed_counterexample(
    program: DatalogProgram,
    closure: EgdClosure,
    check: ViolationCheck,
) -> Instance | None:
    """The full pipeline: build, confirm on both engines, minimize.

    ``None`` means the suspected violation could not be concretely
    demonstrated — the caller must answer UNKNOWN, never REFUTED.
    """
    if program.source_schema is None:
        return None
    source = instance_from_closure(closure, program.source_schema)
    if source is None:
        metric_inc("certify.counterexamples", 1, outcome="unrealizable")
        return None
    if not violation_reproduces(program, source, check):
        metric_inc("certify.counterexamples", 1, outcome="unconfirmed")
        return None
    metric_inc("certify.counterexamples", 1, outcome="confirmed")
    return minimize(program, source, check)
