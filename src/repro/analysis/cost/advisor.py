"""Cost-based join ordering for statistics-free plan compilation.

The batch runtime plans each stratum with *live* row counts, where the
greedy most-bound-first heuristic of :func:`repro.datalog.exec.plan.
order_atoms` works well.  The static path (``repro plan``, golden
snapshots, the SQL-pushdown compiler to come) has no statistics at all —
every relation counts as empty and the greedy order degenerates to "most
constants first, then input order".  The :class:`JoinOrderAdvisor` fills
that gap with the symbolic cost model of :mod:`.bounds`: it enumerates
join orders (exhaustively up to :data:`MAX_EXHAUSTIVE_ATOMS` atoms, the
realistic ceiling for generated rules), prices each order as the sum of
the symbolic intermediate-result bounds at the calibration point, and
returns the provably cheapest one.  Key joins (fan-out one, via declared
source keys) price linear; joins that cannot cover a key price as
multiplications, so connected, key-walking orders — the FK paths of the
paper's §4 correspondences — win automatically.

``order_atoms`` consults an advisor only when its statistics mapping is
empty, so runtime plans are unchanged.
"""

from __future__ import annotations

from itertools import permutations

from ...logic.atoms import RelationalAtom
from ...logic.terms import Variable
from .facts import CostFacts
from .polynomial import ONE, Polynomial

#: Enumerate all orders up to this many body atoms; larger bodies fall
#: back to the greedy heuristic (factorial blow-up is real).
MAX_EXHAUSTIVE_ATOMS = 6


class JoinOrderAdvisor:
    """Prices candidate join orders with symbolic cardinality bounds."""

    def __init__(self, facts: CostFacts):
        self.facts = facts

    @staticmethod
    def for_program(program) -> "JoinOrderAdvisor":
        """An advisor over the program's schema-derived facts only.

        Source keys are the load-bearing facts for join ordering; the
        certifier/flow facts tighten *bounds* but never change fan-outs of
        body (source or intermediate) relations, so the cheap fact base is
        the right one for the planner hot path.
        """
        return JoinOrderAdvisor(CostFacts.for_program(program))

    # -- the cost model ---------------------------------------------------

    def _step_bound(
        self, atom: RelationalAtom, bound_vars: set[Variable]
    ) -> Polynomial:
        """The fan-out bound of joining ``atom`` given already-bound vars."""
        probed: set[int] = set()
        for index, term in enumerate(atom.terms):
            if not isinstance(term, Variable) or term in bound_vars:
                probed.add(index)
        if probed and (
            self.facts.covers_key(atom.relation, probed)
            or len(probed) == len(atom.terms)
        ):
            return ONE
        return Polynomial.var(atom.relation)

    def order_cost(
        self, atoms: tuple[RelationalAtom, ...], order: list[int]
    ) -> tuple[int, int]:
        """Price one order: (total intermediate rows, final degree).

        The cost is the sum over prefix steps of the symbolic bound on the
        rows materialized after the step, evaluated at the calibration
        point — the classic "sum of intermediate result sizes" objective.
        """
        from .bounds import _calibrate

        running = ONE
        total = ZERO_COST
        bound_vars: set[Variable] = set()
        for index in order:
            atom = atoms[index]
            running = running * self._step_bound(atom, bound_vars)
            total = total + running
            bound_vars.update(
                t for t in atom.terms if isinstance(t, Variable)
            )
        return _calibrate(total), running.degree()

    # -- the advisor entry point ------------------------------------------

    def order(self, atoms: tuple[RelationalAtom, ...]) -> list[int] | None:
        """The provably cheapest join order, or ``None`` to keep greedy."""
        if len(atoms) < 2:
            return None
        if len(atoms) > MAX_EXHAUSTIVE_ATOMS:
            return None
        best: list[int] | None = None
        best_key: tuple | None = None
        for candidate in permutations(range(len(atoms))):
            order = list(candidate)
            cost, degree = self.order_cost(atoms, order)
            key = (cost, degree, order)
            if best_key is None or key < best_key:
                best, best_key = order, key
        return best


ZERO_COST = Polynomial.const(0)
