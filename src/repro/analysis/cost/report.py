"""The cost certifier: program-level bounds, PLN diagnostics, reports.

:func:`analyze_cost` drives the whole pass: it compiles the program (with
the cost-advised join order), walks the strata in evaluation order
threading the symbolic size of every already-bounded relation into the
next stratum's rule pipelines (:func:`repro.analysis.cost.bounds.
bound_rule_plan`), and aggregates the per-rule bounds into per-relation
and program-level bounds.  The resulting :class:`CostReport` renders for
``repro plan --cost`` / ``MappingSystem.cost_report()`` and lowers to PLN
diagnostics for ``repro lint --cost`` and SARIF:

========  ========  =====================================================
code      severity  finding
========  ========  =====================================================
PLN001    warning   a join step has no bound probe positions (cross
                    product)
PLN002    warning   a rule's bound is super-linear (total degree >= 2)
PLN003    error     no chase-depth bound exists: every cardinality is
                    unbounded
PLN004    info      the greedy statistics-free join order is strictly
                    dominated by the cost-advised order
========  ========  =====================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ...datalog.exec.plan import ProgramPlan, plan_program, plan_rule
from ...datalog.program import DatalogProgram
from ...obs import metric_inc, metric_set
from ..diagnostics import AnalysisReport, Diagnostic, diagnostic
from .bounds import RuleBound, _calibrate, bound_rule_plan
from .facts import CostFacts
from .polynomial import UNBOUNDED, ZERO, Polynomial, Unbounded


@dataclass
class RelationCost:
    """One derived relation's bound: the sum of its rule bounds."""

    relation: str
    stratum: int
    bound: "Polynomial | Unbounded"
    rules: list[RuleBound] = field(default_factory=list)
    #: True for intermediate (tmp) relations, False for target relations
    intermediate: bool = False

    def degree(self) -> int | None:
        if isinstance(self.bound, Unbounded):
            return None
        return self.bound.degree()

    def to_dict(self) -> dict:
        return {
            "relation": self.relation,
            "stratum": self.stratum,
            "intermediate": self.intermediate,
            "bound": self.bound.render(),
            "degree": self.degree(),
            "rules": [rule.to_dict() for rule in self.rules],
        }


@dataclass
class CostReport:
    """Symbolic cardinality bounds for every rule and derived relation."""

    subject: str = ""
    bounded: bool = True
    depth_bound: int | None = 0
    relations: list[RelationCost] = field(default_factory=list)
    findings: list[Diagnostic] = field(default_factory=list)

    # -- queries ---------------------------------------------------------

    def relation_bound(self, name: str) -> "Polynomial | Unbounded | None":
        for cost in self.relations:
            if cost.relation == name:
                return cost.bound
        return None

    def rule_bounds(self) -> list[RuleBound]:
        return [rule for cost in self.relations for rule in cost.rules]

    def max_degree(self) -> int | None:
        """The largest relation-bound degree; ``None`` when unbounded."""
        if not self.bounded:
            return None
        return max((cost.degree() or 0 for cost in self.relations), default=0)

    @property
    def ok(self) -> bool:
        return self.diagnostics().ok

    def diagnostics(self) -> AnalysisReport:
        report = AnalysisReport(subject=self.subject)
        report.extend(self.findings)
        return report

    # -- rendering -------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "subject": self.subject,
            "bounded": self.bounded,
            "depth_bound": self.depth_bound,
            "max_degree": self.max_degree(),
            "relations": [cost.to_dict() for cost in self.relations],
            "diagnostics": [
                finding.render() for finding in self.findings
            ],
        }

    def render(self) -> str:
        lines = []
        title = "cost report"
        if self.subject:
            title += f" for {self.subject}"
        lines.append(title)
        if not self.bounded:
            lines.append("chase-depth bound: none (PLN003: unbounded)")
        else:
            lines.append(f"chase-depth bound: {self.depth_bound}")
        for cost in self.relations:
            kind = "tmp" if cost.intermediate else "target"
            degree = cost.degree()
            suffix = "" if degree is None else f"  [degree {degree}]"
            lines.append(
                f"  {cost.relation} ({kind}, stratum {cost.stratum}): "
                f"{cost.bound.render()}{suffix}"
            )
            for index, rule in enumerate(cost.rules):
                flags = []
                if rule.key_refined:
                    flags.append("key-refined")
                if rule.cross_product:
                    flags.append("cross-product")
                note = f" ({', '.join(flags)})" if flags else ""
                lines.append(
                    f"    rule {index}: {rule.total.render()}{note}"
                )
                for op in rule.operators:
                    why = f"  -- {op.note}" if op.note else ""
                    lines.append(
                        f"      {op.description} => {op.bound.render()}{why}"
                    )
        if self.findings:
            lines.append("diagnostics:")
            for finding in self.findings:
                lines.append(f"  {finding.render()}")
        degree = self.max_degree()
        summary = (
            "summary: unbounded"
            if degree is None
            else f"summary: max degree {degree}"
        )
        summary += (
            f", {len(self.relations)} relation(s), "
            f"{len(self.rule_bounds())} rule bound(s), "
            f"{len(self.findings)} diagnostic(s)"
        )
        lines.append(summary)
        return "\n".join(lines)


def _relation_span(program: DatalogProgram, relation: str):
    target = program.target_schema
    if target is not None and relation in target:
        return target.relation(relation).span
    return None


def _pipeline_cost(bound: RuleBound) -> int:
    """Total calibrated intermediate rows of the scan/join prefix."""
    return sum(
        _calibrate(op.bound)
        for op in bound.operators
        if op.kind in ("scan", "join")
    )


def analyze_cost(
    program: DatalogProgram,
    subject: str = "",
    facts: CostFacts | None = None,
    plan: ProgramPlan | None = None,
) -> CostReport:
    """Bound every operator, rule and derived relation of ``program``.

    ``facts`` defaults to the schema-only fact base; pass the certifier/
    flow-enriched facts (``MappingSystem.cost_report`` does) for tighter
    bounds.  ``plan`` defaults to the cost-advised static compilation, the
    same plan ``repro plan`` shows and the golden snapshots pin.
    """
    if facts is None:
        facts = CostFacts.for_program(program)
    report = CostReport(subject=subject, depth_bound=facts.chase_depth_bound)

    if facts.chase_depth_bound is None:
        report.bounded = False
        for index, relation in enumerate(program.defined_relations()):
            report.relations.append(
                RelationCost(
                    relation=relation,
                    stratum=index,
                    bound=UNBOUNDED,
                    intermediate=relation in program.intermediates,
                )
            )
        report.findings.append(
            diagnostic(
                "PLN003",
                "no chase-depth bound exists for the program; every "
                "derived cardinality is unbounded",
                subject=subject or "program",
            )
        )
        _emit_metrics(report)
        return report

    if plan is None:
        plan = plan_program(program)

    sizes: dict[str, Polynomial] = {}
    source = program.source_schema
    if source is not None:
        for relation in source:
            sizes[relation.name] = Polynomial.var(relation.name)

    for stratum, relation in enumerate(plan.order):
        cost = RelationCost(
            relation=relation,
            stratum=stratum,
            bound=ZERO,
            intermediate=relation in program.intermediates,
        )
        total = ZERO
        span = _relation_span(program, relation)
        for rule_plan in plan.plans[relation]:
            bound = bound_rule_plan(rule_plan, sizes, facts)
            cost.rules.append(bound)
            total = total + bound.total
            if bound.cross_product:
                report.findings.append(
                    diagnostic(
                        "PLN001",
                        f"{relation}: cross-product join in the compiled "
                        f"plan of rule {rule_plan.rule!r}",
                        subject=relation,
                        span=span,
                    )
                )
            if bound.degree() >= 2:
                report.findings.append(
                    diagnostic(
                        "PLN002",
                        f"{relation}: rule bound {bound.total.render()} "
                        f"has degree {bound.degree()} in the source sizes "
                        f"(rule {rule_plan.rule!r})",
                        subject=relation,
                        span=span,
                    )
                )
            greedy_plan = plan_rule(rule_plan.rule, None)
            if _plan_order(greedy_plan) != _plan_order(rule_plan):
                greedy_bound = bound_rule_plan(greedy_plan, sizes, facts)
                advised_cost = _pipeline_cost(bound)
                greedy_cost = _pipeline_cost(greedy_bound)
                if advised_cost < greedy_cost:
                    report.findings.append(
                        diagnostic(
                            "PLN004",
                            f"{relation}: greedy join order costs "
                            f"{greedy_cost} rows at the calibration point "
                            f"vs {advised_cost} for the cost-advised "
                            f"order (rule {rule_plan.rule!r})",
                            subject=relation,
                            span=span,
                        )
                    )
        cost.bound = total
        sizes[relation] = total
        report.relations.append(cost)

    _emit_metrics(report)
    return report


def _plan_order(rule_plan) -> list[str]:
    """The relation sequence of a compiled pipeline (order fingerprint)."""
    order = []
    if rule_plan.scan is not None:
        order.append(rule_plan.scan.relation)
    order.extend(join.relation for join in rule_plan.joins)
    return order


def _emit_metrics(report: CostReport) -> None:
    metric_inc("cost.runs", 1, bounded=str(report.bounded).lower())
    metric_inc("cost.relations", len(report.relations))
    metric_inc("cost.rules", len(report.rule_bounds()))
    for finding in report.findings:
        metric_inc("cost.diagnostics", 1, code=finding.code)
    degree = report.max_degree()
    if degree is not None:
        metric_set("cost.max_degree", degree, subject=report.subject or "-")
