"""Abstract interpretation of compiled operator trees into row-count bounds.

The pass walks each rule's ``scan -> join* -> filter* -> antijoin* ->
project`` pipeline (:mod:`repro.datalog.exec.plan`) and threads a symbolic
:class:`~repro.analysis.cost.polynomial.Polynomial` upper bound on the rows
flowing between operators, in the per-source-relation size variables:

* a **scan** of relation ``R`` is bounded by ``size(R)`` — or ``1`` when
  its constant filters pin a full known key, or ``0`` when it demands
  ``null`` at a never-null position;
* a **join** multiplies the incoming bound by the relation's *fan-out*:
  ``1`` when the probe positions cover a known key of the probed relation
  (a proved key bounds distinct matches; probing every position of a
  set-semantics relation is the degenerate key), else ``size(R)``;
* **filters** pass rows through unchanged — except a ``= null`` test over
  a position the nullability fixpoint proves never-null (or a ``!= null``
  test over an always-null position), which passes zero rows;
* **antijoins** only discard rows;
* the **project** closes the rule.  When the rule is statically functional
  (flow engine, Algorithm 4) or its head relation's key is PROVED
  (certifier), the rule's distinct output is also bounded by the number of
  distinct key-expression values — the product of the sizes of the body
  atoms binding the key slots — and the smaller of the two sound bounds
  (at the calibration point) is kept.

Every bound on derived relations is fully substituted down to source
variables, so ``evaluate(source sizes)`` needs nothing else.  Soundness —
``bound >= rows_out`` for every operator of every EXPLAIN ANALYZE profile
on both engines, over every valid source instance — is asserted by
``tests/test_cost_calibration.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from ...datalog.exec.plan import JoinOp, RulePlan, ScanOp
from ...datalog.program import Rule
from .facts import CostFacts
from .polynomial import ONE, ZERO, Polynomial

#: The canonical calibration point used to order incomparable sound bounds:
#: every relation is assumed to hold this many rows.
CALIBRATION_SIZE = 1000


def _calibrate(bound: Polynomial) -> int:
    return bound.evaluate(
        {name: CALIBRATION_SIZE for name in bound.variables()}
    )


def tighter(left: Polynomial, right: Polynomial) -> Polynomial:
    """The preferred of two *individually sound* bounds (deterministic)."""
    key_left = (_calibrate(left), left.degree(), left.render())
    key_right = (_calibrate(right), right.degree(), right.render())
    return left if key_left <= key_right else right


@dataclass
class OperatorBound:
    """One operator's static output bound (mirrors ``OperatorStats``)."""

    kind: str  # scan | join | filter | antijoin | project
    description: str  # the operator's static rendering (plan text)
    bound: Polynomial
    #: why the bound is what it is ("key join on C3", "never-null filter")
    note: str = ""

    def to_dict(self) -> dict:
        data = {
            "kind": self.kind,
            "operator": self.description,
            "bound": self.bound.render(),
            "degree": self.bound.degree(),
        }
        if self.note:
            data["note"] = self.note
        return data


@dataclass
class RuleBound:
    """One rule pipeline's bounds, operator by operator."""

    rule: Rule
    relation: str
    operators: list[OperatorBound] = field(default_factory=list)
    #: bound on the rule's distinct derived rows
    total: Polynomial = ZERO
    #: True when the distinct-key refinement replaced the pipeline bound
    key_refined: bool = False
    #: True when some join has no bound probe positions (cross product)
    cross_product: bool = False

    def degree(self) -> int:
        return self.total.degree()

    def to_dict(self) -> dict:
        return {
            "relation": self.relation,
            "rule": repr(self.rule),
            "bound": self.total.render(),
            "degree": self.degree(),
            "key_refined": self.key_refined,
            "cross_product": self.cross_product,
            "operators": [op.to_dict() for op in self.operators],
        }


def _slot_origins(plan: RulePlan) -> dict[int, tuple[str, int, int]]:
    """slot -> (relation, position, atom ordinal) from the captures."""
    origins: dict[int, tuple[str, int, int]] = {}
    ordinal = 0
    if plan.scan is not None:
        for position, slot in plan.scan.capture:
            origins[slot] = (plan.scan.relation, position, ordinal)
        ordinal += 1
    for join in plan.joins:
        for position, slot in join.capture:
            origins[slot] = (join.relation, position, ordinal)
        ordinal += 1
    return origins


def _expr_slots(expr) -> set[int]:
    kind = expr[0]
    if kind == "slot":
        return {expr[1]}
    if kind == "skolem":
        slots: set[int] = set()
        for arg in expr[2]:
            slots |= _expr_slots(arg)
        return slots
    return set()


def _scan_bound(
    scan: ScanOp, sizes: Mapping[str, Polynomial], facts: CostFacts
) -> tuple[Polynomial, str]:
    for position in scan.null_eq:
        if facts.never_null(scan.relation, position):
            return ZERO, (
                f"null demanded at never-null {scan.relation}[{position}]"
            )
    pinned = {position for position, _ in scan.const_eq}
    if pinned and facts.covers_key(scan.relation, pinned):
        return ONE, f"constants pin a key of {scan.relation}"
    return sizes.get(scan.relation, ZERO), ""


def _join_fanout(
    join: JoinOp, sizes: Mapping[str, Polynomial], facts: CostFacts
) -> tuple[Polynomial, str]:
    for position, expr in zip(join.key_positions, join.key_exprs):
        if expr == ("null",) and facts.never_null(join.relation, position):
            return ZERO, (
                f"null probed at never-null {join.relation}[{position}]"
            )
    probed = set(join.key_positions)
    if facts.covers_key(join.relation, probed):
        return ONE, f"probe covers a key of {join.relation}"
    arity = len(join.key_positions) + len(join.capture) + len(join.same)
    if probed and len(probed) == arity:
        # Every position probed: set semantics admit at most one match.
        return ONE, f"probe covers every position of {join.relation}"
    return sizes.get(join.relation, ZERO), ""


def _filter_bound(filter_op, plan: RulePlan, facts: CostFacts) -> str | None:
    """A reason string when the filter provably passes zero rows."""
    origins = _slot_origins(plan)
    if filter_op.kind not in ("null", "nonnull"):
        return None
    slots = _expr_slots(filter_op.left)
    for slot in slots:
        origin = origins.get(slot)
        if origin is None:
            continue
        relation, position, _ = origin
        if filter_op.kind == "null" and facts.never_null(relation, position):
            return f"s{slot} bound at never-null {relation}[{position}]"
        if filter_op.kind == "nonnull" and facts.always_null(
            relation, position
        ):
            return f"s{slot} bound at always-null {relation}[{position}]"
    return None


def _distinct_key_bound(
    plan: RulePlan,
    sizes: Mapping[str, Polynomial],
    facts: CostFacts,
    key_positions: tuple[int, ...],
) -> Polynomial | None:
    """Bound on distinct key-expression values the rule can emit."""
    origins = _slot_origins(plan)
    slots: set[int] = set()
    for position in key_positions:
        if position >= len(plan.project.exprs):
            return None
        slots |= _expr_slots(plan.project.exprs[position])
    atoms: dict[int, str] = {}
    for slot in slots:
        origin = origins.get(slot)
        if origin is None:
            return None
        relation, _, ordinal = origin
        atoms[ordinal] = relation
    bound = ONE
    for ordinal in sorted(atoms):
        bound = bound * sizes.get(atoms[ordinal], ZERO)
    return bound


def bound_rule_plan(
    plan: RulePlan,
    sizes: Mapping[str, Polynomial],
    facts: CostFacts,
) -> RuleBound:
    """Thread a symbolic row bound through one compiled rule pipeline.

    ``sizes`` maps every readable relation to its symbolic size — source
    relations to their own variable, already-bounded intermediates to their
    (source-variable) bound polynomial — so the returned bounds mention
    source sizes only.
    """
    result = RuleBound(rule=plan.rule, relation=plan.project.relation)
    if plan.scan is None:
        current = ONE  # empty body: at most the single empty binding
    else:
        current, note = _scan_bound(plan.scan, sizes, facts)
        result.operators.append(
            OperatorBound("scan", plan.scan.render(), current, note)
        )
    for join in plan.joins:
        fanout, note = _join_fanout(join, sizes, facts)
        if not join.key_positions:
            result.cross_product = True
            note = f"cross product with {join.relation} (no bound positions)"
        current = current * fanout
        result.operators.append(
            OperatorBound("join", join.render(), current, note)
        )
    for filter_op in plan.filters:
        reason = _filter_bound(filter_op, plan, facts)
        if reason is not None:
            current = ZERO
        result.operators.append(
            OperatorBound(
                "filter", filter_op.render(), current, reason or ""
            )
        )
    for antijoin in plan.antijoins:
        result.operators.append(
            OperatorBound("antijoin", antijoin.render(), current)
        )

    total = current
    note = ""
    key_positions = _head_key_positions(plan, facts)
    if key_positions is not None:
        refinement = _distinct_key_bound(plan, sizes, facts, key_positions)
        if refinement is not None and tighter(total, refinement) is refinement:
            result.key_refined = True
            total = refinement
            note = "distinct-key refinement"
    result.operators.append(
        OperatorBound("project", plan.project.render(), total, note)
    )
    result.total = total
    return result


def _head_key_positions(
    plan: RulePlan, facts: CostFacts
) -> tuple[int, ...] | None:
    """The head key positions when the distinct-key refinement is sound.

    Sound in two independent cases: the rule itself is statically
    functional (at most one distinct row per key value), or the head
    relation's key constraint is PROVED (no reachable instance holds two
    distinct rows with one key value, so distinct rows <= distinct keys).
    """
    relation = plan.project.relation
    key = facts.head_keys.get(relation)
    if key is None:
        return None
    if (
        id(plan.rule) in facts.functional_rules
        or relation in facts.proved_key_relations
    ):
        return key
    return None
