"""Symbolic cardinality polynomials over per-relation size variables.

The cost certifier expresses every bound as a multivariate polynomial with
non-negative integer coefficients in the *source relation sizes*: the
variable ``|P3|`` stands for the number of rows of source relation ``P3``.
Non-negative coefficients keep every operation sound over the non-negative
orthant (instance sizes are never negative):

* ``p + q`` bounds the union of two row sets bounded by ``p`` and ``q``;
* ``p * q`` bounds a join whose fan-out is bounded by ``q`` per row;
* :meth:`Polynomial.sup` (coefficient-wise maximum) bounds ``max(p, q)``;
* :meth:`Polynomial.dominates` is the *sufficient* coefficient-wise test
  for ``p(x) >= q(x)`` at every non-negative ``x``.

Rendering is deterministic (monomials sorted by total degree, then
variable names), so bounds can be pinned in golden snapshots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

#: A monomial: sorted ``(variable, exponent)`` pairs, exponents >= 1.
Monomial = tuple[tuple[str, int], ...]


def _mul_monomials(left: Monomial, right: Monomial) -> Monomial:
    powers: dict[str, int] = dict(left)
    for name, exponent in right:
        powers[name] = powers.get(name, 0) + exponent
    return tuple(sorted(powers.items()))


def _monomial_degree(monomial: Monomial) -> int:
    return sum(exponent for _, exponent in monomial)


def _render_monomial(monomial: Monomial) -> str:
    factors = []
    for name, exponent in monomial:
        factor = f"|{name}|"
        if exponent > 1:
            factor += f"^{exponent}"
        factors.append(factor)
    return "*".join(factors)


@dataclass(frozen=True)
class Polynomial:
    """An immutable polynomial with non-negative integer coefficients."""

    #: monomial -> coefficient; no zero coefficients, () is the constant term
    terms: tuple[tuple[Monomial, int], ...]

    # -- constructors ----------------------------------------------------

    @staticmethod
    def _build(mapping: Mapping[Monomial, int]) -> "Polynomial":
        cleaned = {m: c for m, c in mapping.items() if c}
        for coefficient in cleaned.values():
            if coefficient < 0:
                raise ValueError("cardinality polynomials are non-negative")
        ordered = sorted(
            cleaned.items(),
            key=lambda item: (_monomial_degree(item[0]), item[0]),
        )
        return Polynomial(terms=tuple(ordered))

    @staticmethod
    def const(value: int) -> "Polynomial":
        return Polynomial._build({(): value} if value else {})

    @staticmethod
    def var(name: str) -> "Polynomial":
        return Polynomial._build({((name, 1),): 1})

    # -- algebra ---------------------------------------------------------

    def __add__(self, other: "Polynomial") -> "Polynomial":
        combined = dict(self.terms)
        for monomial, coefficient in other.terms:
            combined[monomial] = combined.get(monomial, 0) + coefficient
        return Polynomial._build(combined)

    def __mul__(self, other: "Polynomial") -> "Polynomial":
        product: dict[Monomial, int] = {}
        for left, lc in self.terms:
            for right, rc in other.terms:
                monomial = _mul_monomials(left, right)
                product[monomial] = product.get(monomial, 0) + lc * rc
        return Polynomial._build(product)

    def sup(self, other: "Polynomial") -> "Polynomial":
        """Coefficient-wise maximum: a sound upper bound of ``max(p, q)``."""
        combined = dict(self.terms)
        for monomial, coefficient in other.terms:
            combined[monomial] = max(combined.get(monomial, 0), coefficient)
        return Polynomial._build(combined)

    # -- queries ---------------------------------------------------------

    @property
    def is_zero(self) -> bool:
        return not self.terms

    def degree(self) -> int:
        """Total degree (0 for constants and the zero polynomial)."""
        return max(
            (_monomial_degree(m) for m, _ in self.terms), default=0
        )

    def variables(self) -> set[str]:
        return {name for monomial, _ in self.terms for name, _ in monomial}

    def evaluate(self, sizes: Mapping[str, int], default: int = 0) -> int:
        """The bound's value at concrete relation sizes."""
        total = 0
        for monomial, coefficient in self.terms:
            value = coefficient
            for name, exponent in monomial:
                value *= sizes.get(name, default) ** exponent
            total += value
        return total

    def dominates(self, other: "Polynomial") -> bool:
        """Sufficient test: every coefficient of ``other`` is covered.

        ``p.dominates(q)`` implies ``p(x) >= q(x)`` for all non-negative
        ``x`` (all terms are non-negative); the converse need not hold.
        """
        mine = dict(self.terms)
        return all(
            mine.get(monomial, 0) >= coefficient
            for monomial, coefficient in other.terms
        )

    def substitute(self, bindings: Mapping[str, "Polynomial"]) -> "Polynomial":
        """Replace variables by polynomials (intermediate-size expansion)."""
        result = ZERO
        for monomial, coefficient in self.terms:
            term = Polynomial.const(coefficient)
            for name, exponent in monomial:
                factor = bindings.get(name, Polynomial.var(name))
                for _ in range(exponent):
                    term = term * factor
            result = result + term
        return result

    # -- rendering -------------------------------------------------------

    def render(self) -> str:
        if not self.terms:
            return "0"
        parts = []
        for monomial, coefficient in self.terms:
            if not monomial:
                parts.append(str(coefficient))
            elif coefficient == 1:
                parts.append(_render_monomial(monomial))
            else:
                parts.append(f"{coefficient}*{_render_monomial(monomial)}")
        return " + ".join(parts)

    def __str__(self) -> str:
        return self.render()


ZERO = Polynomial.const(0)
ONE = Polynomial.const(1)


class Unbounded:
    """The top element: no finite polynomial bound exists (PLN003).

    Only produced when the program-level termination certificate is
    unbounded; arithmetic is absorbing so a single unbounded input taints
    every downstream bound.
    """

    _instance: "Unbounded | None" = None

    def __new__(cls) -> "Unbounded":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def render(self) -> str:
        return "unbounded"

    def __str__(self) -> str:
        return "unbounded"

    def __repr__(self) -> str:
        return "UNBOUNDED"


UNBOUNDED = Unbounded()

#: A cardinality bound: a polynomial, or no bound at all.
Bound = "Polynomial | Unbounded"
