"""The static facts the cardinality pass consumes.

The bounds are only as tight as the facts feeding them, and every fact has
a proof obligation discharged elsewhere in the code base:

* **source keys** — declared on the source schema; valid source instances
  (the standing premise of the whole pipeline, enforced by
  ``validate_instance``) satisfy them, so a join probing a full key of a
  source relation has fan-out at most one;
* **proved target keys** — the PR 7 certifier's ``PROVED`` key verdicts:
  in *every* reachable target instance no two distinct rows of the
  relation share a key value, so the relation's size is bounded by the
  number of distinct key values any rule can emit;
* **proved foreign keys** — ``PROVED`` FK verdicts; the join-order advisor
  prefers walking these edges (they are exactly the joins the paper's
  correspondences induce), they never loosen a bound;
* **functional rules** — the flow engine's static replay of Algorithm 4's
  functionality check: a confirmed rule derives at most one row per
  distinct key value, even when the relation-level key is not (yet)
  proved;
* **nullability** — the solved three-valued fixpoint: a ``= null`` filter
  over a position proved ``NO`` (never null) passes zero rows, and
  symmetrically for ``!= null`` over ``YES``;
* **chase-depth bound** — the TRM001 termination certificate; ``None``
  means no bound exists and every cardinality collapses to ``unbounded``
  (PLN003).

:func:`CostFacts.for_program` assembles the conservative, schema-only
subset (no certifier, no flow engine) — sound but looser;
``MappingSystem.cost_report`` builds the full set from the cached
certification and flow reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ...datalog.program import DatalogProgram

#: Lattice constants mirrored from repro.analysis.flow.lattice (string values).
_NO = "NO"
_YES = "YES"


@dataclass
class CostFacts:
    """Everything the abstract interpreter may assume about instances."""

    #: relation -> frozenset of key position sets known to hold
    keys: dict[str, tuple[tuple[int, ...], ...]] = field(default_factory=dict)
    #: target relation -> declared key positions (for the head refinement)
    head_keys: dict[str, tuple[int, ...]] = field(default_factory=dict)
    #: target relations whose key constraint the certifier PROVED
    proved_key_relations: frozenset[str] = frozenset()
    #: (relation, attribute-position) pairs of PROVED foreign keys
    foreign_keys: tuple[tuple[str, int], ...] = ()
    #: id(rule) of rules whose functionality is statically confirmed
    functional_rules: frozenset[int] = frozenset()
    #: (relation, position) -> nullability lattice value ("NO"/"YES"/...)
    nullability: dict[tuple[str, int], str] = field(default_factory=dict)
    #: positions declared NOT NULL by a schema (source or target)
    nonnull_positions: frozenset[tuple[str, int]] = frozenset()
    #: the TRM001 chase-depth bound; None = unbounded (PLN003)
    chase_depth_bound: int | None = 0

    def key_sets(self, relation: str) -> tuple[tuple[int, ...], ...]:
        return self.keys.get(relation, ())

    def covers_key(self, relation: str, positions: set[int]) -> bool:
        """True when ``positions`` includes some known key of ``relation``."""
        return any(
            set(key) <= positions for key in self.key_sets(relation)
        )

    def never_null(self, relation: str, position: int) -> bool:
        if (relation, position) in self.nonnull_positions:
            return True
        return self.nullability.get((relation, position)) == _NO

    def always_null(self, relation: str, position: int) -> bool:
        return self.nullability.get((relation, position)) == _YES

    def is_fk_position(self, relation: str, position: int) -> bool:
        return (relation, position) in self.foreign_keys

    # -- construction ----------------------------------------------------

    @staticmethod
    def for_program(
        program: DatalogProgram,
        certification=None,
        flow=None,
    ) -> "CostFacts":
        """Assemble the fact base for one generated program.

        Without ``certification`` / ``flow`` reports only schema-derived
        facts are used: source keys, schema NOT NULL positions, source
        foreign keys, and the termination certificate (computed here — it
        is cheap and the precondition of everything else).
        """
        keys: dict[str, tuple[tuple[int, ...], ...]] = {}
        nonnull: set[tuple[str, int]] = set()
        fks: list[tuple[str, int]] = []
        for schema in (program.source_schema,):
            if schema is None:
                continue
            for relation in schema:
                keys[relation.name] = (relation.key_positions(),)
                for position, attribute in enumerate(relation.attributes):
                    if not attribute.nullable:
                        nonnull.add((relation.name, position))
            for fk in schema.foreign_keys:
                relation = schema.relation(fk.relation)
                fks.append((fk.relation, relation.position(fk.attribute)))

        target = program.target_schema
        head_keys: dict[str, tuple[int, ...]] = {}
        if target is not None:
            for relation in target:
                head_keys[relation.name] = relation.key_positions()

        functional: set[int] = set()
        nullability: dict[tuple[str, int], str] = {}
        proved_keys: set[str] = set()
        if certification is not None:
            proved_keys = {
                verdict.relation
                for verdict in certification.verdicts
                if verdict.kind == "key" and verdict.verdict == "PROVED"
            }
            if target is not None:
                for name in proved_keys:
                    if name in target:
                        keys.setdefault(
                            name, (target.relation(name).key_positions(),)
                        )
            for verdict in certification.verdicts:
                if (
                    verdict.kind == "foreign-key"
                    and verdict.verdict == "PROVED"
                    and target is not None
                    and verdict.relation in target
                ):
                    relation = target.relation(verdict.relation)
                    attribute = verdict.constraint.split(".", 1)[-1].split(" ")[0]
                    if relation.has_attribute(attribute):
                        fks.append(
                            (verdict.relation, relation.position(attribute))
                        )
        if flow is not None:
            for record in flow.functionality:
                if record.confirmed:
                    functional.add(id(record.rule))
            solved = flow.nullability
            for relation in program.defined_relations():
                arity = program.relation_arity(relation) or 0
                for position in range(arity):
                    nullability[(relation, position)] = solved.value(
                        relation, position
                    )

        certificate = getattr(certification, "termination", None)
        if certificate is None:
            from ..certify.termination import certify_termination

            certificate = certify_termination(program)
        return CostFacts(
            keys=keys,
            head_keys=head_keys,
            proved_key_relations=frozenset(proved_keys),
            foreign_keys=tuple(sorted(set(fks))),
            functional_rules=frozenset(functional),
            nullability=nullability,
            nonnull_positions=frozenset(nonnull),
            chase_depth_bound=(
                certificate.depth_bound if certificate.bounded else None
            ),
        )
