"""Static cost & cardinality certifier for compiled plans.

The package turns the facts the rest of the analyzer already proves —
declared source keys, PROVED target keys and foreign keys (certifier),
statically functional rules and the nullability fixpoint (flow engine),
and the chase-depth bound (TRM001) — into *sound symbolic upper bounds*
on the number of rows every operator, rule, and derived relation of a
compiled program can produce, expressed as polynomials in the source
relation sizes.  On top of the bounds sit the PLN001–PLN004 diagnostics
and the cost-based join-order advisor the statistics-free planner
consults.

Entry points:

* :func:`analyze_cost` — bound one program; schema-only facts by default.
* :class:`CostFacts` — the assumptions base (``CostFacts.for_program``).
* :class:`JoinOrderAdvisor` — symbolic join ordering for the static path.
* :class:`Polynomial` / :data:`UNBOUNDED` — the bound algebra.

``MappingSystem.cost_report()`` wires the certifier and flow engine in;
``repro plan --cost`` and ``repro lint --cost`` are the CLI surfaces.
Soundness against EXPLAIN ANALYZE actuals on both engines is asserted by
``tests/test_cost_calibration.py``.
"""

from .advisor import JoinOrderAdvisor
from .bounds import (
    CALIBRATION_SIZE,
    OperatorBound,
    RuleBound,
    bound_rule_plan,
    tighter,
)
from .facts import CostFacts
from .polynomial import ONE, UNBOUNDED, ZERO, Polynomial, Unbounded
from .report import CostReport, RelationCost, analyze_cost

__all__ = [
    "CALIBRATION_SIZE",
    "CostFacts",
    "CostReport",
    "JoinOrderAdvisor",
    "ONE",
    "OperatorBound",
    "Polynomial",
    "RelationCost",
    "RuleBound",
    "UNBOUNDED",
    "Unbounded",
    "ZERO",
    "analyze_cost",
    "bound_rule_plan",
    "tighter",
]
