"""Mapping-level checks (the ``MAP*`` codes, §4–§6).

Two layers, by cost:

* *static* checks read only the problem — correspondence well-formedness
  (``MAP004``) and coverage of mandatory target attributes (``MAP001``);
* *deep* checks run the paper's query-generation machinery without raising —
  Algorithm 4's functionality check per unitary mapping (``MAP003``) and its
  hard key-conflict identification (``MAP002``).  A pipeline stage that fails
  outright is reported as ``MAP005`` instead of propagating.
"""

from __future__ import annotations

from ..core.conflicts import find_all_conflicts
from ..core.functionality import check_functionality
from ..core.pipeline import MappingProblem
from ..core.query_generation import rewrite_to_unitary
from ..core.schema_mapping import NOVEL, generate_schema_mapping
from ..core.skolem import skolemize_schema_mapping
from ..errors import ReproError
from .diagnostics import Diagnostic, diagnostic


def correspondence_diagnostics(problem: MappingProblem) -> list[Diagnostic]:
    """``MAP004`` for every correspondence that fails validation."""
    found: list[Diagnostic] = []
    for item in problem.correspondences:
        try:
            item.validate(problem.source_schema, problem.target_schema)
        except ReproError as error:
            found.append(
                diagnostic(
                    "MAP004",
                    f"invalid correspondence {item!r}: {error}",
                    span=getattr(item, "span", None),
                    subject=repr(item),
                )
            )
    return found


def coverage_diagnostics(problem: MappingProblem) -> list[Diagnostic]:
    """``MAP001`` for mandatory target attributes no correspondence reaches.

    Only relations some correspondence targets are considered — a target
    relation with no correspondences at all simply stays empty (no mapping is
    generated for it), which is not a defect.  Key attributes are exempt:
    inventing key values with Skolem functors is the intended mechanism for
    object identity (§5.1), not a coverage gap.
    """
    reached: dict[str, set[str]] = {}
    for item in problem.correspondences:
        for relation, attribute in item.target.steps:
            reached.setdefault(relation, set()).add(attribute)
    found: list[Diagnostic] = []
    for relation_name in sorted(reached):
        if relation_name not in problem.target_schema:
            continue  # MAP004 already reports the unknown relation
        relation = problem.target_schema.relation(relation_name)
        key = set(relation.key)
        for attribute in relation.attributes:
            if attribute.nullable or attribute.name in key:
                continue
            if attribute.name in reached[relation_name]:
                continue
            found.append(
                diagnostic(
                    "MAP001",
                    f"mandatory target attribute {relation_name}."
                    f"{attribute.name} is not covered by any correspondence; "
                    "every generated mapping must invent its value",
                    span=getattr(attribute, "span", None),
                    subject=f"{relation_name}.{attribute.name}",
                )
            )
    return found


def key_management_diagnostics(
    problem: MappingProblem, algorithm: str = NOVEL
) -> list[Diagnostic]:
    """``MAP002`` / ``MAP003`` / ``MAP005`` via Algorithm 4's own machinery.

    Runs schema-mapping generation, skolemization and the unitary rewrite,
    then — instead of Algorithm 4's "signal an error and stop" — reports
    every functionality violation and every hard key conflict found.
    """
    source = problem.source_schema
    target = problem.target_schema
    try:
        mapping = generate_schema_mapping(
            source, target, problem.correspondences, algorithm=algorithm
        ).schema_mapping
        skolemized = skolemize_schema_mapping(
            list(mapping), target, use_null_for_nullable=(algorithm == NOVEL)
        )
        unitary = rewrite_to_unitary(skolemized)
    except ReproError as error:
        return [
            diagnostic(
                "MAP005",
                f"schema-mapping generation failed for {problem.name!r}: {error}",
                subject=problem.name,
            )
        ]

    found: list[Diagnostic] = []
    for item in unitary:
        violation = check_functionality(item, source, target)
        if violation is not None:
            found.append(
                diagnostic("MAP003", str(violation), subject=item.name)
            )
    for conflict in find_all_conflicts(unitary, source, target):
        if conflict.is_hard:
            found.append(
                diagnostic(
                    "MAP002",
                    f"unresolvable hard key conflict: {conflict}; both "
                    "mappings copy source values into "
                    f"{conflict.left.consequent.relation}.{conflict.attribute}",
                    subject=f"{conflict.left.consequent.relation}."
                    f"{conflict.attribute}",
                )
            )
    return found


def lint_mapping(
    problem: MappingProblem, deep: bool = True, algorithm: str = NOVEL
) -> list[Diagnostic]:
    """All ``MAP*`` diagnostics of one mapping problem.

    Static checks always run; the deep (Algorithm 4) checks are skipped when
    ``deep`` is false or when the static checks already found an invalid
    correspondence (the pipeline would only fail with the same root cause).
    """
    invalid = correspondence_diagnostics(problem)
    found = invalid + coverage_diagnostics(problem)
    if deep and not invalid and problem.correspondences:
        found.extend(key_management_diagnostics(problem, algorithm=algorithm))
    return found
