"""Verdicts and reports of the SQL translation validator.

Every INSERT statement of a compiled pipeline receives exactly one
:class:`SqlStatementVerdict`:

* ``PROVED`` carries the two containment witnesses (rule ⊆ lowered SQL and
  lowered SQL ⊆ rule) — a machine-checked certificate that the statement
  computes exactly the rule's tuples;
* ``UNKNOWN`` means lowering failed or the containment engine was
  inconclusive — the differential harness remains the arbiter.

Structural findings (dialect-unsafe constructs, ambiguous encodings,
missing dedup, order hazards) attach to the report as plain diagnostics.
A :class:`SqlCheckReport` aggregates everything and renders as text, JSON
or an :class:`~repro.analysis.diagnostics.AnalysisReport` for SARIF export
and ``lint --sql``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..diagnostics import AnalysisReport, Diagnostic, diagnostic

PROVED = "PROVED"
UNKNOWN = "UNKNOWN"


@dataclass
class SqlStatementVerdict:
    """One compiled INSERT and what the validator concluded about it."""

    index: int  # position in the pipeline (0-based, inserts only)
    relation: str  # the table the statement writes
    rule: str  # the originating Datalog rule, rendered
    sql: str  # the statement, rendered for the default dialect
    verdict: str
    witness: str = ""  # both containment witnesses (PROVED)
    reason: str = ""  # why not proved (UNKNOWN)

    def diagnostic_item(self) -> Diagnostic | None:
        """The SQL001 diagnostic for a non-PROVED verdict, else ``None``."""
        if self.verdict == PROVED:
            return None
        message = (
            f"statement #{self.index} ({self.relation}): round-trip "
            f"equivalence with its rule not proved"
        )
        if self.reason:
            message += f" — {self.reason}"
        return diagnostic("SQL001", message, subject=self.relation)

    def render(self) -> str:
        line = f"[{self.verdict}] #{self.index} insert into {self.relation}"
        if self.verdict == PROVED and self.witness:
            line += f"\n    witness: {self.witness}"
        elif self.reason:
            line += f"\n    reason: {self.reason}"
        return line

    def to_dict(self) -> dict:
        data: dict = {
            "index": self.index,
            "relation": self.relation,
            "rule": self.rule,
            "sql": self.sql,
            "verdict": self.verdict,
        }
        if self.witness:
            data["witness"] = self.witness
        if self.reason:
            data["reason"] = self.reason
        return data


@dataclass
class SqlCheckReport:
    """All statement verdicts and structural findings of one pipeline."""

    subject: str = ""  # scenario / problem name
    verdicts: list[SqlStatementVerdict] = field(default_factory=list)
    #: structural findings (SQL002–SQL005), already built diagnostics
    findings: list[Diagnostic] = field(default_factory=list)

    def add(self, verdict: SqlStatementVerdict) -> None:
        self.verdicts.append(verdict)

    @property
    def proved(self) -> list[SqlStatementVerdict]:
        return [v for v in self.verdicts if v.verdict == PROVED]

    @property
    def unknown(self) -> list[SqlStatementVerdict]:
        return [v for v in self.verdicts if v.verdict == UNKNOWN]

    @property
    def ok(self) -> bool:
        """True iff every statement is PROVED and no finding is an error."""
        return all(v.verdict == PROVED for v in self.verdicts) and not any(
            f.severity == "error" for f in self.findings
        )

    def counts(self) -> dict[str, int]:
        return {PROVED: len(self.proved), UNKNOWN: len(self.unknown)}

    def diagnostics(self) -> AnalysisReport:
        report = AnalysisReport(subject=self.subject)
        for verdict in self.verdicts:
            item = verdict.diagnostic_item()
            if item is not None:
                report.add(item)
        report.extend(self.findings)
        return report

    def summary(self) -> str:
        counts = self.counts()
        text = (
            f"sqlcheck: {counts[PROVED]} proved, {counts[UNKNOWN]} unknown "
            f"of {len(self.verdicts)} statement(s)"
        )
        if self.findings:
            text += f", {len(self.findings)} structural finding(s)"
        return text

    def render(self) -> str:
        header = (
            f"SQL validation of {self.subject}"
            if self.subject
            else "SQL validation report"
        )
        lines = [header]
        lines.extend(verdict.render() for verdict in self.verdicts)
        lines.extend(finding.render() for finding in self.findings)
        lines.append(self.summary())
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "subject": self.subject,
            "ok": self.ok,
            "counts": self.counts(),
            "verdicts": [v.to_dict() for v in self.verdicts],
            "findings": [f.render() for f in self.findings],
        }
