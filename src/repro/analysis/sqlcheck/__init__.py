"""Static validation of compiled SQL pipelines (translation validation).

The compiler in :mod:`repro.sqlgen.compiler` claims each emitted INSERT
computes one Datalog rule.  This package *checks* that claim statement by
statement: :mod:`.lower` reads the SQL tree back into the conjunctive
query it actually computes, :mod:`.checker` asks the chase-based
containment engine for equivalence witnesses in both directions and runs
the structural lints (SQL002–SQL005), and :mod:`.report` packages the
verdicts for the CLI, SARIF export and ``MappingSystem.sql_report()``.
"""

from .checker import check_pipeline, check_program
from .lower import LoweringResult, lower_statement, normalize_nulls
from .report import PROVED, UNKNOWN, SqlCheckReport, SqlStatementVerdict

__all__ = [
    "PROVED",
    "UNKNOWN",
    "LoweringResult",
    "SqlCheckReport",
    "SqlStatementVerdict",
    "check_pipeline",
    "check_program",
    "lower_statement",
    "normalize_nulls",
]
