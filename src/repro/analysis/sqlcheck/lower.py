"""Lowering emitted SQL trees back into conjunctive queries.

The inverse direction of :mod:`repro.sqlgen.queries`: an ``INSERT ...
SELECT`` tree is read *as SQL* — one fresh variable per (alias, column)
pair, null-safe equalities as equalities, ``IS [NOT] NULL`` as null /
non-null conditions, the canonical invented-value expression (recognized
structurally by :func:`repro.sqlgen.ast.match_skolem_encode`) as a Skolem
term, ``NOT EXISTS`` as a negated atom — producing the
:class:`~repro.analysis.semantic.containment.ConjunctiveQuery` the
statement *actually computes*.  The checker then asks the containment
engine whether that query is equivalent to the rule the compiler claims it
compiled.

Lowering is deliberately partial: any construct without a faithful CQ
reading (an unrecognized expression shape, a malformed ``NOT EXISTS``)
aborts with a reason instead of guessing, and the statement's verdict
degrades to UNKNOWN.  A wrong lowering could "prove" a wrong translation;
a missing one only loses a certificate.

Plain ``=`` is *not* null-safe: a row only qualifies when both operands
are non-null, so variable operands additionally pick up a non-null
condition.  Inline ``null`` terms in a rule body have no direct SQL
counterpart (the compiler emits ``IS NULL`` on the column); to compare the
two shapes, :func:`normalize_nulls` rewrites inline body nulls into fresh
null-conditioned variables on *both* sides before the containment check —
a semantics-preserving rewrite under the paper's reading of the unlabeled
null as an ordinary value.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ...datalog.program import DatalogProgram
from ...logic.atoms import Disequality, Equality, RelationalAtom
from ...logic.terms import (
    Constant,
    NullTerm,
    NULL_TERM,
    SkolemTerm,
    Term,
    Variable,
)
from ...sqlgen.ast import (
    Cmp,
    Col,
    InsertSelect,
    IsNull,
    Lit,
    NotExists,
    NullLit,
    NullSafeEq,
    NullSafeNe,
    Select,
    SqlExpr,
    match_skolem_encode,
)
from ...sqlgen.queries import relation_columns
from ..semantic.containment import ConjunctiveQuery


class LoweringError(Exception):
    """A construct with no faithful CQ reading (degrades to UNKNOWN)."""


@dataclass
class LoweringResult:
    """The outcome of lowering one statement."""

    query: ConjunctiveQuery | None
    reason: str = ""  # why lowering failed (query is None)


@dataclass
class _Lowerer:
    program: DatalogProgram
    variables: dict[tuple[str, str], Variable] = field(default_factory=dict)
    atoms: list[RelationalAtom] = field(default_factory=list)
    null_vars: set[Variable] = field(default_factory=set)
    nonnull_vars: set[Variable] = field(default_factory=set)
    equalities: list[Equality] = field(default_factory=list)
    disequalities: list[Disequality] = field(default_factory=list)
    negated: list[RelationalAtom] = field(default_factory=list)

    def _var(self, alias: str, column: str) -> Variable:
        key = (alias, column)
        existing = self.variables.get(key)
        if existing is None:
            existing = Variable(f"{alias}.{column}")
            self.variables[key] = existing
        return existing

    def _bind_tables(self, select: Select) -> None:
        for table in select.froms:
            columns = relation_columns(self.program, table.name)
            terms = tuple(self._var(table.alias, c) for c in columns)
            self.atoms.append(RelationalAtom(table.name, terms))

    def lower_expr(self, expr: SqlExpr) -> Term:
        """The term an expression computes, or raise :class:`LoweringError`."""
        if isinstance(expr, Col):
            if (expr.alias, expr.column) not in self.variables:
                raise LoweringError(
                    f"column reference {expr.alias}.{expr.column} does not "
                    "name a FROM table of the statement"
                )
            return self._var(expr.alias, expr.column)
        if isinstance(expr, NullLit):
            return NULL_TERM
        skolem = match_skolem_encode(expr)
        if skolem is not None:
            functor, args = skolem
            return SkolemTerm(functor, tuple(self.lower_expr(a) for a in args))
        if isinstance(expr, Lit):
            return Constant(expr.value)
        raise LoweringError(
            f"no conjunctive-query reading for expression "
            f"{type(expr).__name__}"
        )

    def lower_predicate(self, predicate: object) -> None:
        if isinstance(predicate, NullSafeEq):
            self.equalities.append(
                Equality(
                    self.lower_expr(predicate.left),
                    self.lower_expr(predicate.right),
                )
            )
            return
        if isinstance(predicate, NullSafeNe):
            self.disequalities.append(
                Disequality(
                    self.lower_expr(predicate.left),
                    self.lower_expr(predicate.right),
                )
            )
            return
        if isinstance(predicate, IsNull):
            term = self.lower_expr(predicate.expr)
            if not isinstance(term, Variable):
                raise LoweringError(
                    "IS NULL condition on a non-column expression"
                )
            (self.nonnull_vars if predicate.negated else self.null_vars).add(term)
            return
        if isinstance(predicate, Cmp):
            op = predicate.op.upper()
            left = self.lower_expr(predicate.left)
            right = self.lower_expr(predicate.right)
            if op in ("=", "IS"):
                # Plain = additionally requires both operands non-null
                # (NULL = x is never true); IS is null-safe.  Both lower to
                # an equality, = adding the non-null conditions.
                self.equalities.append(Equality(left, right))
                if op == "=":
                    for term in (left, right):
                        if isinstance(term, Variable):
                            self.nonnull_vars.add(term)
                return
            if op in ("<>", "!=", "IS NOT"):
                self.disequalities.append(Disequality(left, right))
                if op != "IS NOT":
                    for term in (left, right):
                        if isinstance(term, Variable):
                            self.nonnull_vars.add(term)
                return
            raise LoweringError(f"comparison operator {predicate.op!r}")
        if isinstance(predicate, NotExists):
            self.negated.append(self._lower_negation(predicate.select))
            return
        raise LoweringError(
            f"no conjunctive-query reading for predicate "
            f"{type(predicate).__name__}"
        )

    def _lower_negation(self, subquery: Select) -> RelationalAtom:
        """Read ``NOT EXISTS (SELECT 1 FROM rel n WHERE n.ci IS e_i ...)``
        as the negated atom ``¬rel(e_0, ..., e_k)``."""
        if len(subquery.froms) != 1:
            raise LoweringError("NOT EXISTS subquery joins several tables")
        table = subquery.froms[0]
        columns = relation_columns(self.program, table.name)
        bound: dict[str, Term] = {}
        for predicate in subquery.where:
            if not isinstance(predicate, NullSafeEq):
                raise LoweringError(
                    "NOT EXISTS subquery condition is not a null-safe "
                    "column binding"
                )
            column = predicate.left
            if not isinstance(column, Col) or column.alias != table.alias:
                raise LoweringError(
                    "NOT EXISTS subquery condition does not bind a "
                    "subquery column"
                )
            if column.column in bound:
                raise LoweringError(
                    f"NOT EXISTS subquery binds column {column.column} twice"
                )
            bound[column.column] = self.lower_expr(predicate.right)
        missing = [c for c in columns if c not in bound]
        if missing:
            raise LoweringError(
                f"NOT EXISTS subquery leaves column(s) {missing} unbound"
            )
        return RelationalAtom(table.name, tuple(bound[c] for c in columns))


def lower_statement(
    statement: InsertSelect, program: DatalogProgram
) -> LoweringResult:
    """Lower one INSERT statement into the CQ it computes."""
    lowerer = _Lowerer(program)
    select = statement.select
    try:
        lowerer._bind_tables(select)
        for predicate in select.where:
            lowerer.lower_predicate(predicate)
        head = tuple(lowerer.lower_expr(item.expr) for item in select.items)
    except LoweringError as error:
        return LoweringResult(query=None, reason=str(error))
    query = ConjunctiveQuery(
        head_label=statement.table,
        head=head,
        atoms=tuple(lowerer.atoms),
        null_vars=frozenset(lowerer.null_vars),
        nonnull_vars=frozenset(lowerer.nonnull_vars),
        equalities=tuple(lowerer.equalities),
        disequalities=tuple(lowerer.disequalities),
        negated=tuple(lowerer.negated),
    )
    return LoweringResult(query=query)


def normalize_nulls(query: ConjunctiveQuery) -> ConjunctiveQuery:
    """Replace inline ``null`` terms in positive body atoms with fresh
    null-conditioned variables.

    ``R(x, null)`` and ``R(x, v), v = null`` denote the same query under
    the paper's semantics, but the homomorphism search matches ground body
    terms syntactically, so the two shapes would not compare.  Rules write
    the former, lowered statements the latter; both sides are normalized to
    the latter before the containment check.
    """
    if not any(
        isinstance(term, NullTerm) for atom in query.atoms for term in atom.terms
    ):
        return query
    null_vars = set(query.null_vars)
    atoms = []
    for atom in query.atoms:
        terms = []
        for position, term in enumerate(atom.terms):
            if isinstance(term, NullTerm):
                fresh = Variable(f"null@{atom.relation}.{position}")
                null_vars.add(fresh)
                terms.append(fresh)
            else:
                terms.append(term)
        atoms.append(RelationalAtom(atom.relation, tuple(terms)))
    return ConjunctiveQuery(
        head_label=query.head_label,
        head=query.head,
        atoms=tuple(atoms),
        null_vars=frozenset(null_vars),
        nonnull_vars=query.nonnull_vars,
        equalities=query.equalities,
        disequalities=query.disequalities,
        negated=query.negated,
    )
