"""The SQL translation validator: round-trip proofs plus structural lints.

:func:`check_pipeline` runs two kinds of checks over a compiled pipeline:

* **Round-trip proofs** (per INSERT): the statement's tree is lowered back
  into the conjunctive query it computes (:mod:`.lower`) and the PR 3
  containment engine is asked for witnesses in both directions against the
  originating Datalog rule.  Both witnesses → ``PROVED``; anything less →
  ``UNKNOWN`` and an ``SQL001`` diagnostic.  The check is *translation
  validation*: nothing about the compiler is trusted, only the emitted
  trees are read.

* **Structural lints** (per statement / pipeline):

  - ``SQL002`` — a raw ``IS`` / ``IS NOT`` comparison between computed
    expressions (SQLite-only; the dialect-safe nodes render portably);
  - ``SQL003`` — an expression that encodes an invented value without the
    canonical length-prefixed argument shape, so distinct labeled nulls
    can collide;
  - ``SQL004`` — an INSERT with neither ``SELECT DISTINCT`` nor an
    ``EXCEPT`` dedup guard (bag semantics where the engine has sets);
  - ``SQL005`` — a statement that reads a relation some *later* statement
    writes, making the pipeline's meaning order-dependent beyond
    stratification.

Everything lands in a :class:`~.report.SqlCheckReport`; the ``sqlcheck.*``
metrics family records statement verdicts and finding counts.
"""

from __future__ import annotations

from ...datalog.program import DatalogProgram
from ...obs import metric_inc, span
from ...sqlgen.ast import (
    Cmp,
    EXCEPT_DEDUP,
    InsertSelect,
    NullLit,
    Select,
    SqlExpr,
    looks_like_skolem_encoding,
    match_skolem_encode,
)
from ...sqlgen.compiler import CompiledStatement, SqlPipeline, compile_program
from ..diagnostics import Diagnostic, diagnostic
from ..semantic.containment import ContainmentEngine, cq_from_rule, default_engine
from .lower import lower_statement, normalize_nulls
from .report import PROVED, UNKNOWN, SqlCheckReport, SqlStatementVerdict

__all__ = ["check_pipeline", "check_program"]


def check_program(
    program: DatalogProgram,
    subject: str = "",
    engine: ContainmentEngine | None = None,
) -> SqlCheckReport:
    """Compile ``program`` and validate the resulting pipeline."""
    return check_pipeline(compile_program(program), subject=subject, engine=engine)


def check_pipeline(
    pipeline: SqlPipeline,
    subject: str = "",
    engine: ContainmentEngine | None = None,
) -> SqlCheckReport:
    """Validate every statement of a compiled pipeline."""
    engine = engine or default_engine()
    with span("sqlcheck", subject=subject or "<pipeline>"):
        report = SqlCheckReport(subject=subject)
        for index, statement in enumerate(pipeline.inserts()):
            verdict = _statement_verdict(index, statement, pipeline.program, engine)
            report.add(verdict)
            metric_inc(
                "sqlcheck.statements", 1, verdict=verdict.verdict.lower()
            )
            for finding in _structural_findings(index, statement):
                report.findings.append(finding)
        for finding in _ordering_findings(pipeline):
            report.findings.append(finding)
        for finding in report.findings:
            metric_inc("sqlcheck.findings", 1, code=finding.code)
        metric_inc("sqlcheck.runs", 1, ok=str(report.ok).lower())
    return report


# -- round-trip proofs -----------------------------------------------------


def _statement_verdict(
    index: int,
    statement: CompiledStatement,
    program: DatalogProgram,
    engine: ContainmentEngine,
) -> SqlStatementVerdict:
    assert isinstance(statement.node, InsertSelect)
    rendered_rule = repr(statement.rule) if statement.rule is not None else ""
    base = dict(
        index=index,
        relation=statement.writes,
        rule=rendered_rule,
        sql=statement.sql(),
    )
    if statement.rule is None:
        return SqlStatementVerdict(
            verdict=UNKNOWN,
            reason="statement carries no originating rule to compare against",
            **base,
        )
    lowering = lower_statement(statement.node, program)
    if lowering.query is None:
        return SqlStatementVerdict(
            verdict=UNKNOWN,
            reason=f"lowering failed: {lowering.reason}",
            **base,
        )
    lowered = normalize_nulls(lowering.query)
    rule_query = normalize_nulls(cq_from_rule(statement.rule))
    witnesses = engine.equivalent(lowered, rule_query)
    if witnesses is None:
        return SqlStatementVerdict(
            verdict=UNKNOWN,
            reason=(
                "containment engine found no equivalence certificate "
                "between the lowered query and the rule"
            ),
            **base,
        )
    forward, backward = witnesses
    return SqlStatementVerdict(
        verdict=PROVED,
        witness=(
            f"sql ⊆ rule: {forward.render()}; rule ⊆ sql: {backward.render()}"
        ),
        **base,
    )


# -- structural lints ------------------------------------------------------


def _structural_findings(
    index: int, statement: CompiledStatement
) -> list[Diagnostic]:
    assert isinstance(statement.node, InsertSelect)
    select = statement.node.select
    where = f"statement #{index} ({statement.writes})"
    findings: list[Diagnostic] = []

    for predicate in select.predicates():
        if isinstance(predicate, Cmp) and predicate.op.upper() in (
            "IS",
            "IS NOT",
        ):
            operands = (predicate.left, predicate.right)
            if not any(isinstance(o, NullLit) for o in operands):
                findings.append(
                    diagnostic(
                        "SQL002",
                        f"{where}: raw {predicate.op.upper()} comparison "
                        "between computed expressions (SQLite-only "
                        "null-safe equality); use NullSafeEq/NullSafeNe",
                        subject=statement.writes,
                    )
                )

    for expr in _top_level_expressions(select):
        findings.extend(
            _encoding_findings(expr, where, statement.writes)
        )

    if statement.node.dedup != EXCEPT_DEDUP and not select.distinct:
        findings.append(
            diagnostic(
                "SQL004",
                f"{where}: INSERT has neither SELECT DISTINCT nor an "
                "EXCEPT dedup guard; duplicates can accumulate",
                subject=statement.writes,
            )
        )
    return findings


def _top_level_expressions(select: Select) -> list[SqlExpr]:
    expressions = [item.expr for item in select.items]
    for predicate in select.predicates():
        expressions.extend(predicate.expr_children())
    return expressions


def _encoding_findings(
    expr: SqlExpr, where: str, relation: str
) -> list[Diagnostic]:
    """SQL003 findings for ``expr``, recursing past valid encodings."""
    matched = match_skolem_encode(expr)
    if matched is not None:
        findings = []
        for argument in matched[1]:
            findings.extend(_encoding_findings(argument, where, relation))
        return findings
    if looks_like_skolem_encoding(expr):
        return [
            diagnostic(
                "SQL003",
                f"{where}: expression encodes an invented value without "
                "the canonical length-prefixed argument shape; distinct "
                "labeled nulls can collide",
                subject=relation,
            )
        ]
    findings = []
    for child in expr.children():
        findings.extend(_encoding_findings(child, where, relation))
    return findings


def _ordering_findings(pipeline: SqlPipeline) -> list[Diagnostic]:
    """SQL005: a statement reading a relation a later statement writes."""
    findings = []
    inserts = pipeline.inserts()
    for index, statement in enumerate(inserts):
        later_writes = {s.writes for s in inserts[index + 1 :]}
        # Reading one's own head relation is the EXCEPT guard's job, not a
        # hazard: rules for one relation commute under set semantics.
        hazards = sorted(
            (set(statement.reads) & later_writes) - {statement.writes}
        )
        for relation in hazards:
            findings.append(
                diagnostic(
                    "SQL005",
                    f"statement #{index} ({statement.writes}) reads "
                    f"{relation}, which statement(s) later in the pipeline "
                    "still write; the result depends on statement order",
                    subject=statement.writes,
                )
            )
    return findings
