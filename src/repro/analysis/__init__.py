"""Static analysis: lint schemas, mappings, and generated Datalog.

The public surface:

* :func:`analyze` — the full pass (``SCH*`` + ``MAP*`` + ``DLG*``) over a
  :class:`~repro.core.pipeline.MappingProblem`, a
  :class:`~repro.datalog.program.DatalogProgram` or a
  :class:`~repro.model.schema.Schema`;
* :func:`quick_lint` — the cheap always-on subset ``MappingSystem.compile``
  runs;
* the diagnostics vocabulary — :class:`Diagnostic`, :class:`SourceSpan`,
  :class:`AnalysisReport`, the ``CODES`` registry and the severity
  constants;
* :func:`to_sarif` / :func:`to_sarif_json` — SARIF 2.1.0 serialization;
* the flow engine (:mod:`repro.analysis.flow`) — abstract interpretation
  over generated programs: :func:`analyze_flow` solves per-position
  nullability / provenance / key-origin fixpoints and emits the ``FLW*``
  diagnostics;
* the constraint certifier (:mod:`repro.analysis.certify`) —
  :func:`certify_program` statically proves (or refutes with a minimal
  counterexample instance, or leaves UNKNOWN) every key, foreign-key and
  NOT NULL constraint of the target schema, plus the program-level
  chase-termination bound (``CER001``–``CER003``, ``TRM001``);
* the semantic analyzer (:mod:`repro.analysis.semantic`) — chase-based
  containment (:func:`contained_in`, :func:`equivalent`), mapping/program
  minimization (:func:`minimize_program`,
  :func:`minimize_unitary_mappings`) and the differential optimizer
  verifier (:func:`verify_system`).

See ``docs/ANALYSIS.md`` for the code reference.

Attribute access is lazy (PEP 562): low-level modules
(:mod:`repro.model.schema`, :mod:`repro.datalog.program`, ...) import
:mod:`repro.analysis.diagnostics` inside their raise paths, and resolving
``repro.analysis`` must not drag the whole pipeline in behind them.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

_EXPORTS = {
    "ERROR": ".diagnostics",
    "WARNING": ".diagnostics",
    "INFO": ".diagnostics",
    "SEVERITIES": ".diagnostics",
    "CODES": ".diagnostics",
    "CodeInfo": ".diagnostics",
    "Diagnostic": ".diagnostics",
    "SourceSpan": ".diagnostics",
    "AnalysisReport": ".diagnostics",
    "diagnostic": ".diagnostics",
    "severity_at_least": ".diagnostics",
    "lint_schema": ".schema_lint",
    "lint_mapping": ".mapping_lint",
    "lint_program": ".datalog_lint",
    "analyze": ".analyzer",
    "quick_lint": ".analyzer",
    "analyze_flow": ".flow",
    "flow_diagnostics": ".flow",
    "FlowReport": ".flow",
    "FlowResult": ".flow",
    "NullabilityAnalysis": ".flow",
    "ProvenanceAnalysis": ".flow",
    "KeyOriginAnalysis": ".flow",
    "solve": ".flow",
    "to_sarif": ".sarif",
    "to_sarif_json": ".sarif",
    "certify_program": ".certify",
    "certify_termination": ".certify",
    "CertificationReport": ".certify",
    "ConstraintVerdict": ".certify",
    "TerminationCertificate": ".certify",
    "PROVED": ".certify",
    "REFUTED": ".certify",
    "UNKNOWN": ".certify",
    "ContainmentEngine": ".semantic",
    "ConjunctiveQuery": ".semantic",
    "Witness": ".semantic",
    "contained_in": ".semantic",
    "equivalent": ".semantic",
    "minimize_program": ".semantic",
    "minimize_unitary_mappings": ".semantic",
    "verify_system": ".semantic",
    "VerificationReport": ".semantic",
}

__all__ = sorted(_EXPORTS)

if TYPE_CHECKING:  # pragma: no cover
    from .analyzer import analyze, quick_lint
    from .certify import (
        PROVED,
        REFUTED,
        UNKNOWN,
        CertificationReport,
        ConstraintVerdict,
        TerminationCertificate,
        certify_program,
        certify_termination,
    )
    from .datalog_lint import lint_program
    from .flow import (
        FlowReport,
        FlowResult,
        KeyOriginAnalysis,
        NullabilityAnalysis,
        ProvenanceAnalysis,
        analyze_flow,
        flow_diagnostics,
        solve,
    )
    from .diagnostics import (
        CODES,
        ERROR,
        INFO,
        SEVERITIES,
        WARNING,
        AnalysisReport,
        CodeInfo,
        Diagnostic,
        SourceSpan,
        diagnostic,
        severity_at_least,
    )
    from .mapping_lint import lint_mapping
    from .sarif import to_sarif, to_sarif_json
    from .schema_lint import lint_schema
    from .semantic import (
        ConjunctiveQuery,
        ContainmentEngine,
        VerificationReport,
        Witness,
        contained_in,
        equivalent,
        minimize_program,
        minimize_unitary_mappings,
        verify_system,
    )


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    from importlib import import_module

    return getattr(import_module(module_name, __name__), name)


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_EXPORTS))
