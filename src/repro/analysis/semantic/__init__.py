"""Semantic static analysis: containment, minimization, optimizer verification.

Three layers (ISSUE: chase-based semantic analyzer):

* :mod:`containment` — chase-based containment / equivalence of conjunctive
  queries with Skolem terms, null / non-null conditions and safe
  (negation-as-subset) bodies, in the style of Calì & Torlone's containment
  of schema mappings for data exchange;
* :mod:`minimize` — a mapping / program minimizer that removes rules and
  unitary mappings provably subsumed by the containment engine (the
  semantic generalization of the paper's §5 subsumption / implication
  pruning), emitting ``SEM001`` / ``SEM002`` diagnostics with witness
  homomorphisms;
* :mod:`verifier` — a differential verifier certifying the rewrites of
  :mod:`repro.datalog.optimize` and :mod:`repro.core.resolution` on
  canonical instances (``SEM003`` / ``SEM004``).
"""

from .containment import (
    ConjunctiveQuery,
    ContainmentEngine,
    Witness,
    contained_in,
    cq_from_rule,
    cq_from_tableau,
    cq_from_unitary,
    equivalent,
    mapping_implies,
    reset_default_engine,
)
from .minimize import MinimizationResult, minimize_program, minimize_unitary_mappings
from .verifier import VerificationReport, verify_system

__all__ = [
    "ConjunctiveQuery",
    "ContainmentEngine",
    "MinimizationResult",
    "VerificationReport",
    "Witness",
    "contained_in",
    "cq_from_rule",
    "cq_from_tableau",
    "cq_from_unitary",
    "equivalent",
    "mapping_implies",
    "minimize_program",
    "minimize_unitary_mappings",
    "reset_default_engine",
    "verify_system",
]
