"""Differential verification of the pipeline's own rewrites.

Two rewrite stages change a generated program after the mappings are fixed:
the "standard query optimization" of Example 6.8
(:func:`repro.datalog.optimize.remove_subsumed_rules`) and the soft
key-conflict resolution of Algorithm 4 step 3
(:func:`repro.core.resolution.resolve_key_conflicts`).  This module
statically certifies both, per mapping problem:

* **optimizer certificates** — every rule the optimizer drops must have a
  chase containment witness into a kept rule of the same relation (or be a
  dead intermediate); additionally the optimized and unoptimized programs
  are evaluated *differentially* on canonical instances (one per rule's
  frozen body, plus their union) and must produce identical targets.
  Failures are ``SEM003`` errors.
* **resolution certificates** — (a) each resolved non-fused mapping, with
  its disabling negations stripped, must be equivalent to its pre-resolution
  sibling modulo the reported Skolem functor renaming (resolution only
  disables and renames — it never changes what a mapping copies); (b) the
  final program, run on every canonical instance, must produce a target with
  no key violations (the whole point of resolution).  Failures are
  ``SEM004`` errors.

The canonical instances are the frozen rule bodies: for each rule, every
variable class becomes a distinct fresh constant (null-conditioned classes
become ``NULL``).  The union instance is where resolution earns its keep —
it satisfies several premises at once with per-rule-distinct keys, and the
per-rule instances of fused mappings satisfy all member premises with
*equal* keys, exercising the disabling negations.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ...core.resolution import rename_functors_in_atom
from ...core.schema_mapping import NOVEL
from ...datalog.engine import evaluate
from ...datalog.optimize import remove_subsumed_rules
from ...datalog.program import DatalogProgram, Rule
from ...errors import ReproError
from ...logic.mappings import SchemaMapping, UnitaryMapping
from ...logic.terms import Constant, NullTerm, Variable
from ...model.instance import Instance
from ...model.validation import validate_instance
from ...model.values import NULL
from ...obs import count, span
from ..diagnostics import Diagnostic, diagnostic
from .containment import ContainmentEngine, cq_from_rule, cq_from_unitary, default_engine


@dataclass
class VerificationCheck:
    """One certificate: what was checked, whether it held, and the evidence."""

    name: str
    subject: str
    ok: bool
    detail: str = ""


@dataclass
class VerificationReport:
    """All certificates for one mapping problem."""

    problem: str = ""
    checks: list[VerificationCheck] = field(default_factory=list)
    diagnostics: list[Diagnostic] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(check.ok for check in self.checks)

    def failures(self) -> list[VerificationCheck]:
        return [check for check in self.checks if not check.ok]

    def summary(self) -> str:
        good = sum(1 for c in self.checks if c.ok)
        return f"{good}/{len(self.checks)} certificates hold"

    def _record(
        self, name: str, subject: str, ok: bool, detail: str = "", code: str = ""
    ) -> None:
        self.checks.append(VerificationCheck(name, subject, ok, detail))
        count("verify.certificates")
        if not ok:
            count("verify.failures")
            self.diagnostics.append(
                diagnostic(code, detail or f"{name} failed for {subject}",
                           subject=subject)
            )


# -- canonical instances ---------------------------------------------------


def canonical_instances(program: DatalogProgram) -> list[tuple[str, Instance]]:
    """Frozen per-rule source instances, plus their union, as ``(label, I)``.

    Each rule's body atoms (over source relations) are instantiated with one
    fresh constant per variable class — classes follow the rule's equalities,
    null-conditioned classes become ``NULL`` — so rule ``i``'s instance
    satisfies exactly the premises that embed into rule ``i``'s body.
    """
    schema = program.source_schema
    assert schema is not None
    labeled: list[tuple[str, Instance]] = []
    union = Instance(schema)
    source_relations = set(schema.relation_names())
    for i, rule in enumerate(program.rules):
        instance = Instance(schema)
        values = _frozen_values(rule, prefix=f"r{i}", schema=schema)
        if values is None:
            continue  # unsatisfiable under the source fds: never fires
        added = False
        for atom in rule.body:
            if atom.relation not in source_relations:
                continue  # pragma: no cover - bodies are source atoms today
            row = tuple(
                values[term] if term in values else _ground(term)
                for term in atom.terms
            )
            instance.add(atom.relation, row)
            union.add(atom.relation, row)
            added = True
        if added and not validate_instance(instance).key_violations:
            labeled.append((f"rule[{i}]:{rule.head_relation}", instance))
    if not validate_instance(union).key_violations:
        labeled.append(("union", union))
    return labeled


def _frozen_values(
    rule: Rule, prefix: str, schema
) -> dict[object, object] | None:
    """One fresh value per variable class of the rule's body.

    Classes follow the rule's equalities *closed under the source key
    dependencies*: two body atoms over the same relation with equal key
    classes must agree on every other position (a valid instance cannot
    distinguish them — the instance-level analogue of the chase's fd rule,
    which the fused premises of Example 6.6 rely on).  Returns ``None`` when
    the closure pins one class to two distinct constants: the body is
    unsatisfiable on valid instances.
    """
    variables = rule.body_variables()
    parent = {v: v for v in variables}

    def find(v: Variable) -> Variable:
        while parent[v] is not v:
            parent[v] = parent[parent[v]]
            v = parent[v]
        return v

    pinned: dict[Variable, object] = {}
    unsatisfiable = False

    def resolved(term: object) -> tuple:
        if isinstance(term, Variable) and term in parent:
            root = find(term)
            if root in pinned:
                return ("val", pinned[root])
            return ("class", id(root))
        return ("val", _ground(term))

    def unify(left: object, right: object) -> bool:
        """Merge two body positions' values; True if anything changed."""
        nonlocal unsatisfiable
        lv = isinstance(left, Variable) and left in parent
        rv = isinstance(right, Variable) and right in parent
        if lv and rv:
            ra, rb = find(left), find(right)
            if ra is rb:
                return False
            pa, pb = pinned.get(ra), pinned.get(rb)
            if pa is not None and pb is not None and pa != pb:
                unsatisfiable = True
            parent[ra] = rb
            if pa is not None:
                pinned[rb] = pa
            return True
        if lv or rv:
            var, ground = (left, right) if lv else (right, left)
            value = _ground(ground)
            root = find(var)
            if root in pinned:
                if pinned[root] != value:
                    unsatisfiable = True
                return False
            pinned[root] = value
            return True
        if _ground(left) != _ground(right):
            unsatisfiable = True
        return False

    for eq in rule.equalities:
        if isinstance(eq.left, Variable) or isinstance(eq.right, Variable):
            unify(eq.left, eq.right)
        elif _ground(eq.left) != _ground(eq.right):
            unsatisfiable = True

    # Close under the source fds: same relation + equal keys => equal rows.
    source_relations = set(schema.relation_names())
    body = [a for a in rule.body if a.relation in source_relations]
    changed = True
    while changed and not unsatisfiable:
        changed = False
        for x in range(len(body)):
            for y in range(x + 1, len(body)):
                one, two = body[x], body[y]
                if one.relation != two.relation:
                    continue
                key_positions = schema.relation(one.relation).key_positions()
                if any(
                    resolved(one.terms[p]) != resolved(two.terms[p])
                    for p in key_positions
                ):
                    continue
                for p in range(len(one.terms)):
                    if p in key_positions:
                        continue
                    if unify(one.terms[p], two.terms[p]):
                        changed = True
    if unsatisfiable:
        return None

    null_roots = {find(v) for v in rule.null_vars if v in parent}
    class_values: dict[Variable, object] = {}
    values: dict[object, object] = {}
    for v in variables:
        root = find(v)
        if root not in class_values:
            if root in pinned:
                class_values[root] = pinned[root]
            elif root in null_roots:
                class_values[root] = NULL
            else:
                class_values[root] = f"{prefix}.{root.name}#{len(class_values)}"
        values[v] = class_values[root]
    return values


def _ground(term: object) -> object:
    if isinstance(term, Constant):
        return term.value
    if isinstance(term, NullTerm):
        return NULL
    raise ReproError(  # pragma: no cover - rule bodies hold vars/constants/null
        f"cannot ground body term {term!r} in a canonical instance"
    )


# -- the verifier ----------------------------------------------------------


def verify_generation(
    schema_mapping: SchemaMapping,
    algorithm: str = NOVEL,
    skolem_strategy: str | None = None,
    propagate_unification: bool = True,
    problem: str = "",
    engine: ContainmentEngine | None = None,
) -> VerificationReport:
    """Certify the optimizer and resolution rewrites for one schema mapping.

    Regenerates query generation without optimization, applies
    ``remove_subsumed_rules`` itself, and certifies every difference.
    """
    from ...core.query_generation import generate_queries

    engine = engine or default_engine()
    report = VerificationReport(problem=problem)
    with span("semantic.verify", problem=problem):
        base = generate_queries(
            schema_mapping,
            algorithm=algorithm,
            skolem_strategy=skolem_strategy,
            optimize=False,
            propagate_unification=propagate_unification,
        )
        unoptimized = base.program
        optimized = remove_subsumed_rules(unoptimized)
        _certify_optimizer(report, engine, unoptimized, optimized)
        instances = canonical_instances(unoptimized)
        _certify_differential(report, unoptimized, optimized, instances)
        if base.resolution is not None:
            _certify_resolution_rewrites(report, engine, base)
            _certify_resolution_keys(report, optimized, instances)
    return report


def verify_system(system, engine: ContainmentEngine | None = None) -> VerificationReport:
    """Certify a :class:`repro.core.pipeline.MappingSystem`'s rewrites."""
    return verify_generation(
        system.schema_mapping,
        algorithm=system.algorithm,
        skolem_strategy=system.skolem_strategy,
        problem=system.problem.name,
        engine=engine,
    )


def _certify_optimizer(
    report: VerificationReport,
    engine: ContainmentEngine,
    unoptimized: DatalogProgram,
    optimized: DatalogProgram,
) -> None:
    """Per-removed-rule containment certificates (``SEM003`` on failure)."""
    kept_ids = {id(rule) for rule in optimized.rules}
    kept = [rule for rule in unoptimized.rules if id(rule) in kept_ids]
    referenced = {
        atom.relation
        for rule in kept
        for atom in list(rule.body) + list(rule.negated)
    }
    kept_queries = [(rule, cq_from_rule(rule)) for rule in kept]
    for index, rule in enumerate(unoptimized.rules):
        if id(rule) in kept_ids:
            continue
        subject = f"rule[{index}]:{rule.head_relation}"
        if (
            rule.head_relation in unoptimized.intermediates
            and rule.head_relation not in referenced
        ):
            report._record(
                "optimizer:removed-rule", subject, True,
                f"dead intermediate {rule.head_relation!r}: no kept rule "
                f"reads it",
            )
            continue
        query = cq_from_rule(rule)
        witness = next(
            (
                (other, engine.contained_in(query, other_query))
                for other, other_query in kept_queries
                if other.head_relation == rule.head_relation
                and engine.contained_in(query, other_query) is not None
            ),
            None,
        )
        if witness is None:
            report._record(
                "optimizer:removed-rule", subject, False,
                f"optimizer dropped {rule!r} but no kept rule semantically "
                f"contains it",
                code="SEM003",
            )
        else:
            other, w = witness
            report._record(
                "optimizer:removed-rule", subject, True,
                f"contained in {other!r} via {w.render()}",
            )


def _certify_differential(
    report: VerificationReport,
    unoptimized: DatalogProgram,
    optimized: DatalogProgram,
    instances: list[tuple[str, Instance]],
) -> None:
    """Before/after evaluation on canonical instances (``SEM003``)."""
    for label, instance in instances:
        before = evaluate(unoptimized, instance).target
        after = evaluate(optimized, instance).target
        ok = before == after
        report._record(
            "optimizer:differential", label, ok,
            "optimized and unoptimized programs agree"
            if ok
            else f"programs disagree on canonical instance {label}: "
            f"unoptimized={before!r} optimized={after!r}",
            code="SEM003",
        )


def _certify_resolution_rewrites(
    report: VerificationReport, engine: ContainmentEngine, base
) -> None:
    """Resolution may only disable (negations) and rename functors (``SEM004``).

    For each pre-resolution unitary mapping and its resolved counterpart
    (positionally aligned), stripping the added negations and applying the
    reported functor renaming must yield semantically equivalent queries.
    """
    renaming = base.resolution.functor_renaming
    for index, original in enumerate(base.unitary):
        resolved: UnitaryMapping = base.final[index]
        subject = resolved.name or f"unitary[{index}]"
        stripped = resolved.with_premise(
            replace(resolved.premise, negated=())
        )
        renamed = original.with_consequent(
            rename_functors_in_atom(original.consequent, renaming)
        )
        pair = engine.equivalent(cq_from_unitary(stripped), cq_from_unitary(renamed))
        ok = pair is not None
        report._record(
            "resolution:rewrite", subject, ok,
            f"resolved mapping (negations stripped) is equivalent to its "
            f"pre-resolution form via {pair[0].render()}"
            if ok
            else f"resolution changed mapping {subject} beyond disabling / "
            f"renaming: {original!r} became {resolved!r}",
            code="SEM004",
        )


def _certify_resolution_keys(
    report: VerificationReport,
    program: DatalogProgram,
    instances: list[tuple[str, Instance]],
) -> None:
    """The resolved program must respect target keys on canonical instances."""
    for label, instance in instances:
        target = evaluate(program, instance).target
        violations = validate_instance(target).key_violations
        ok = not violations
        report._record(
            "resolution:keys", label, ok,
            "no key violations on the canonical instance"
            if ok
            else f"resolved program violates target keys on {label}: "
            + "; ".join(str(v) for v in violations),
            code="SEM004",
        )
