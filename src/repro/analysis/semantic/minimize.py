"""Semantic minimization of generated programs and unitary mappings.

The syntactic optimizer (:func:`repro.datalog.optimize.remove_subsumed_rules`)
drops a rule only when a variable-renaming homomorphism between the rules
themselves exists.  The semantic minimizer asks the stronger question —
is the rule's *query* contained in another rule's query? — using the chase
(:mod:`repro.analysis.semantic.containment`), so it also catches redundancy
the syntactic pattern match misses (reordered or differently-chased bodies,
condition-implied atoms, equality-collapsed joins).

Removal is sound for stratified programs: a removed rule derives a subset of
another rule for the *same* head relation, so every relation's extension —
including intermediates read under negation — is unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ...datalog.optimize import drop_dead_intermediates
from ...datalog.program import DatalogProgram, Rule
from ...logic.mappings import UnitaryMapping
from ...obs import count, span
from ..diagnostics import Diagnostic, diagnostic
from .containment import (
    ContainmentEngine,
    Witness,
    cq_from_rule,
    cq_from_unitary,
    default_engine,
)


@dataclass
class RemovedRule:
    """One provably redundant rule: contained in ``by`` (witness attached)."""

    rule: Rule
    index: int
    by: Rule
    by_index: int
    witness: Witness


@dataclass
class SubsumedMapping:
    """One unitary mapping provably subsumed by another."""

    mapping: UnitaryMapping
    index: int
    by: UnitaryMapping
    by_index: int
    witness: Witness


@dataclass
class MinimizationResult:
    """The minimized program plus the removal certificates."""

    program: DatalogProgram
    removed: list[RemovedRule] = field(default_factory=list)

    def diagnostics(self) -> list[Diagnostic]:
        """The removals as ``SEM001`` findings with their witnesses."""
        return [
            diagnostic(
                "SEM001",
                f"rule {removal.rule!r} is semantically contained in "
                f"{removal.by!r}; removing it cannot change the program's "
                f"output",
                subject=removal.rule.head_relation,
                witness=removal.witness.render(),
            )
            for removal in self.removed
        ]


def minimize_program(
    program: DatalogProgram, engine: ContainmentEngine | None = None
) -> MinimizationResult:
    """Remove rules provably contained in other rules of the program.

    The semantic analogue of ``remove_subsumed_rules``: same traversal and
    same keep-the-earlier tie-break on mutual containment (semantically
    equivalent duplicates), but each removal carries a chase witness.
    Dead intermediates are dropped afterwards, exactly as the syntactic
    optimizer does.
    """
    with span("semantic.minimize", rules=len(program.rules)) as trace:
        result = _minimize_program(program, engine or default_engine())
        count("semantic.rules_removed", len(result.removed))
        trace.set(removed=len(result.removed), kept=len(result.program.rules))
        return result


def _minimize_program(
    program: DatalogProgram, engine: ContainmentEngine
) -> MinimizationResult:
    rules = program.rules
    queries = [cq_from_rule(rule) for rule in rules]
    kept: list[Rule] = []
    removed: list[RemovedRule] = []
    removed_indices: set[int] = set()
    for i, rule in enumerate(rules):
        certificate: RemovedRule | None = None
        for j, other in enumerate(rules):
            if i == j or j in removed_indices:
                continue
            witness = engine.contained_in(queries[i], queries[j])
            if witness is None:
                continue
            if engine.contained_in(queries[j], queries[i]) is not None and i < j:
                continue  # mutual containment: keep the earlier rule
            certificate = RemovedRule(rule, i, other, j, witness)
            break
        if certificate is None:
            kept.append(rule)
        else:
            removed_indices.add(i)
            removed.append(certificate)
    return MinimizationResult(
        program=drop_dead_intermediates(program, kept), removed=removed
    )


def minimize_unitary_mappings(
    mappings: list[UnitaryMapping], engine: ContainmentEngine | None = None
) -> list[SubsumedMapping]:
    """Flag unitary mappings provably subsumed by another mapping.

    Subsumption here is query containment of the mapping read as the rule
    ``consequent ← premise`` (negated premises compared as opaque
    subqueries).  Only flags — the pipeline's own pruning happens earlier;
    these surface as ``SEM002`` warnings.
    """
    engine = engine or default_engine()
    queries = [cq_from_unitary(m) for m in mappings]
    flagged: list[SubsumedMapping] = []
    flagged_indices: set[int] = set()
    for i, mapping in enumerate(mappings):
        for j, other in enumerate(mappings):
            if i == j or j in flagged_indices:
                continue
            witness = engine.contained_in(queries[i], queries[j])
            if witness is None:
                continue
            if engine.contained_in(queries[j], queries[i]) is not None and i < j:
                continue
            flagged_indices.add(i)
            flagged.append(SubsumedMapping(mapping, i, other, j, witness))
            count("semantic.mappings_flagged")
            break
    return flagged


def mapping_diagnostics(flagged: list[SubsumedMapping]) -> list[Diagnostic]:
    """The flagged mappings as ``SEM002`` findings."""
    return [
        diagnostic(
            "SEM002",
            f"unitary mapping {item.mapping.name or item.mapping.origin or i} "
            f"({item.mapping!r}) is semantically subsumed by "
            f"{item.by.name or item.by.origin or item.by_index} ({item.by!r})",
            subject=item.mapping.consequent.relation,
            witness=item.witness.render(),
        )
        for i, item in enumerate(flagged)
    ]
