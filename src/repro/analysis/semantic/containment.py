"""Chase-based containment of conjunctive queries with Skolem terms.

The classical result (Chandra–Merlin, extended to data exchange by Calì &
Torlone, "Containment of Schema Mappings for Data Exchange"): ``Q1 ⊆ Q2``
iff there is a homomorphism from ``Q2``'s body into the *canonical instance*
of ``Q1`` — ``Q1``'s body with every variable frozen into a distinct fresh
constant — that maps ``Q2``'s head onto ``Q1``'s frozen head.

This module implements that test for the conjunctive queries this code base
actually produces: partial-tableau queries (§5), Datalog rules with Skolem
functor heads and safe negation (§6), and unitary mappings.  Extensions
beyond the textbook case are handled *conservatively* — a ``None`` answer
means "not provably contained", never "provably not contained" — so every
positive answer is a sound certificate:

* null / non-null conditions freeze into marks on the canonical constants;
  a condition of the candidate container must map onto a compatibly marked
  value (cf. the condition-aware embeddings of :mod:`repro.core.pruning`);
* equalities are internalized by union-find before freezing; the container's
  residual equalities are verified per homomorphism;
* disequalities of the container must be *entailed* by the frozen instance
  (distinct ground constants, an explicit disequality of the contained
  query, a null vs. non-null split, or distinct Skolem functors — invented
  values from distinct functors have disjoint ranges, §6);
* negated atoms are compared as opaque subqueries: every negation required
  by the container must already be required (under the homomorphism) by the
  contained query;
* an unsatisfiable contained query (contradictory conditions) is contained
  in everything — the witness is marked ``vacuous``.

Canonical instances are memoized per query object and containment verdicts
are cached under frozen structural signatures, so repeated checks over the
same shapes (the minimizer, the verifier, property tests) are near-free.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping, Sequence

from ...datalog.program import Rule
from ...logic.atoms import Disequality, Equality, NegatedPremise, RelationalAtom
from ...logic.homomorphism import iter_homomorphisms
from ...logic.mappings import LogicalMapping, UnitaryMapping
from ...logic.tableau import PartialTableau
from ...logic.terms import (
    Constant,
    NullTerm,
    SkolemTerm,
    Term,
    Variable,
    term_variables,
)
from ...obs import count, metric_inc

#: Upper bound on homomorphisms examined per containment check; beyond it the
#: answer degrades to the conservative "not provably contained".
MAX_WITNESS_CANDIDATES = 10_000

#: ``(null_vars, nonnull_vars)`` conditions on a mapping's consequent
#: variables (see :meth:`ContainmentEngine.mapping_implies`).
ConsequentConditions = tuple[frozenset[Variable], frozenset[Variable]]

_NO_CONDITIONS: ConsequentConditions = (frozenset(), frozenset())


@dataclass(frozen=True)
class FrozenValue(Term):
    """A canonical-instance constant: one per equivalence class of variables.

    Carries the class's null / non-null mark so condition compatibility can
    be decided locally during the homomorphism search.  Equality is by value,
    so two freezes of structurally equal queries agree.
    """

    index: int
    name: str
    null: bool = False
    nonnull: bool = False

    def __repr__(self) -> str:
        mark = "=null" if self.null else ("!=null" if self.nonnull else "")
        return f"<{self.name}#{self.index}{mark}>"


def _is_null_like(term: Term) -> bool:
    """Guaranteed to denote the null value in every instantiation."""
    return isinstance(term, NullTerm) or (isinstance(term, FrozenValue) and term.null)


def _is_nonnull_like(term: Term) -> bool:
    """Guaranteed to denote a non-null value in every instantiation."""
    if isinstance(term, (Constant, SkolemTerm)):
        return True
    return isinstance(term, FrozenValue) and term.nonnull


def _terms_agree(left: Term, right: Term) -> bool:
    """Equality of frozen terms, identifying all guaranteed-null terms."""
    if left == right:
        return True
    return _is_null_like(left) and _is_null_like(right)


@dataclass(frozen=True)
class Witness:
    """A containment certificate: the homomorphism, rendered.

    ``kind`` is ``"homomorphism"`` for the standard chase witness,
    ``"vacuous"`` when the contained query is unsatisfiable, and ``"chase"``
    for mapping-implication witnesses (premise images plus consequent
    embedding).
    """

    kind: str
    mapping: tuple[tuple[str, str], ...] = ()

    def render(self) -> str:
        if self.kind == "vacuous":
            return "vacuous (unsatisfiable premise)"
        inner = ", ".join(f"{var} -> {image}" for var, image in self.mapping)
        return "{" + inner + "}"

    def __repr__(self) -> str:
        return f"Witness({self.kind}: {self.render()})"


@dataclass
class ConjunctiveQuery:
    """A conjunctive query ``head_label(head) ← atoms, conditions, ¬negated``.

    ``head`` terms may be variables, constants, ``null`` or Skolem terms;
    ``negated`` atoms are treated as opaque subquery references (two queries
    agree on a negation iff the atoms coincide under the homomorphism).
    """

    head_label: str
    head: tuple[Term, ...]
    atoms: tuple[RelationalAtom, ...]
    null_vars: frozenset[Variable] = frozenset()
    nonnull_vars: frozenset[Variable] = frozenset()
    equalities: tuple[Equality, ...] = ()
    disequalities: tuple[Disequality, ...] = ()
    negated: tuple[RelationalAtom, ...] = ()

    _frozen: "CanonicalInstance | None" = field(
        default=None, repr=False, compare=False
    )
    _signature: tuple | None = field(default=None, repr=False, compare=False)

    def variables(self) -> list[Variable]:
        terms: list[Term] = [t for atom in self.atoms for t in atom.terms]
        terms.extend(self.head)
        return term_variables(terms)

    # -- structural signature (cache key) ---------------------------------

    def signature(self) -> tuple:
        """Canonical encoding identifying the query up to variable renaming."""
        if self._signature is not None:
            return self._signature
        var_ids: dict[Variable, int] = {}

        def encode(term: Term) -> object:
            if isinstance(term, Variable):
                if term not in var_ids:
                    var_ids[term] = len(var_ids)
                marks = (term in self.null_vars, term in self.nonnull_vars)
                return ("v", var_ids[term], marks)
            if isinstance(term, SkolemTerm):
                return ("f", term.functor, tuple(encode(a) for a in term.args))
            return ("t", repr(term))

        sig = (
            self.head_label,
            tuple(encode(t) for t in self.head),
            tuple(
                (a.relation, tuple(encode(t) for t in a.terms)) for a in self.atoms
            ),
            tuple(
                sorted(
                    repr((encode(e.left), encode(e.right)))
                    for e in self.equalities
                )
            ),
            tuple(
                sorted(
                    repr(tuple(sorted((repr(encode(d.left)), repr(encode(d.right))))))
                    for d in self.disequalities
                )
            ),
            tuple(
                sorted(
                    repr((a.relation, tuple(encode(t) for t in a.terms)))
                    for a in self.negated
                )
            ),
        )
        self._signature = sig
        return sig

    # -- canonical (frozen) instance --------------------------------------

    def frozen(self) -> "CanonicalInstance":
        """The memoized canonical instance of this query."""
        if self._frozen is None:
            self._frozen = _freeze(self)
        return self._frozen


@dataclass
class CanonicalInstance:
    """The frozen body of a query: its canonical database.

    ``substitution`` maps each query variable to its frozen term;
    ``diseq_pairs`` is the symmetric closure of the frozen disequalities
    (as sorted repr pairs) used for entailment checks.
    """

    atoms: tuple[RelationalAtom, ...]
    head: tuple[Term, ...]
    substitution: dict[Variable, Term]
    diseq_pairs: frozenset[tuple[str, str]]
    negated: frozenset[RelationalAtom]
    unsatisfiable: bool = False


def _freeze(query: ConjunctiveQuery) -> CanonicalInstance:
    """Freeze a query into its canonical instance.

    Variables are partitioned into classes by the query's equalities
    (union-find); each class becomes one :class:`FrozenValue` carrying the
    class's null / non-null mark, or collapses to a shared constant when an
    equality pins it.  Contradictory constraints (null and non-null, null
    and a constant, two distinct constants) make the query unsatisfiable.
    """
    variables = query.variables()
    parent: dict[Variable, Variable] = {v: v for v in variables}

    def find(v: Variable) -> Variable:
        while parent[v] is not v:
            parent[v] = parent[parent[v]]
            v = parent[v]
        return v

    def union(a: Variable, b: Variable) -> None:
        ra, rb = find(a), find(b)
        if ra is not rb:
            parent[ra] = rb

    pinned: dict[Variable, Term] = {}
    unsatisfiable = False
    for eq in query.equalities:
        left, right = eq.left, eq.right
        if isinstance(left, Variable) and isinstance(right, Variable):
            if left in parent and right in parent:
                union(left, right)
        elif isinstance(left, Variable) and isinstance(right, (Constant, NullTerm)):
            if left in parent:
                pinned[left] = right
        elif isinstance(right, Variable) and isinstance(left, (Constant, NullTerm)):
            if right in parent:
                pinned[right] = left
        elif not isinstance(left, Variable) and not isinstance(right, Variable):
            if not _terms_agree(left, right):
                unsatisfiable = True
        # Equalities involving Skolem terms are left residual: they constrain
        # the query further, which is sound to ignore on the contained side.

    classes: dict[Variable, list[Variable]] = {}
    for v in variables:
        classes.setdefault(find(v), []).append(v)

    substitution: dict[Variable, Term] = {}
    for index, (root, members) in enumerate(
        sorted(classes.items(), key=lambda item: item[0].index)
    ):
        null_mark = any(m in query.null_vars for m in members)
        nonnull_mark = any(m in query.nonnull_vars for m in members)
        constants = {repr(pinned[m]) for m in members if m in pinned}
        pin: Term | None = next(
            (pinned[m] for m in members if m in pinned), None
        )
        if len(constants) > 1:
            unsatisfiable = True
        if pin is not None:
            if isinstance(pin, NullTerm):
                null_mark = True
            else:
                nonnull_mark = True
        if null_mark and nonnull_mark:
            unsatisfiable = True
        if pin is not None and not unsatisfiable:
            frozen_term: Term = pin
        else:
            representative = min(members, key=lambda m: m.index)
            frozen_term = FrozenValue(
                index, representative.name, null=null_mark, nonnull=nonnull_mark
            )
        for member in members:
            substitution[member] = frozen_term

    atoms = tuple(a.substitute(substitution) for a in query.atoms)
    head = tuple(t.substitute(substitution) for t in query.head)
    pairs: set[tuple[str, str]] = set()
    for d in query.disequalities:
        left = d.left.substitute(substitution)
        right = d.right.substitute(substitution)
        if _terms_agree(left, right):
            unsatisfiable = True
        key = tuple(sorted((repr(left), repr(right))))
        pairs.add(key)  # type: ignore[arg-type]
    negated = frozenset(a.substitute(substitution) for a in query.negated)
    return CanonicalInstance(
        atoms=atoms,
        head=head,
        substitution=substitution,
        diseq_pairs=frozenset(pairs),
        negated=negated,
        unsatisfiable=unsatisfiable,
    )


# -- constructors ---------------------------------------------------------


def cq_from_tableau(tableau: PartialTableau) -> ConjunctiveQuery:
    """The query of a partial tableau: head = the root atom's terms.

    Containment of tableau queries is the paper's sub-tableau relation made
    semantic: rooted, so the root tuple's data flow is preserved.
    """
    return ConjunctiveQuery(
        head_label=f"tableau:{tableau.root_relation}",
        head=tuple(tableau.root_atom.terms),
        atoms=tuple(tableau.atoms),
        null_vars=frozenset(tableau.null_vars),
        nonnull_vars=frozenset(tableau.nonnull_vars),
    )


def cq_from_rule(rule: Rule) -> ConjunctiveQuery:
    """The query of a Datalog rule (head may hold Skolem terms and null)."""
    return ConjunctiveQuery(
        head_label=rule.head.relation,
        head=tuple(rule.head.terms),
        atoms=tuple(rule.body),
        null_vars=frozenset(rule.null_vars),
        nonnull_vars=frozenset(rule.nonnull_vars),
        equalities=tuple(rule.equalities),
        disequalities=tuple(rule.disequalities),
        negated=tuple(rule.negated),
    )


_NEGATION_IDS: dict[tuple, int] = {}


def _negation_pseudo_atom(negation: NegatedPremise) -> RelationalAtom:
    """Encode a negated subquery as an opaque pseudo-atom over its key.

    Two negations with the same structural signature get the same pseudo
    relation (mirroring how query generation shares one ``tmp`` relation),
    so the negation-as-subset check of the containment engine applies.
    """
    signature = negation.signature()
    number = _NEGATION_IDS.setdefault(signature, len(_NEGATION_IDS))
    return RelationalAtom(f"__neg{number}__", negation.correlated)


def cq_from_unitary(mapping: UnitaryMapping) -> ConjunctiveQuery:
    """The query of a unitary mapping: head = its single consequent atom."""
    premise = mapping.premise
    return ConjunctiveQuery(
        head_label=mapping.consequent.relation,
        head=tuple(mapping.consequent.terms),
        atoms=tuple(premise.atoms),
        null_vars=frozenset(premise.null_vars),
        nonnull_vars=frozenset(premise.nonnull_vars),
        equalities=tuple(premise.equalities),
        disequalities=tuple(premise.disequalities),
        negated=tuple(_negation_pseudo_atom(n) for n in premise.negated),
    )


# -- the engine -----------------------------------------------------------


def _diseq_entailed(left: Term, right: Term, frozen: CanonicalInstance) -> bool:
    """Is ``left ≠ right`` guaranteed by the frozen instance?"""
    if isinstance(left, Constant) and isinstance(right, Constant):
        return left != right
    if (_is_null_like(left) and _is_nonnull_like(right)) or (
        _is_null_like(right) and _is_nonnull_like(left)
    ):
        return True
    if isinstance(left, SkolemTerm) and isinstance(right, SkolemTerm):
        if left.functor != right.functor:
            return True  # distinct functors have disjoint ranges (§6)
    if isinstance(left, SkolemTerm) != isinstance(right, SkolemTerm):
        if isinstance(left, (Constant, SkolemTerm)) and isinstance(
            right, (Constant, SkolemTerm)
        ):
            return True  # invented values never equal source constants (§5)
    key = tuple(sorted((repr(left), repr(right))))
    return key in frozen.diseq_pairs


def _seed_head(
    fixed: dict[Variable, Term], pattern_term: Term, frozen_term: Term
) -> bool:
    """Pre-bind container head variables to the frozen head, structurally."""
    if isinstance(pattern_term, Variable):
        bound = fixed.get(pattern_term)
        if bound is not None:
            return _terms_agree(bound, frozen_term)
        fixed[pattern_term] = frozen_term
        return True
    if isinstance(pattern_term, SkolemTerm):
        if not isinstance(frozen_term, SkolemTerm):
            return False
        if pattern_term.functor != frozen_term.functor or len(
            pattern_term.args
        ) != len(frozen_term.args):
            return False
        return all(
            _seed_head(fixed, p, f)
            for p, f in zip(pattern_term.args, frozen_term.args)
        )
    return _terms_agree(pattern_term, frozen_term)


class ContainmentEngine:
    """Containment / equivalence checks with a frozen-signature cache."""

    def __init__(self) -> None:
        self._cache: dict[tuple, Witness | None] = {}

    def cache_size(self) -> int:
        return len(self._cache)

    def contained_in(
        self, contained: ConjunctiveQuery, container: ConjunctiveQuery
    ) -> Witness | None:
        """A witness that ``contained ⊆ container``, or ``None``.

        ``None`` is conservative: containment could not be *proved*.
        """
        count("semantic.checks")
        key = (contained.signature(), container.signature())
        if key in self._cache:
            count("semantic.cache_hits")
            metric_inc("semantic.containment.lookups", 1, result="hit")
            return self._cache[key]
        metric_inc("semantic.containment.lookups", 1, result="miss")
        witness = self._contained_in(contained, container)
        self._cache[key] = witness
        return witness

    def equivalent(
        self, left: ConjunctiveQuery, right: ConjunctiveQuery
    ) -> tuple[Witness, Witness] | None:
        """Witnesses for both directions, or ``None``."""
        forward = self.contained_in(left, right)
        if forward is None:
            return None
        backward = self.contained_in(right, left)
        if backward is None:
            return None
        return forward, backward

    # -- internals --------------------------------------------------------

    def _contained_in(
        self, contained: ConjunctiveQuery, container: ConjunctiveQuery
    ) -> Witness | None:
        if contained.head_label != container.head_label:
            return None
        if len(contained.head) != len(container.head):
            return None
        frozen = contained.frozen()
        if frozen.unsatisfiable:
            count("semantic.vacuous")
            return Witness(kind="vacuous")

        fixed: dict[Variable, Term] = {}
        for pattern_term, frozen_term in zip(container.head, frozen.head):
            if not _seed_head(fixed, pattern_term, frozen_term):
                return None
        # Seeded bindings bypass the search's var_check: re-check conditions.
        for var, image in fixed.items():
            if var in container.null_vars and not _is_null_like(image):
                return None
            if var in container.nonnull_vars and not _is_nonnull_like(image):
                return None

        def var_check(var: Variable, image: Term) -> bool:
            if var in container.null_vars:
                return _is_null_like(image)
            if var in container.nonnull_vars:
                return _is_nonnull_like(image)
            return True

        examined = 0
        for theta in iter_homomorphisms(
            container.atoms, frozen.atoms, fixed=fixed, var_check=var_check
        ):
            examined += 1
            if examined > MAX_WITNESS_CANDIDATES:
                break
            if self._verify(container, frozen, theta):
                rendered = tuple(
                    (repr(var), repr(image))
                    for var, image in sorted(
                        theta.items(), key=lambda item: item[0].index
                    )
                )
                return Witness(kind="homomorphism", mapping=rendered)
        return None

    @staticmethod
    def _verify(
        container: ConjunctiveQuery,
        frozen: CanonicalInstance,
        theta: Mapping[Variable, Term],
    ) -> bool:
        """Side conditions the raw homomorphism search does not cover."""
        for eq in container.equalities:
            if not _terms_agree(eq.left.substitute(theta), eq.right.substitute(theta)):
                return False
        for d in container.disequalities:
            if not _diseq_entailed(
                d.left.substitute(theta), d.right.substitute(theta), frozen
            ):
                return False
        for atom in container.negated:
            if atom.substitute(theta) not in frozen.negated:
                return False
        for pattern_term, frozen_term in zip(container.head, frozen.head):
            if not _terms_agree(pattern_term.substitute(theta), frozen_term):
                return False
        return True

    # -- mapping implication (the chase over tgds) -------------------------

    def mapping_implies(
        self,
        stronger: LogicalMapping | UnitaryMapping,
        weaker: LogicalMapping | UnitaryMapping,
        *,
        stronger_consequent_conditions: ConsequentConditions | None = None,
        weaker_consequent_conditions: ConsequentConditions | None = None,
    ) -> Witness | None:
        """A witness that ``stronger ⟹ weaker`` as s-t tgds, or ``None``.

        The Calì–Torlone check: freeze the weaker premise into its canonical
        database, fire the stronger mapping on it exhaustively (every
        condition-respecting homomorphism, inventing one fresh value per
        existential variable per firing), and look for the weaker consequent
        among the produced target atoms — with the weaker's own source
        variables held fixed at their frozen values.

        The two ``*_consequent_conditions`` are ``(null_vars, nonnull_vars)``
        pairs for consequent variables.  :class:`LogicalMapping` itself
        carries no consequent conditions (section 5.2 drops them at mapping
        generation), but candidate pruning happens *before* that and must
        not confuse a ``p = null`` variant with its non-null extension, so
        it passes the target-tableau conditions here.
        """
        count("semantic.checks")
        strong_conditions = stronger_consequent_conditions or _NO_CONDITIONS
        weak_conditions = weaker_consequent_conditions or _NO_CONDITIONS
        weak_consequent = _consequent_atoms(weaker)
        strong_consequent = _consequent_atoms(stronger)
        weak_cq = _premise_query(weaker)
        strong_cq = _premise_query(stronger)
        key = (
            "implies",
            strong_cq.signature(),
            _consequent_signature(strong_cq, strong_consequent, strong_conditions),
            weak_cq.signature(),
            _consequent_signature(weak_cq, weak_consequent, weak_conditions),
        )
        if key in self._cache:
            count("semantic.cache_hits")
            metric_inc("semantic.containment.lookups", 1, result="hit")
            return self._cache[key]
        metric_inc("semantic.containment.lookups", 1, result="miss")
        witness = self._mapping_implies(
            strong_cq,
            strong_consequent,
            weak_cq,
            weak_consequent,
            strong_conditions,
            weak_conditions,
        )
        self._cache[key] = witness
        return witness

    def _mapping_implies(
        self,
        strong_cq: ConjunctiveQuery,
        strong_consequent: tuple[RelationalAtom, ...],
        weak_cq: ConjunctiveQuery,
        weak_consequent: tuple[RelationalAtom, ...],
        strong_conditions: ConsequentConditions,
        weak_conditions: ConsequentConditions,
    ) -> Witness | None:
        frozen = weak_cq.frozen()
        if frozen.unsatisfiable:
            count("semantic.vacuous")
            return Witness(kind="vacuous")

        def var_check(var: Variable, image: Term) -> bool:
            if var in strong_cq.null_vars:
                return _is_null_like(image)
            if var in strong_cq.nonnull_vars:
                return _is_nonnull_like(image)
            return True

        strong_source = set(
            term_variables(t for atom in strong_cq.atoms for t in atom.terms)
        )
        produced: list[RelationalAtom] = []
        firings = 0
        for theta in iter_homomorphisms(
            strong_cq.atoms, frozen.atoms, var_check=var_check
        ):
            firings += 1
            if firings > MAX_WITNESS_CANDIDATES:
                break
            if not self._verify_premise(strong_cq, frozen, theta):
                continue
            # Invent one fresh value per existential variable per firing.
            # A null-conditioned existential freezes to a null-like value;
            # everything else is a labeled (non-null) invented value.
            strong_null, _strong_nonnull = strong_conditions
            full = dict(theta)
            for atom in strong_consequent:
                for var in atom.variables():
                    if var not in strong_source and var not in full:
                        # (var.index, firing) is unique: no accidental fusion.
                        full[var] = FrozenValue(
                            var.index,
                            f"invent@{firings}:{var.name}",
                            null=var in strong_null,
                            nonnull=var not in strong_null,
                        )
            produced.extend(atom.substitute(full) for atom in strong_consequent)
        if not produced:
            return None

        weak_source = set(
            term_variables(t for atom in weak_cq.atoms for t in atom.terms)
        )
        fixed = {
            var: frozen.substitution[var]
            for atom in weak_consequent
            for var in atom.variables()
            if var in weak_source
        }
        weak_null, weak_nonnull = weak_conditions

        def weak_check(var: Variable, image: Term) -> bool:
            if var in weak_null:
                return _is_null_like(image)
            if var in weak_nonnull:
                return _is_nonnull_like(image)
            return True

        if any(not weak_check(var, image) for var, image in fixed.items()):
            return None
        theta = next(
            iter_homomorphisms(
                weak_consequent, tuple(produced), fixed=fixed, var_check=weak_check
            ),
            None,
        )
        if theta is None:
            return None
        rendered = tuple(
            (repr(var), repr(image))
            for var, image in sorted(theta.items(), key=lambda item: item[0].index)
        )
        return Witness(kind="chase", mapping=rendered)

    @staticmethod
    def _verify_premise(
        premise_cq: ConjunctiveQuery,
        frozen: CanonicalInstance,
        theta: Mapping[Variable, Term],
    ) -> bool:
        """Conditions for one tgd firing on the canonical database."""
        for eq in premise_cq.equalities:
            if not _terms_agree(eq.left.substitute(theta), eq.right.substitute(theta)):
                return False
        for d in premise_cq.disequalities:
            if not _diseq_entailed(
                d.left.substitute(theta), d.right.substitute(theta), frozen
            ):
                return False
        for atom in premise_cq.negated:
            if atom.substitute(theta) not in frozen.negated:
                return False
        return True


def _consequent_atoms(
    mapping: LogicalMapping | UnitaryMapping,
) -> tuple[RelationalAtom, ...]:
    consequent = mapping.consequent
    if isinstance(consequent, RelationalAtom):
        return (consequent,)
    return tuple(consequent)


def _premise_query(mapping: LogicalMapping | UnitaryMapping) -> ConjunctiveQuery:
    premise = mapping.premise
    return ConjunctiveQuery(
        head_label="premise",
        head=(),
        atoms=tuple(premise.atoms),
        null_vars=frozenset(premise.null_vars),
        nonnull_vars=frozenset(premise.nonnull_vars),
        equalities=tuple(premise.equalities),
        disequalities=tuple(premise.disequalities),
        negated=tuple(_negation_pseudo_atom(n) for n in premise.negated),
    )


def _consequent_signature(
    premise_cq: ConjunctiveQuery,
    consequent: Sequence[RelationalAtom],
    conditions: "ConsequentConditions" = (frozenset(), frozenset()),
) -> tuple:
    null_vars, nonnull_vars = conditions
    helper = ConjunctiveQuery(
        head_label="consequent",
        head=tuple(t for atom in consequent for t in atom.terms),
        atoms=premise_cq.atoms + tuple(consequent),
        null_vars=frozenset(null_vars),
        nonnull_vars=frozenset(nonnull_vars),
    )
    return helper.signature()


# -- module-level default engine ------------------------------------------

_DEFAULT_ENGINE = ContainmentEngine()


def default_engine() -> ContainmentEngine:
    return _DEFAULT_ENGINE


def reset_default_engine() -> None:
    """Drop the shared cache (tests; long-lived processes with many schemas)."""
    global _DEFAULT_ENGINE
    _DEFAULT_ENGINE = ContainmentEngine()


def contained_in(
    contained: ConjunctiveQuery, container: ConjunctiveQuery
) -> Witness | None:
    return _DEFAULT_ENGINE.contained_in(contained, container)


def equivalent(
    left: ConjunctiveQuery, right: ConjunctiveQuery
) -> tuple[Witness, Witness] | None:
    return _DEFAULT_ENGINE.equivalent(left, right)


def mapping_implies(
    stronger: LogicalMapping | UnitaryMapping,
    weaker: LogicalMapping | UnitaryMapping,
    *,
    stronger_consequent_conditions: ConsequentConditions | None = None,
    weaker_consequent_conditions: ConsequentConditions | None = None,
) -> Witness | None:
    return _DEFAULT_ENGINE.mapping_implies(
        stronger,
        weaker,
        stronger_consequent_conditions=stronger_consequent_conditions,
        weaker_consequent_conditions=weaker_consequent_conditions,
    )
