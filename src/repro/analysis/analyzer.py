"""The analysis entry points: :func:`analyze` and :func:`quick_lint`.

:func:`analyze` is the full static-analysis pass the ``repro lint`` CLI
subcommand runs: schema checks (``SCH*``), mapping checks (``MAP*``) and —
when the earlier layers are sound enough to generate a transformation —
Datalog checks (``DLG*``) on the emitted program.  It accepts a
:class:`~repro.core.pipeline.MappingProblem`, a
:class:`~repro.datalog.program.DatalogProgram` or a bare
:class:`~repro.model.schema.Schema` and never raises on findings: everything
comes back in an :class:`~repro.analysis.diagnostics.AnalysisReport`.

:func:`quick_lint` is the cheap always-on subset
:meth:`repro.core.pipeline.MappingSystem.compile` runs: static schema and
coverage checks only, no pipeline execution.
"""

from __future__ import annotations

from typing import Union

from ..core.pipeline import MappingProblem
from ..core.schema_mapping import NOVEL
from ..datalog.program import DatalogProgram
from ..errors import ReproError
from ..model.schema import Schema
from ..obs import span
from .datalog_lint import lint_program
from .diagnostics import AnalysisReport, diagnostic
from .mapping_lint import (
    correspondence_diagnostics,
    coverage_diagnostics,
    lint_mapping,
)
from .schema_lint import lint_schema

Analyzable = Union[MappingProblem, DatalogProgram, Schema]


def _analyze_problem(
    problem: MappingProblem, deep: bool, algorithm: str, flow: bool
) -> AnalysisReport:
    report = AnalysisReport(subject=problem.name)
    report.extend(lint_schema(problem.source_schema))
    report.extend(lint_schema(problem.target_schema))
    schema_errors = not report.ok
    report.extend(lint_mapping(problem, deep=deep and not schema_errors,
                               algorithm=algorithm))
    if deep and report.ok and problem.correspondences:
        # The layers below are sound: generate the transformation and lint it.
        try:
            from ..core.pipeline import MappingSystem

            program = MappingSystem(problem, algorithm=algorithm).transformation
        except ReproError as error:
            carried = getattr(error, "diagnostic", None)
            report.add(
                carried
                if carried is not None
                else diagnostic(
                    "MAP005",
                    f"query generation failed for {problem.name!r}: {error}",
                    subject=problem.name,
                )
            )
        else:
            report.extend(lint_program(program))
            if flow:
                from .flow import flow_diagnostics

                report.extend(flow_diagnostics(program, problem))
    return report


def analyze(
    subject: Analyzable,
    deep: bool = True,
    algorithm: str = NOVEL,
    flow: bool = False,
) -> AnalysisReport:
    """Run the static analyzer over a problem, a program or a schema.

    ``deep=False`` restricts the pass to the static checks (no pipeline
    stages are executed).  ``algorithm`` selects which query-generation
    algorithm the deep mapping checks and the generated program reflect.
    ``flow=True`` additionally runs the abstract-interpretation engine of
    :mod:`repro.analysis.flow` over the generated (or given) program and
    appends its ``FLW*`` findings.
    """
    with span("lint.analyze", kind=type(subject).__name__):
        if isinstance(subject, MappingProblem):
            return _analyze_problem(subject, deep, algorithm, flow)
        if isinstance(subject, DatalogProgram):
            report = AnalysisReport(subject="datalog-program")
            report.extend(lint_program(subject))
            if flow:
                from .flow import flow_diagnostics

                report.extend(flow_diagnostics(subject))
            return report
        if isinstance(subject, Schema):
            report = AnalysisReport(subject=subject.name)
            report.extend(lint_schema(subject))
            return report
    raise TypeError(
        f"cannot analyze {type(subject).__name__}: expected MappingProblem, "
        "DatalogProgram or Schema"
    )


def quick_lint(problem: MappingProblem) -> AnalysisReport:
    """The cheap always-on subset: schema structure + static coverage.

    Runs no pipeline stage and no satisfiability checks, so it is safe to
    call on every :meth:`~repro.core.pipeline.MappingSystem.compile`.
    """
    report = AnalysisReport(subject=problem.name)
    report.extend(lint_schema(problem.source_schema))
    report.extend(lint_schema(problem.target_schema))
    report.extend(correspondence_diagnostics(problem))
    report.extend(coverage_diagnostics(problem))
    return report
