"""SARIF 2.1.0 serialization of analysis reports.

`SARIF <https://docs.oasis-open.org/sarif/sarif/v2.1.0/sarif-v2.1.0.html>`_
is the interchange format CI systems (GitHub code scanning among them)
ingest for static-analysis results.  :func:`to_sarif` emits one ``run`` of
the ``repro-lint`` driver: every registered code becomes a ``rule`` (so
viewers can show titles and help even for codes with zero findings), every
diagnostic a ``result`` with its message, level and — when a source span is
attached — a physical location.

The emitted shape is pinned by ``docs/sarif_lint.schema.json`` and checked
in CI with the :mod:`repro.obs.schema` validator.
"""

from __future__ import annotations

import json

from .diagnostics import CODES, INFO, AnalysisReport, Diagnostic, SourceSpan

#: SARIF calls the lowest level "note", not "info".
_LEVELS = {INFO: "note"}

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = (
    "https://docs.oasis-open.org/sarif/sarif/v2.1.0/cos02/schemas/"
    "sarif-schema-2.1.0.json"
)


def _level(severity: str) -> str:
    return _LEVELS.get(severity, severity)


def _driver_version() -> str:
    from .. import __version__

    return __version__


def _rules() -> list[dict]:
    rules = []
    for info in CODES.values():
        rule = {
            "id": info.code,
            "name": info.title.title().replace(" ", "").replace("/", ""),
            "shortDescription": {"text": info.title},
            "defaultConfiguration": {"level": _level(info.severity)},
        }
        if info.help:
            rule["fullDescription"] = {"text": info.help}
            rule["help"] = {"text": f"{info.help} (paper {info.section})"}
        rules.append(rule)
    return rules


def _location(span: SourceSpan) -> dict:
    region: dict = {"startLine": span.line}
    if span.column is not None:
        region["startColumn"] = span.column
    if span.end_line is not None:
        region["endLine"] = span.end_line
    if span.end_column is not None:
        region["endColumn"] = span.end_column
    return {
        "physicalLocation": {
            "artifactLocation": {"uri": span.file or "<input>"},
            "region": region,
        }
    }


def _result(item: Diagnostic, rule_index: dict[str, int]) -> dict:
    result: dict = {
        "ruleId": item.code,
        "level": _level(item.severity),
        "message": {"text": item.message},
    }
    index = rule_index.get(item.code)
    if index is not None:
        result["ruleIndex"] = index
    if item.span is not None:
        result["locations"] = [_location(item.span)]
    properties: dict = {}
    if item.subject:
        properties["subject"] = item.subject
    if item.witness:
        properties["witness"] = item.witness
    if properties:
        result["properties"] = properties
    return result


def to_sarif(*reports: AnalysisReport) -> dict:
    """Serialize one or more analysis reports as a SARIF 2.1.0 log dict."""
    rules = _rules()
    rule_index = {rule["id"]: position for position, rule in enumerate(rules)}
    results = [
        _result(item, rule_index) for report in reports for item in report
    ]
    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "version": _driver_version(),
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }


def to_sarif_json(*reports: AnalysisReport, indent: int = 2) -> str:
    """The SARIF log as a JSON string (stable key order)."""
    return json.dumps(to_sarif(*reports), indent=indent, sort_keys=False)


def write_sarif(path: str, *reports: AnalysisReport) -> str:
    """Serialize ``reports`` and write the SARIF log to ``path``.

    The single writer behind every ``--sarif-out`` CLI flag (lint, certify,
    plan --cost): one trailing newline, stable key order.  Returns the JSON
    text so callers printing to stdout don't serialize twice.
    """
    sarif = to_sarif_json(*reports)
    with open(path, "w") as handle:
        handle.write(sarif + "\n")
    return sarif
