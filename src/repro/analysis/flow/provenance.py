"""Source-provenance analysis: which origins can feed each position.

The abstract value of a position is the *set of origins* whose values can
reach it — the flow-sensitive refinement of the coverage analysis of §5.2:
coverage asks whether a correspondence exists on paper, provenance asks
whether a source value actually survives the generated rules into the
target column.  Origins are small tagged tuples:

* ``("source", relation, attribute)`` — a source schema position;
* ``("skolem", functor)`` — a value invented by a Skolem functor (§5.1);
* ``("const",)`` — a rule constant (Clio-style filters);
* ``("null",)`` — the unlabeled null;
* ``("extern", relation)`` — a position of a relation no schema describes.

Two diagnostics read the solved state (see :mod:`.report`):

* ``FLW001`` — a correspondence-targeted position only ``("null",)`` can
  reach: the correspondence is dead, every delivered value is null;
* ``FLW002`` — a mandatory non-key target position fed by Skolem values
  only: the column is populated, but purely with invented values, which
  usually means a correspondence was meant to cover it (§5.3/§6).
"""

from __future__ import annotations

from ...datalog.program import DatalogProgram, Rule
from ...logic.terms import Constant, NullTerm, SkolemTerm, Term, Variable
from .lattice import SetLattice
from .solver import Environment

#: Origin constructors, kept as plain tuples so sets render deterministically.
NULL_ORIGIN = ("null",)
CONST_ORIGIN = ("const",)


def source_origin(relation: str, attribute: str) -> tuple:
    return ("source", relation, attribute)


def skolem_origin(functor: str) -> tuple:
    return ("skolem", functor)


def extern_origin(relation: str) -> tuple:
    return ("extern", relation)


def format_origin(origin: tuple) -> str:
    tag = origin[0]
    if tag == "source":
        return f"{origin[1]}.{origin[2]}"
    if tag == "skolem":
        return f"{origin[1]}(...)"
    if tag == "extern":
        return f"extern:{origin[1]}"
    return tag  # "const", "null"


class _ProvenanceLattice(SetLattice):
    def format(self, value: frozenset) -> str:
        if not value:
            return "{}"
        return "{" + ", ".join(sorted(format_origin(o) for o in value)) + "}"


class ProvenanceAnalysis:
    """Per-position origin sets over one Datalog program."""

    name = "provenance"
    lattice = _ProvenanceLattice()

    def __init__(self, program: DatalogProgram):
        self._program = program

    def seed(self, relation: str, position: int) -> frozenset:
        source = self._program.source_schema
        if source is not None and relation in source:
            attributes = source.relation(relation).attributes
            if position < len(attributes):
                origins = {source_origin(relation, attributes[position].name)}
                if attributes[position].nullable:
                    origins.add(NULL_ORIGIN)
                return frozenset(origins)
        return frozenset({extern_origin(relation)})

    def _term_origins(self, term: Term, rule: Rule, env: Environment) -> frozenset:
        if isinstance(term, NullTerm):
            return frozenset({NULL_ORIGIN})
        if isinstance(term, Constant):
            return frozenset({CONST_ORIGIN})
        if isinstance(term, SkolemTerm):
            # The produced value is the invented one whatever its arguments.
            return frozenset({skolem_origin(term.functor)})
        if not isinstance(term, Variable):  # pragma: no cover - defensive
            return frozenset()
        origins = self.lattice.join_all(env.variable(rule, term))
        if term in rule.nonnull_vars:
            origins -= {NULL_ORIGIN}  # the condition filters null bindings out
        if term in rule.null_vars:
            origins = frozenset({NULL_ORIGIN})  # only the null binding survives
        return origins

    def transfer(self, rule: Rule, env: Environment) -> list[frozenset]:
        return [self._term_origins(term, rule, env) for term in rule.head.terms]
