"""Abstract-interpretation dataflow engine over generated Datalog programs.

A monotone framework (lattices + stratum-ordered worklist fixpoint solver,
:mod:`.lattice` / :mod:`.solver`) with three client analyses:

* :mod:`.nullability` — three-valued can-be-null facts per position,
  honoring the ``null`` / ``nonnull`` rule conditions of §5 (backs
  ``DLG010``);
* :mod:`.provenance` — which source relation/attribute sets can feed each
  position (``FLW001`` dead correspondences, ``FLW002`` Skolem-only
  mandatory columns);
* :mod:`.keyorigin` — whether target keys are grounded in source keys
  through the FK paths of §4, and a static replay of Algorithm 4's
  functionality check (``FLW003``).

:func:`analyze_flow` runs everything and returns a :class:`FlowReport`;
see ``docs/ANALYSIS.md`` for the code table.
"""

from .lattice import (
    BOTTOM,
    MAYBE,
    NO,
    YES,
    Lattice,
    NullabilityLattice,
    RankedLattice,
    SetLattice,
)
from .keyorigin import (
    DET,
    OPEN,
    SKEY,
    FunctionalityRecord,
    KeyOriginAnalysis,
    functionality_records,
)
from .nullability import NullabilityAnalysis, rule_term_status
from .provenance import NULL_ORIGIN, ProvenanceAnalysis
from .report import FlowReport, analyze_flow, flow_diagnostics
from .solver import Environment, FlowError, FlowResult, FlowStats, solve

__all__ = [
    "BOTTOM",
    "MAYBE",
    "NO",
    "YES",
    "DET",
    "OPEN",
    "SKEY",
    "NULL_ORIGIN",
    "Lattice",
    "NullabilityLattice",
    "RankedLattice",
    "SetLattice",
    "Environment",
    "FlowError",
    "FlowResult",
    "FlowStats",
    "FlowReport",
    "FunctionalityRecord",
    "KeyOriginAnalysis",
    "NullabilityAnalysis",
    "ProvenanceAnalysis",
    "analyze_flow",
    "flow_diagnostics",
    "functionality_records",
    "rule_term_status",
    "solve",
]
