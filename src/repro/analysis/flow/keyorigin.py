"""Key-origin analysis: are target keys grounded in source keys (§4, §6)?

The paper's referenced-attribute correspondences route values along foreign
key paths (§4), and Algorithm 4 demands that every unitary mapping be
*functional*: the non-key attributes of the produced tuples must be
functionally determined by the key (§6).  This module checks both facts
statically, without running the chase:

* the **flow analysis** grades every position on the chain
  ``BOTTOM ⊑ SKEY ⊑ DET ⊑ OPEN`` (ranked worst-last):

  - ``SKEY`` — the value is a source key value, a copy of one along a
    mandatory foreign key to a simple key, or an injective (Skolem) image
    of determined values: knowing the source keys pins it down, and it is
    itself key-grade;
  - ``DET`` — the value is a function of source key attributes (every
    source attribute qualifies, by its own relation's key → row FD);
  - ``OPEN`` — no static determination is known;

* the **functionality confirmation** replays Algorithm 4's check per target
  rule: seed the determined-variable set from the head's key terms (Skolem
  functors are injective, so a key term ``f(x, y)`` determines ``x`` and
  ``y``), close it under source key → row FDs and rule equalities, and
  require every non-key head term to be determined.  ``FLW003`` reports the
  rules the closure cannot confirm — a warning, because the closure is
  sound but incomplete where the dynamic check of
  :mod:`repro.core.functionality` decides exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...datalog.program import DatalogProgram, Rule
from ...logic.terms import Constant, NullTerm, SkolemTerm, Term, Variable
from .lattice import RankedLattice
from .solver import Environment

BOTTOM_GRADE = "bottom"
SKEY = "skey"
DET = "det"
OPEN = "open"

_CHAIN = (BOTTOM_GRADE, SKEY, DET, OPEN)


class _KeyOriginLattice(RankedLattice):
    def __init__(self) -> None:
        super().__init__(_CHAIN)

    def meet(self, left: str, right: str) -> str:
        """Greatest lower bound: a chain's meet is the lower rank."""
        return left if self._rank[left] <= self._rank[right] else right


class KeyOriginAnalysis:
    """Per-position determination grades over one Datalog program."""

    name = "keyorigin"
    lattice = _KeyOriginLattice()

    def __init__(self, program: DatalogProgram):
        self._program = program

    def seed(self, relation: str, position: int) -> str:
        source = self._program.source_schema
        if source is not None and relation in source:
            rel = source.relation(relation)
            if position >= rel.arity:  # pragma: no cover - malformed atom
                return OPEN
            attribute = rel.attributes[position]
            if position in rel.key_positions():
                return SKEY
            fk = source.foreign_key_from(relation, attribute.name)
            if fk is not None and not attribute.nullable:
                # A mandatory FK to a (necessarily simple, §3.1) key: the
                # value always equals a key value of the referenced relation.
                return SKEY
            return DET  # any source attribute is determined by its own key
        return OPEN

    def _variable_grades(self, rule: Rule, env: Environment) -> dict[Variable, str]:
        lattice = self.lattice
        grades: dict[Variable, str] = {}
        for var in rule.body_variables():
            grade = OPEN
            for value in env.variable(rule, var):
                grade = lattice.meet(grade, value)
            grades[var] = grade
        for var in rule.null_vars:
            if var in grades:  # always null: fully determined, key-grade
                grades[var] = SKEY
        for equality in rule.equalities:
            for var, other in (
                (equality.left, equality.right),
                (equality.right, equality.left),
            ):
                if isinstance(var, Variable) and isinstance(other, Constant):
                    if var in grades:
                        grades[var] = SKEY
        changed = True
        while changed:  # propagate var = var equalities to a fixpoint
            changed = False
            for equality in rule.equalities:
                left, right = equality.left, equality.right
                if isinstance(left, Variable) and isinstance(right, Variable):
                    if left in grades and right in grades:
                        best = lattice.meet(grades[left], grades[right])
                        if grades[left] != best or grades[right] != best:
                            grades[left] = grades[right] = best
                            changed = True
        return grades

    def _term_grade(self, term: Term, grades: dict[Variable, str]) -> str:
        if isinstance(term, (Constant, NullTerm)):
            return SKEY  # fixed values: trivially determined, usable as keys
        if isinstance(term, Variable):
            return grades.get(term, OPEN)
        if isinstance(term, SkolemTerm):
            for var in term.variables():
                if not self.lattice.leq(grades.get(var, OPEN), DET):
                    return OPEN  # an undetermined argument: image is open
            return SKEY  # injective image of determined values
        return OPEN  # pragma: no cover - defensive

    def transfer(self, rule: Rule, env: Environment) -> list[str]:
        grades = self._variable_grades(rule, env)
        return [self._term_grade(term, grades) for term in rule.head.terms]


@dataclass(frozen=True)
class FunctionalityRecord:
    """The static outcome of Algorithm 4's functionality check for one rule."""

    rule: Rule
    relation: str
    confirmed: bool
    #: Names of the target attributes the closure could not determine.
    undetermined: tuple[str, ...] = ()


def _determined_closure(rule: Rule, seed: set[Variable], program: DatalogProgram) -> set[Variable]:
    """Close ``seed`` under source key → row FDs and rule equalities."""
    source = program.source_schema
    determined = set(seed)
    determined.update(rule.null_vars)  # always-null variables are fixed
    for equality in rule.equalities:
        for var, other in (
            (equality.left, equality.right),
            (equality.right, equality.left),
        ):
            if isinstance(var, Variable) and isinstance(other, Constant):
                determined.add(var)
    changed = True
    while changed:
        changed = False
        for equality in rule.equalities:
            left, right = equality.left, equality.right
            if isinstance(left, Variable) and isinstance(right, Variable):
                if (left in determined) != (right in determined):
                    determined.update((left, right))
                    changed = True
        for atom in rule.body:
            if source is None or atom.relation not in source:
                continue  # no FD known for intermediate or opaque relations
            rel = source.relation(atom.relation)
            key_terms = [
                atom.terms[position]
                for position in rel.key_positions()
                if position < len(atom.terms)
            ]
            if all(
                not isinstance(term, Variable) or term in determined
                for term in key_terms
            ):
                for var in atom.variables():
                    if var not in determined:
                        determined.add(var)
                        changed = True
    return determined


def _term_determined(term: Term, determined: set[Variable]) -> bool:
    if isinstance(term, (Constant, NullTerm)):
        return True
    if isinstance(term, Variable):
        return term in determined
    if isinstance(term, SkolemTerm):
        return all(var in determined for var in term.variables())
    return False  # pragma: no cover - defensive


def functionality_records(program: DatalogProgram) -> list[FunctionalityRecord]:
    """Replay Algorithm 4's functionality check statically, rule by rule.

    Only rules over target schema relations are graded (intermediates have
    no declared key to be functional against).
    """
    target = program.target_schema
    if target is None:
        return []
    records: list[FunctionalityRecord] = []
    for rule in program.target_rules():
        relation = rule.head_relation
        if relation not in target:
            continue
        rel = target.relation(relation)
        key_positions = set(rel.key_positions())
        seed: set[Variable] = set()
        for position in sorted(key_positions):
            if position < len(rule.head.terms):
                seed.update(rule.head.terms[position].variables())
        determined = _determined_closure(rule, seed, program)
        undetermined = tuple(
            rel.attributes[position].name
            for position, term in enumerate(rule.head.terms)
            if position < rel.arity
            and position not in key_positions
            and not _term_determined(term, determined)
        )
        records.append(
            FunctionalityRecord(
                rule=rule,
                relation=relation,
                confirmed=not undetermined,
                undetermined=undetermined,
            )
        )
    return records
