"""The three-valued nullability analysis (``NO`` / ``YES`` / ``MAYBE``).

This is the flow-sensitive half of the paper's null story: coverage levels
``mand | null | nonnull`` (§5) put ``x = null`` / ``x ≠ null`` conditions on
the generated rules, and nullable source attributes (§3.1) inject possible
nulls at the leaves.  The analysis answers, for every position of every
defined relation, "can the value here be the unlabeled null?":

* ``NO`` — never null (constants, Skolem terms — invented values are
  labeled nulls, which the data model keeps distinct from ``null`` — and
  variables constrained non-null);
* ``YES`` — always null whenever a row reaches the position;
* ``MAYBE`` — either;
* ``BOTTOM`` — no row ever reaches the position.

``DLG010`` is a thin client of this analysis: it re-evaluates the head terms
of the target rules under the solved environment and flags mandatory target
columns whose status is not ``NO``.
"""

from __future__ import annotations

from ...datalog.program import DatalogProgram, Rule
from ...logic.terms import Constant, NullTerm, SkolemTerm, Term, Variable
from .lattice import BOTTOM, MAYBE, NO, YES, NullabilityLattice
from .solver import Environment

_LATTICE = NullabilityLattice()


def rule_term_status(term: Term, rule: Rule, env: Environment) -> str:
    """The nullability of one rule term under the rule's own conditions.

    Shared by the solver transfer function and the ``DLG010`` check, so the
    diagnostic and the fixpoint can never disagree on a term.  Variables take
    the *meet* over every position binding them — a value bound at several
    positions satisfies all of them, so ``NO ⊓ YES = BOTTOM`` means the rule
    can never fire with that binding.
    """
    if isinstance(term, NullTerm):
        return YES
    if isinstance(term, (Constant, SkolemTerm)):
        return NO  # constants and invented (labeled-null) values are never null
    if not isinstance(term, Variable):  # pragma: no cover - defensive
        return MAYBE
    if term in rule.nonnull_vars:
        return NO
    if term in rule.null_vars:
        return YES
    for equality in rule.equalities:
        if (equality.left is term and isinstance(equality.right, Constant)) or (
            equality.right is term and isinstance(equality.left, Constant)
        ):
            return NO  # equated to a constant: the binding is that constant
    for disequality in rule.disequalities:
        if (disequality.left is term and isinstance(disequality.right, NullTerm)) or (
            disequality.right is term and isinstance(disequality.left, NullTerm)
        ):
            return NO
    status = MAYBE
    for value in env.variable(rule, term):
        status = _LATTICE.meet(status, value)
    # Bound only at nullable/unknown positions — or unbound, which DLG001
    # reports separately.  Either way the value may be null.
    return status


class NullabilityAnalysis:
    """Per-position "can this be null?" over one Datalog program."""

    name = "nullability"
    lattice = _LATTICE

    def __init__(self, program: DatalogProgram):
        self._program = program

    def seed(self, relation: str, position: int) -> str:
        for schema in (self._program.source_schema, self._program.target_schema):
            if schema is not None and relation in schema:
                attributes = schema.relation(relation).attributes
                if position < len(attributes):
                    return MAYBE if attributes[position].nullable else NO
        return MAYBE  # opaque relation: anything may sit there

    def transfer(self, rule: Rule, env: Environment) -> list[str] | None:
        row = []
        for term in rule.head.terms:
            status = rule_term_status(term, rule, env)
            if status == BOTTOM:
                return None  # an unsatisfiable binding: the rule derives nothing
            row.append(status)
        return row
