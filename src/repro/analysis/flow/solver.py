"""The stratum-ordered worklist fixpoint solver of the flow engine.

This is a classic monotone-framework solver specialized to Datalog
programs: the abstract state maps every *position* (relation, column index)
to a value of the analysis' lattice; source-schema positions are seeded by
the analysis; defined relations start at bottom and accumulate, rule by
rule, the join of their rules' abstract head rows.  Relations are visited in
stratification order (dependencies first, reusing
:func:`repro.datalog.stratify.dependencies`), so on the non-recursive
programs query generation emits a single sweep reaches the fixpoint; the
worklist re-enqueues the readers of any relation whose state changed
(:func:`repro.datalog.stratify.readers`), which also makes the solver total
on recursive or hand-built programs.  After ``widen_after`` visits of the
same relation the solver switches from join to the lattice's widening
operator, so domains of unbounded height still terminate.

An analysis (client) provides:

* ``name`` — a short identifier for dumps and telemetry;
* ``lattice`` — a :class:`repro.analysis.flow.lattice.Lattice`;
* ``seed(relation, position)`` — the initial value of an undefined (source
  or opaque) position;
* ``transfer(rule, env)`` — the abstract head row one rule derives under
  the current environment, as a list of lattice values (one per head
  position), or ``None`` when the rule provably derives nothing.

Transfer functions must be monotone in ``env``; the property test suite
checks both monotonicity and the post-fixpoint condition on random
programs.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Iterator

from ...datalog.program import DatalogProgram, Rule
from ...datalog.stratify import DatalogError, readers, stratify
from ...errors import ReproError
from ...logic.terms import Variable
from ...obs import count, metric_inc

#: Visits of one relation after which join gives way to widening.
DEFAULT_WIDEN_AFTER = 3

#: Hard ceiling on relation visits — a genuinely diverging analysis (a
#: non-monotone client or a broken widening) fails loudly instead of looping.
MAX_VISITS_PER_RELATION = 100


class FlowError(ReproError):
    """The fixpoint solver diverged (non-monotone client or broken widening)."""


Position = tuple[str, int]


class Environment:
    """The abstract state: one lattice value per (relation, position).

    Reads of positions the solver has not touched are answered by the
    analysis' ``seed`` — so source relations and opaque (never-defined)
    relations need no up-front enumeration.
    """

    def __init__(self, analysis: "object"):
        self._analysis = analysis
        self._values: dict[Position, Any] = {}
        self._defined: set[str] = set()

    def mark_defined(self, relation: str) -> None:
        """Defined relations start at bottom instead of their seed."""
        self._defined.add(relation)

    def lookup(self, relation: str, position: int) -> Any:
        key = (relation, position)
        value = self._values.get(key)
        if value is not None:
            return value
        if relation in self._defined:
            return self._analysis.lattice.bottom()
        value = self._analysis.seed(relation, position)
        self._values[key] = value
        return value

    def variable(self, rule: Rule, var: Variable) -> list[Any]:
        """The values of every positive body position binding ``var``."""
        found = []
        for atom in rule.body:
            for index, term in enumerate(atom.terms):
                if term is var:
                    found.append(self.lookup(atom.relation, index))
        return found

    def set(self, relation: str, position: int, value: Any) -> None:
        self._values[(relation, position)] = value

    def row(self, relation: str, arity: int) -> list[Any]:
        return [self.lookup(relation, index) for index in range(arity)]

    def items(self) -> Iterator[tuple[Position, Any]]:
        return iter(sorted(self._values.items()))


@dataclass
class FlowStats:
    """Solver telemetry: also serialized into ``BENCH_flow.json``."""

    iterations: int = 0  # relation visits
    updates: int = 0  # position values that changed
    widenings: int = 0  # updates that went through Lattice.widen
    relations: int = 0  # defined relations solved

    def to_dict(self) -> dict[str, int]:
        return {
            "iterations": self.iterations,
            "updates": self.updates,
            "widenings": self.widenings,
            "relations": self.relations,
        }


@dataclass
class FlowResult:
    """The solved abstract state of one analysis over one program."""

    analysis: "object"
    program: DatalogProgram
    env: Environment
    stats: FlowStats = field(default_factory=FlowStats)

    @property
    def name(self) -> str:
        return self.analysis.name

    def value(self, relation: str, position: int) -> Any:
        return self.env.lookup(relation, position)

    def relation_values(self, relation: str) -> list[Any]:
        arity = self.program.relation_arity(relation)
        if arity is None:
            raise ReproError(f"unknown relation {relation!r} in flow result")
        return self.env.row(relation, arity)


def evaluation_order(program: DatalogProgram) -> list[str]:
    """Stratification order when it exists, first-definition order otherwise.

    Recursive programs have no stratification, but the worklist solver still
    converges on them (finite-height lattices, or widening); they just lose
    the single-sweep guarantee.
    """
    try:
        return stratify(program)
    except DatalogError:
        return program.defined_relations()


def solve(
    program: DatalogProgram,
    analysis: "object",
    widen_after: int = DEFAULT_WIDEN_AFTER,
) -> FlowResult:
    """Run one analysis to fixpoint and return the solved environment."""
    lattice = analysis.lattice
    env = Environment(analysis)
    defined = program.defined_relations()
    for relation in defined:
        env.mark_defined(relation)

    stats = FlowStats(relations=len(defined))
    order = evaluation_order(program)
    reverse = readers(program)
    pending = deque(order)
    queued = set(order)
    visits: dict[str, int] = {}

    while pending:
        relation = pending.popleft()
        queued.discard(relation)
        visits[relation] = visits.get(relation, 0) + 1
        if visits[relation] > MAX_VISITS_PER_RELATION:
            raise FlowError(
                f"flow analysis {analysis.name!r} diverged on relation "
                f"{relation!r}: {MAX_VISITS_PER_RELATION} visits without a "
                "fixpoint (non-monotone transfer or ineffective widening)"
            )
        stats.iterations += 1
        count(f"flow.{analysis.name}.iterations")
        changed = False
        for rule in program.rules_for(relation):
            row = analysis.transfer(rule, env)
            if row is None:
                continue  # the rule provably derives no tuples
            for position, value in enumerate(row):
                old = env.lookup(relation, position)
                new = lattice.join(old, value)
                if visits[relation] > widen_after and new != old:
                    new = lattice.widen(old, new)
                    stats.widenings += 1
                if new != old:
                    env.set(relation, position, new)
                    stats.updates += 1
                    changed = True
        if changed:
            for reader in sorted(reverse.get(relation, ())):
                if reader not in queued:
                    pending.append(reader)
                    queued.add(reader)
    count(f"flow.{analysis.name}.updates", stats.updates)
    metric_inc("flow.iterations", stats.iterations, analysis=analysis.name)
    metric_inc("flow.updates", stats.updates, analysis=analysis.name)
    metric_inc("flow.widenings", stats.widenings, analysis=analysis.name)
    return FlowResult(analysis=analysis, program=program, env=env, stats=stats)
