"""Run all flow analyses over one program and turn the fixpoints into
a per-relation dump (``repro flow``), golden-snapshot state, and the
``FLW*`` diagnostics (``repro lint --flow``, ``MappingSystem.compile``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ...datalog.program import DatalogProgram
from ...logic.terms import Variable
from ..diagnostics import Diagnostic, SourceSpan, diagnostic
from .keyorigin import FunctionalityRecord, KeyOriginAnalysis, functionality_records
from .nullability import NullabilityAnalysis
from .provenance import NULL_ORIGIN, ProvenanceAnalysis
from .solver import FlowResult, evaluation_order, solve


def _correspondence_targets(problem) -> dict[tuple[str, str], SourceSpan | None]:
    """Target positions some correspondence delivers a value into.

    Maps ``(relation, attribute)`` to the first declaring correspondence's
    DSL span (``None`` for programmatic problems).
    """
    targets: dict[tuple[str, str], SourceSpan | None] = {}
    if problem is None:
        return targets
    for item in problem.correspondences:
        key = (item.target.relation, item.target.attribute)
        if key not in targets or (targets[key] is None and item.span is not None):
            targets[key] = item.span
    return targets


def _attribute_span(program: DatalogProgram, relation: str, position: int):
    target = program.target_schema
    if target is None or relation not in target:
        return None
    attributes = target.relation(relation).attributes
    if position < len(attributes):
        return attributes[position].span
    return None


@dataclass
class FlowReport:
    """The solved abstract states of all flow analyses over one program."""

    program: DatalogProgram
    nullability: FlowResult
    provenance: FlowResult
    keyorigin: FlowResult
    functionality: list[FunctionalityRecord] = field(default_factory=list)
    diagnostics: list[Diagnostic] = field(default_factory=list)

    @property
    def results(self) -> tuple[FlowResult, FlowResult, FlowResult]:
        return (self.nullability, self.provenance, self.keyorigin)

    def stats(self) -> dict[str, dict[str, int]]:
        return {result.name: result.stats.to_dict() for result in self.results}

    def states(self) -> dict[str, dict[str, list[str]]]:
        """Per-analysis, per-relation formatted position values.

        The shape is stable and JSON-friendly; the golden snapshot tests
        compare it verbatim across runs.
        """
        relations = evaluation_order(self.program)
        out: dict[str, dict[str, list[str]]] = {}
        for result in self.results:
            lattice = result.analysis.lattice
            per_relation: dict[str, list[str]] = {}
            for relation in relations:
                per_relation[relation] = [
                    lattice.format(value)
                    for value in result.relation_values(relation)
                ]
            out[result.name] = per_relation
        return out

    def _position_label(self, relation: str, position: int) -> str:
        for schema in (self.program.target_schema, self.program.source_schema):
            if schema is not None and relation in schema:
                rel = schema.relation(relation)
                if position < rel.arity:
                    name = rel.attributes[position].name
                    if position in rel.key_positions():
                        name += "*"
                    return name
        return str(position)

    def render(self) -> str:
        """The ``repro flow`` dump: one block per defined relation."""
        lines: list[str] = []
        relations = evaluation_order(self.program)
        iterations = sum(r.stats.iterations for r in self.results)
        lines.append(
            f"flow fixpoint over {len(relations)} relation(s) in "
            f"{iterations} iteration(s)"
        )
        for relation in relations:
            kind = (
                "intermediate"
                if relation in self.program.intermediates
                else "target"
            )
            arity = self.program.relation_arity(relation) or 0
            lines.append(f"relation {relation} ({kind}, arity {arity})")
            for position in range(arity):
                label = self._position_label(relation, position)
                null = self.nullability.value(relation, position)
                origin = self.provenance.analysis.lattice.format(
                    self.provenance.value(relation, position)
                )
                key = self.keyorigin.value(relation, position)
                lines.append(
                    f"  [{position}] {label:<16} null={null:<7} key={key:<7} "
                    f"origins={origin}"
                )
        if self.functionality:
            lines.append("functionality (Algorithm 4, static):")
            for record in self.functionality:
                if record.confirmed:
                    lines.append(f"  {record.relation}: confirmed for {record.rule!r}")
                else:
                    attrs = ", ".join(record.undetermined)
                    lines.append(
                        f"  {record.relation}: NOT confirmed for {record.rule!r} "
                        f"(undetermined: {attrs})"
                    )
        if self.diagnostics:
            lines.append("diagnostics:")
            lines.extend(f"  {item.render()}" for item in self.diagnostics)
        return "\n".join(lines)


def _flw_diagnostics(
    program: DatalogProgram,
    report: FlowReport,
    problem,
) -> list[Diagnostic]:
    found: list[Diagnostic] = []
    target = program.target_schema
    if target is None:
        return found
    targets = _correspondence_targets(problem)
    render_origins = report.provenance.analysis.lattice.format
    for relation in program.defined_relations():
        if relation not in target:
            continue
        rel = target.relation(relation)
        key_positions = set(rel.key_positions())
        for position, attribute in enumerate(rel.attributes):
            origins = report.provenance.value(relation, position)
            if not origins:
                continue  # nothing reaches the position: a coverage concern
            corr_span = targets.get((relation, attribute.name))
            targeted = (relation, attribute.name) in targets
            span = corr_span or attribute.span
            if targeted and origins <= {NULL_ORIGIN}:
                found.append(
                    diagnostic(
                        "FLW001",
                        f"correspondence into {relation}.{attribute.name} is "
                        f"dead: only null can reach it "
                        f"(origins {render_origins(origins)})",
                        subject=f"{relation}.{attribute.name}",
                        span=span,
                    )
                )
                continue
            if (
                not attribute.nullable
                and position not in key_positions
                and all(origin[0] == "skolem" for origin in origins)
            ):
                functors = ", ".join(sorted(origin[1] for origin in origins))
                found.append(
                    diagnostic(
                        "FLW002",
                        f"mandatory attribute {relation}.{attribute.name} is "
                        f"fed only by invented values ({functors}); no "
                        "source value ever reaches it",
                        subject=f"{relation}.{attribute.name}",
                        span=span,
                    )
                )
    for record in report.functionality:
        if record.confirmed:
            continue
        attrs = ", ".join(record.undetermined)
        first_span = None
        rel = target.relation(record.relation) if record.relation in target else None
        if rel is not None:
            for name in record.undetermined:
                if rel.has_attribute(name) and rel.attribute(name).span is not None:
                    first_span = rel.attribute(name).span
                    break
        found.append(
            diagnostic(
                "FLW003",
                f"functionality of rule {record.rule!r} is not statically "
                f"confirmed: {record.relation}.{{{attrs}}} not determined by "
                "the key",
                subject=record.relation,
                span=first_span,
            )
        )
    return found


def analyze_flow(program: DatalogProgram, problem=None) -> FlowReport:
    """Solve all three analyses over ``program`` and attach diagnostics.

    ``problem`` (a :class:`~repro.core.pipeline.MappingProblem`) supplies
    correspondence targets and DSL spans; without it ``FLW001`` is skipped
    (no way to know which positions a correspondence promises to feed).
    """
    from ...obs import span as obs_span

    with obs_span("flow.analyze", rules=len(program.rules)):
        report = FlowReport(
            program=program,
            nullability=solve(program, NullabilityAnalysis(program)),
            provenance=solve(program, ProvenanceAnalysis(program)),
            keyorigin=solve(program, KeyOriginAnalysis(program)),
        )
        report.functionality = functionality_records(program)
        report.diagnostics = _flw_diagnostics(program, report, problem)
    return report


def flow_diagnostics(program: DatalogProgram, problem=None) -> list[Diagnostic]:
    """Just the ``FLW*`` findings of :func:`analyze_flow`."""
    return analyze_flow(program, problem).diagnostics
