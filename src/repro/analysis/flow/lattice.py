"""Lattice protocol and the concrete abstract domains of the flow engine.

A monotone dataflow framework needs, per analysis, a join-semilattice of
abstract values: a least element, a join, a partial order, and — for domains
of unbounded height — a widening operator guaranteeing termination.  The
:class:`Lattice` base class fixes that protocol; the concrete domains used
by the shipped analyses are finite-height (so the default widening, plain
join, already terminates) but the hook is honored by the solver and
exercised by the test suite's synthetic counter domain.

Domains shipped here:

* :class:`NullabilityLattice` — the three-valued "can this position be
  null?" domain ``NO`` / ``YES`` / ``MAYBE`` (plus bottom), ordered
  ``BOTTOM ⊑ NO ⊑ MAYBE`` and ``BOTTOM ⊑ YES ⊑ MAYBE``;
* :class:`SetLattice` — finite powersets under union (source provenance);
* :class:`RankedLattice` — a total order encoded by rank (key origin).
"""

from __future__ import annotations

from typing import Any, Iterable


class Lattice:
    """A join-semilattice of abstract values.

    Subclasses must provide :meth:`bottom` and :meth:`join`; :meth:`leq`
    defaults to ``join(a, b) == b`` and :meth:`widen` to plain join (exact
    for finite-height domains).
    """

    def bottom(self) -> Any:
        raise NotImplementedError

    def join(self, left: Any, right: Any) -> Any:
        raise NotImplementedError

    def leq(self, left: Any, right: Any) -> bool:
        """The partial order: ``left ⊑ right``."""
        return self.join(left, right) == right

    def widen(self, old: Any, new: Any) -> Any:
        """Accelerate convergence; must satisfy ``old ⊔ new ⊑ widen(old, new)``.

        The default is the join itself, which is a correct widening exactly
        for finite-height domains.  Unbounded domains must override this to
        jump to a post-fixpoint (the solver switches from join to widen at a
        position after ``widen_after`` visits of its relation).
        """
        return self.join(old, new)

    def join_all(self, values: Iterable[Any]) -> Any:
        result = self.bottom()
        for value in values:
            result = self.join(result, value)
        return result

    def format(self, value: Any) -> str:
        """Render one abstract value for the ``repro flow`` dump."""
        return str(value)


# -- nullability: BOTTOM ⊑ {NO, YES} ⊑ MAYBE -------------------------------

BOTTOM = "bottom"
NO = "no"
YES = "yes"
MAYBE = "maybe"

_NULL_RANK = {BOTTOM: 0, NO: 1, YES: 1, MAYBE: 2}


class NullabilityLattice(Lattice):
    """Three-valued nullability: ``NO`` never null, ``YES`` always null,
    ``MAYBE`` either; ``BOTTOM`` means "no row reaches this position"."""

    def bottom(self) -> str:
        return BOTTOM

    def join(self, left: str, right: str) -> str:
        if left == right:
            return left
        if left == BOTTOM:
            return right
        if right == BOTTOM:
            return left
        return MAYBE  # NO ⊔ YES, or anything ⊔ MAYBE

    def leq(self, left: str, right: str) -> bool:
        return left == right or left == BOTTOM or right == MAYBE

    def meet(self, left: str, right: str) -> str:
        """The greatest lower bound (used by variable transfer functions:
        a variable bound at several positions satisfies all of them)."""
        if left == right:
            return left
        if left == MAYBE:
            return right
        if right == MAYBE:
            return left
        return BOTTOM  # NO ⊓ YES, or anything ⊓ BOTTOM


# -- provenance: finite powersets under union ------------------------------


class SetLattice(Lattice):
    """Frozen sets under union.  With a ``universe``, widening jumps to it."""

    def __init__(self, universe: frozenset | None = None):
        self.universe = universe

    def bottom(self) -> frozenset:
        return frozenset()

    def join(self, left: frozenset, right: frozenset) -> frozenset:
        return left | right

    def leq(self, left: frozenset, right: frozenset) -> bool:
        return left <= right

    def widen(self, old: frozenset, new: frozenset) -> frozenset:
        joined = old | new
        if self.universe is not None and joined != old:
            return self.universe
        return joined

    def format(self, value: frozenset) -> str:
        return "{" + ", ".join(sorted(str(v) for v in value)) + "}"


# -- key origin: a total order encoded by rank -----------------------------


class RankedLattice(Lattice):
    """A chain ``v0 ⊑ v1 ⊑ ... ⊑ vn`` given as an ordered value tuple."""

    def __init__(self, chain: tuple[str, ...]):
        if not chain:
            raise ValueError("a ranked lattice needs at least one value")
        self.chain = chain
        self._rank = {value: rank for rank, value in enumerate(chain)}

    def bottom(self) -> str:
        return self.chain[0]

    def join(self, left: str, right: str) -> str:
        return left if self._rank[left] >= self._rank[right] else right

    def leq(self, left: str, right: str) -> bool:
        return self._rank[left] <= self._rank[right]
