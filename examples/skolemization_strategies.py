"""The four skolemization procedures of Appendix B, side by side.

For each example B.1–B.5, prints the per-strategy target instance sizes,
whether the result is a universal solution, and whether target keys survive —
reproducing the appendix's comparison and its conclusion that only
All-Source-Or-Key-Vars always yields functional *and* universal solutions.

Run:  python examples/skolemization_strategies.py
"""

from repro.core.query_generation import build_program, rewrite_to_unitary
from repro.core.skolem import STRATEGIES, skolemize_schema_mapping
from repro.datalog import evaluate
from repro.exchange import (
    canonical_universal_solution,
    is_universal_solution,
    measure_instance,
)
from repro.scenarios.appendix_b import ALL_SCENARIOS


def run_strategy(scenario, strategy):
    skolemized = skolemize_schema_mapping(
        list(scenario.schema_mapping), scenario.target_schema, strategy=strategy
    )
    program = build_program(
        rewrite_to_unitary(skolemized),
        scenario.source_schema,
        scenario.target_schema,
    )
    return evaluate(program, scenario.source_instance).target


def main() -> None:
    for name in sorted(ALL_SCENARIOS):
        scenario = ALL_SCENARIOS[name]()
        canonical = canonical_universal_solution(
            scenario.schema_mapping, scenario.source_instance
        )
        print(f"=== Example {name} ===")
        print(f"{'strategy':26} {'tuples':>6} {'invented':>8} {'keys ok':>8} {'universal':>9}")
        for strategy in STRATEGIES:
            output = run_strategy(scenario, strategy)
            metrics = measure_instance(output)
            universal = is_universal_solution(output, canonical)
            print(
                f"{strategy:26} {metrics.total_tuples:>6} "
                f"{metrics.distinct_invented:>8} "
                f"{str(metrics.key_violations == 0):>8} {str(universal):>9}"
            )
        print()


if __name__ == "__main__":
    main()
