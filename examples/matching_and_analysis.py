"""Bootstrapping a mapping with the matcher, then auditing it semantically.

Starts from two bare schemas with *no* correspondences, lets the name-based
matcher draw the lines automatically, runs the pipeline, and asks the
data-exchange analyzer how good the result is (constraint satisfaction,
canonical/universal-solution checks, certain answers).

Run:  python examples/matching_and_analysis.py
"""

from repro.core.matching import bootstrap_problem, suggest_correspondences
from repro.core.pipeline import MappingSystem
from repro.exchange import analyze_transformation, certain_answers, query
from repro.logic.atoms import RelationalAtom
from repro.logic.terms import Variable
from repro.scenarios.cars import cars2_schema, cars3_schema, cars3_source_instance


def main() -> None:
    source_schema, target_schema = cars3_schema(), cars2_schema()

    print("matcher suggestions (no correspondences drawn by hand):")
    for suggestion in suggest_correspondences(source_schema, target_schema):
        print(f"  {suggestion!r}")

    problem, _ = bootstrap_problem(source_schema, target_schema, threshold=0.8)
    system = MappingSystem(problem)
    source = cars3_source_instance()

    print("\nschema mapping from the auto-matched problem:")
    print(system.schema_mapping)

    analysis = analyze_transformation(system, source)
    print("\ntarget instance:")
    print(analysis.output.to_text())
    print("\nsemantic analysis:")
    print(analysis.summary())

    c, m, p, n, e = (Variable(x) for x in "cmpne")
    owners = query(
        [c, n],
        RelationalAtom("C2", (c, m, p)),
        RelationalAtom("P2", (p, n, e)),
    )
    print("\ncertain answers to 'which car is owned by whom?':")
    for car, name in sorted(certain_answers(owners, analysis.output)):
        print(f"  {car} -> {name}")


if __name__ == "__main__":
    main()
