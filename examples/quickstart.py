"""Quickstart: the paper's running example (Figure 1) end to end.

Builds the CARS3 and CARS2 schemas, draws the seven correspondence lines,
generates the schema mapping and the executable transformation with both the
basic (Clio-style) and the novel algorithms, and runs them on the instance of
Figures 2/3 — reproducing exactly the contrast the paper opens with.

Run:  python examples/quickstart.py
"""

from repro import BASIC, MappingProblem, MappingSystem, SchemaBuilder
from repro.dsl import render_program, render_schema_mapping
from repro.exchange import comparison_table
from repro.model import instance_from_dict


def build_problem() -> MappingProblem:
    """The Figure 1 mapping problem: CARS3 (source) to CARS2 (target)."""
    cars3 = (
        SchemaBuilder("CARS3")
        .relation("P3", "person", "name", "email", key="person")
        .relation("C3", "car", "model", key="car")
        .relation("O3", "car", "person", key="car")
        .foreign_key("O3", "car", "C3")
        .foreign_key("O3", "person", "P3")
        .build()
    )
    cars2 = (
        SchemaBuilder("CARS2")
        .relation("P2", "person", "name", "email", key="person")
        .relation("C2", "car", "model", "person?", key="car")  # nullable owner
        .foreign_key("C2", "person", "P2")
        .build()
    )
    problem = MappingProblem(cars3, cars2, name="figure-1")
    for source, target, label in [
        ("P3.person", "P2.person", "p1"),
        ("P3.name", "P2.name", "p2"),
        ("P3.email", "P2.email", "p3"),
        ("C3.car", "C2.car", "c1"),
        ("C3.model", "C2.model", "c2"),
        ("O3.car", "C2.car", "o1"),
        ("O3.person", "C2.person", "o2"),
    ]:
        problem.add_correspondence(source, target, label)
    return problem


def main() -> None:
    problem = build_problem()
    source = instance_from_dict(
        problem.source_schema,
        {
            "P3": [("p21", "John", "j@..."), ("p22", "MJ", "mj@...")],
            "C3": [("c85", "Ferrari"), ("c86", "Ford")],
            "O3": [("c85", "p22")],
        },
    )
    print("source instance")
    print(source.to_text())

    for name, algorithm in [("basic (Clio-style)", BASIC), ("novel (the paper)", "novel")]:
        system = MappingSystem(problem, algorithm=algorithm)
        print(f"\n=== {name} ===")
        print("schema mapping:")
        print(render_schema_mapping(system.schema_mapping))
        print("transformation:")
        print(render_program(system.transformation))
        output = system.transform(source)
        print("target instance:")
        print(output.to_text())

    basic = MappingSystem(problem, algorithm=BASIC).transform(source)
    novel = MappingSystem(problem).transform(source)
    print("\nquality comparison (Figure 2 vs Figure 3):")
    print(comparison_table({"basic": basic, "novel": novel}))

    # With trace=True the system records every stage; stats() merges the
    # per-stage run reports (see docs/OBSERVABILITY.md).
    traced = MappingSystem(problem, trace=True)
    traced.transform(source)
    print("\ntelemetry (novel algorithm):")
    print(traced.stats().render_profile())


if __name__ == "__main__":
    main()
