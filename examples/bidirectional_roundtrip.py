"""Bidirectional mappings (paper section 8 future work, relational slice).

Consolidates CARS2 into CARS3 (Example C.3's mapping), reverses the problem
automatically, and checks whether the round trip restores the original
registry — it does, because all information survives the forward mapping.
Then drops one correspondence to show how the round-trip report localizes
the information loss.

Run:  python examples/bidirectional_roundtrip.py
"""

from repro.core.bidirectional import check_round_trip, reverse_problem
from repro.dsl import render_schema_mapping
from repro.core.pipeline import MappingSystem
from repro.scenarios.cars import figure14_problem, figure15_source_instance
from repro.scenarios.synthetic import cars2_instance


def main() -> None:
    problem = figure14_problem()  # CARS2 -> CARS3
    print("forward schema mapping (CARS2 -> CARS3):")
    print(render_schema_mapping(MappingSystem(problem).schema_mapping))

    reverse = reverse_problem(problem)
    print("\nreverse schema mapping (CARS3 -> CARS2), derived automatically:")
    print(render_schema_mapping(MappingSystem(reverse).schema_mapping))

    report = check_round_trip(problem, figure15_source_instance())
    print(f"\nround trip on the Figure 15 instance: {report.summary()}")

    big = cars2_instance(n_persons=100, n_cars=300, seed=7)
    print(f"round trip on a 400-tuple registry: {check_round_trip(problem, big).summary()}")

    lossy = figure14_problem()
    lossy.correspondences = [c for c in lossy.correspondences if c.label != "p3"]
    report = check_round_trip(lossy, figure15_source_instance())
    print(f"\nafter dropping the email correspondence: {report.summary()}")
    print(report.diff.to_text())


if __name__ == "__main__":
    main()
