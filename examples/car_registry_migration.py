"""A realistic migration: consolidate a three-table car registry at scale.

The scenario the paper's introduction motivates: an agency migrates its
normalized registry (CARS3: persons / cars / ownerships) into a consolidated
schema with a nullable owner column (CARS2).  This script generates a
synthetic registry with thousands of rows, runs both pipelines, verifies the
novel output against the canonical universal solution, validates integrity
constraints, and finally executes the same transformation on SQLite with the
real PRIMARY KEY / FOREIGN KEY declarations turned on.

Run:  python examples/car_registry_migration.py
"""

import time

from repro import BASIC, MappingSystem
from repro.exchange import (
    canonical_universal_solution,
    comparison_table,
    is_universal_solution,
)
from repro.model import validate_instance
from repro.scenarios.cars import figure1_problem
from repro.scenarios.synthetic import cars3_instance
from repro.sqlgen import run_on_sqlite


def main() -> None:
    problem = figure1_problem()
    registry = cars3_instance(n_persons=800, n_cars=2000, ownership=0.7, seed=42)
    print(
        f"registry: {len(registry.relation('P3'))} persons, "
        f"{len(registry.relation('C3'))} cars, "
        f"{len(registry.relation('O3'))} ownerships"
    )

    outputs = {}
    for name, algorithm in [("basic", BASIC), ("novel", "novel")]:
        system = MappingSystem(problem, algorithm=algorithm)
        start = time.perf_counter()
        outputs[name] = system.transform(registry)
        elapsed = time.perf_counter() - start
        report = validate_instance(outputs[name])
        print(f"{name:6} pipeline: {elapsed * 1000:7.1f} ms, {report.summary()}")

    print("\nquality comparison:")
    print(comparison_table(outputs))

    novel_system = MappingSystem(problem)
    canonical = canonical_universal_solution(
        novel_system.schema_mapping, registry, null_for_nullable_existentials=True
    )
    print(
        "\nnovel output equals the canonical universal solution "
        f"(null policy): {outputs['novel'] == canonical}"
    )
    print(
        "novel output is a universal solution: "
        f"{is_universal_solution(outputs['novel'], canonical)}"
    )

    start = time.perf_counter()
    sql_output = run_on_sqlite(
        novel_system.transformation, registry, enforce_constraints=True
    )
    elapsed = time.perf_counter() - start
    print(
        f"\nSQLite execution with enforced constraints: {elapsed * 1000:.1f} ms, "
        f"matches engine output: {sql_output == outputs['novel']}"
    )

    try:
        run_on_sqlite(
            MappingSystem(problem, algorithm=BASIC).transformation,
            registry,
            enforce_constraints=True,
        )
    except Exception as error:  # sqlite3.IntegrityError
        print(f"basic pipeline under enforced constraints: {type(error).__name__}: {error}")


if __name__ == "__main__":
    main()
