"""A guided walkthrough of Example C.1 — every stage of Algorithm 4.

Reproduces, step by step and with commentary, the paper's most detailed
derivation (Appendix C.1: CARS3 → CARS2a, where every car must have an
owner): logical relations, candidates and pruning, skolemization with nested
functors, the functionality check, key-conflict identification, resolution
with sibling propagation, and the final program and instance (Figure 11).

Run:  python examples/paper_walkthrough.py
"""

from repro.core.conflicts import find_all_conflicts
from repro.core.functionality import check_functionality
from repro.core.pipeline import MappingSystem
from repro.core.query_generation import rewrite_to_unitary
from repro.core.skolem import skolemize_schema_mapping
from repro.dsl import FunctorAbbreviator, render_program, render_schema_mapping
from repro.scenarios.cars import cars3_source_instance, figure10_problem


def main() -> None:
    problem = figure10_problem()
    system = MappingSystem(problem)
    abbreviator = FunctorAbbreviator()

    print("STEP 0 — the mapping problem (Figure 10)")
    print(f"  source: {problem.source_schema!r}")
    print(f"  target: {problem.target_schema!r}")
    print(f"  {len(problem.correspondences)} correspondences\n")

    report = system.schema_mapping_result().report
    print("STEP 1 — logical relations (chase)")
    for tableau in report.source_tableaux:
        print(f"  source: {tableau!r}")
    for tableau in report.target_tableaux:
        print(f"  target: {tableau!r}")

    print("\nSTEP 2 — schema mapping (after candidate generation and pruning)")
    print(render_schema_mapping(system.schema_mapping))

    print("\nSTEP 3 — skolemization (note the nested f_n(f_p(c)) functors)")
    skolemized = skolemize_schema_mapping(
        list(system.schema_mapping), problem.target_schema
    )
    for mapping in skolemized:
        print(f"  {abbreviator.shorten(repr(mapping))}")

    print("\nSTEP 4 — unitary rewriting (the paper's subscripted arrows)")
    unitary = rewrite_to_unitary(skolemized)
    for mapping in unitary:
        print(f"  {mapping.name}: {abbreviator.shorten(repr(mapping))}")

    print("\nSTEP 5 — functionality check (each unitary mapping)")
    for mapping in unitary:
        verdict = check_functionality(
            mapping, problem.source_schema, problem.target_schema
        )
        print(f"  {mapping.name}: {'functional' if verdict is None else verdict}")

    print("\nSTEP 6 — key conflicts")
    conflicts = find_all_conflicts(
        unitary, problem.source_schema, problem.target_schema
    )
    for conflict in conflicts:
        kind = "hard" if conflict.is_hard else "soft"
        print(f"  [{kind}] {conflict} (preferred: {conflict.preferred})")
    print("  (the invented-key P2a mapping conflicts with nothing — Ex 6.3)")

    print("\nSTEP 7 — resolution (negation + sibling propagation) and the program")
    print(render_program(system.transformation))

    print("\nSTEP 8 — the data transformation (Figure 11)")
    print(system.transform(cars3_source_instance()).to_text())


if __name__ == "__main__":
    main()
