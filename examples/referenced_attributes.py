"""Referenced-attribute correspondences (paper sections 2.2, 4, C.2).

Shows why plain attribute correspondences cannot say "only *owners'* names
flow into the target" — and how the paper's referenced-attribute
correspondence ``O3.person ▹ P3.name → C1.name`` fixes it.  Then runs the
owner/driver scenario of Example C.2, where two referenced-attribute
correspondences feed two nullable columns of one relation and the key
conflict machinery fuses them.

Run:  python examples/referenced_attributes.py
"""

from repro import MappingSystem
from repro.dsl import render_program, render_schema_mapping
from repro.scenarios.cars import (
    cars3_source_instance,
    figure4_problem,
    figure4_ra_problem,
    figure12_problem,
    figure13_source_instance,
)


def main() -> None:
    source = cars3_source_instance()

    print("=== plain correspondence P3.name -> C1.name (Figure 4) ===")
    plain = MappingSystem(figure4_problem())
    print(render_schema_mapping(plain.schema_mapping))
    print("\ntarget instance (Figure 5 — note the two invented cars):")
    print(plain.transform(source).to_text())

    print("\n=== referenced-attribute correspondence O3.person > P3.name -> C1.name ===")
    referenced = MappingSystem(figure4_ra_problem())
    print(render_schema_mapping(referenced.schema_mapping))
    print("\ntarget instance (Figure 6 — the natural result):")
    print(referenced.transform(source).to_text())

    print("\n=== owners and drivers (Example C.2 / Figure 12) ===")
    od = MappingSystem(figure12_problem())
    print("transformation:")
    print(render_program(od.transformation))
    print("\ntarget instance (Figure 13):")
    print(od.transform(figure13_source_instance()).to_text())


if __name__ == "__main__":
    main()
