"""Defining a brand-new mapping problem in the text DSL.

A library-catalogue consolidation that is *not* from the paper: a normalized
catalogue (authors / books / loans, with a nullable borrower) is mapped into
a flat summary relation using a referenced-attribute correspondence for the
borrower's name.  Everything — schemas, correspondences, and the source
instance — is written as plain text and parsed.

Run:  python examples/dsl_workflow.py
"""

from repro import MappingSystem
from repro.dsl import parse_instance, parse_problem, render_program, render_schema_mapping
from repro.model import validate_instance

PROBLEM = """
source schema LIBRARY:
  relation Author (author key, name)
  relation Book (isbn key, title, author -> Author)
  relation Loan (isbn key -> Book, member -> Member)
  relation Member (member key, name, email?)

target schema CATALOGUE:
  relation Entry (isbn key, title, author_name, borrower_name?)

correspondences:
  Book.isbn -> Entry.isbn
  Book.title -> Entry.title
  Book.author > Author.name -> Entry.author_name
  Loan.member > Member.name -> Entry.borrower_name [borrower]
"""

DATA = """
Author: (a1, Knuth), (a2, Abiteboul)
Book: (b1, TAOCP, a1), (b2, Foundations of Databases, a2), (b3, Concrete Math, a1)
Member: (m1, Ada, ada@x), (m2, Alan, null)
Loan: (b1, m1), (b3, m2)
"""


def main() -> None:
    problem = parse_problem(PROBLEM, name="library-catalogue")
    source = parse_instance(DATA, problem.source_schema)
    system = MappingSystem(problem)

    print("schema mapping:")
    print(render_schema_mapping(system.schema_mapping))
    print("\ntransformation:")
    print(render_program(system.transformation))

    output = system.transform(source)
    print("\ncatalogue:")
    print(output.to_text())
    print("\nvalidation:", validate_instance(output).summary())


if __name__ == "__main__":
    main()
