"""Figures 1–3 / Example 2.1: the paper's headline contrast.

Regenerates Figure 3 (novel) and Figure 2 (basic) from the Figure 1 mapping
problem, asserting the exact instances/shapes the paper prints, while timing
the full pipeline (generation + execution).
"""

from repro.core.pipeline import MappingSystem
from repro.core.schema_mapping import BASIC
from repro.exchange.metrics import measure_instance
from repro.model.values import is_labeled_null
from repro.scenarios import cars


def test_figure3_novel_transformation(benchmark, cars3_source):
    def run():
        return MappingSystem(cars.figure1_problem()).transform(cars3_source)

    output = benchmark(run)
    assert output == cars.figure3_expected_target()
    metrics = measure_instance(output)
    benchmark.extra_info["tuples"] = metrics.total_tuples
    benchmark.extra_info["key_violations"] = metrics.key_violations
    assert metrics.ok and metrics.total_tuples == 4 and metrics.null_values == 1


def test_figure2_basic_transformation(benchmark, cars3_source):
    def run():
        return MappingSystem(cars.figure1_problem(), algorithm=BASIC).transform(
            cars3_source
        )

    output = benchmark(run)
    metrics = measure_instance(output)
    benchmark.extra_info["tuples"] = metrics.total_tuples
    benchmark.extra_info["key_violations"] = metrics.key_violations
    # Figure 2's defects: 7 tuples, duplicate key c85, 2 useless P2 tuples.
    assert metrics.total_tuples == 7
    assert metrics.key_violations == 1
    assert metrics.useless_tuples == 2
    owners = [row for row in output.relation("C2") if row[0] == "c85"]
    assert len(owners) == 2
    assert any(is_labeled_null(row[2]) for row in owners)


def test_figure1_schema_mapping_generation(benchmark):
    def run():
        problem = cars.figure1_problem()
        return MappingSystem(problem).schema_mapping

    schema_mapping = benchmark(run)
    assert len(schema_mapping) == 3  # Example 5.2's final schema mapping


def test_figure1_query_generation(benchmark):
    problem = cars.figure1_problem()
    schema_mapping = MappingSystem(problem).schema_mapping

    def run():
        from repro.core.query_generation import generate_queries

        return generate_queries(schema_mapping)

    result = benchmark(run)
    assert len(result.program.rules) == 4  # Example 6.8 after optimization
    assert "OCtmp" in result.program.intermediates
