"""Examples 5.2 and 6.1–6.8: the intermediate stages of both algorithms."""

from repro.core.candidates import generate_candidates
from repro.core.chase import MODIFIED, logical_relations
from repro.core.conflicts import find_all_conflicts
from repro.core.pruning import prune_candidates
from repro.core.query_generation import generate_queries, rewrite_to_unitary
from repro.core.resolution import resolve_key_conflicts
from repro.core.schema_mapping import generate_schema_mapping
from repro.core.skolem import skolemize_schema_mapping
from repro.scenarios import cars


def _figure1():
    return cars.figure1_problem()


def test_example_5_2_candidate_generation(benchmark):
    problem = _figure1()
    source = logical_relations(problem.source_schema, mode=MODIFIED)
    target = logical_relations(problem.target_schema, mode=MODIFIED)

    def run():
        return generate_candidates(source, target, problem.correspondences)

    generation = benchmark(run)
    benchmark.extra_info["skeletons"] = generation.skeleton_count
    benchmark.extra_info["candidates"] = len(generation.candidates)
    assert generation.skeleton_count == 9  # Example 5.2: nine skeletons


def test_example_5_2_pruning(benchmark):
    problem = _figure1()
    source = logical_relations(problem.source_schema, mode=MODIFIED)
    target = logical_relations(problem.target_schema, mode=MODIFIED)
    generation = generate_candidates(source, target, problem.correspondences)

    def run():
        return prune_candidates(generation.candidates)

    result = benchmark(run)
    assert len(result.kept) == 3  # the paper's final schema mapping


def _unitary(problem):
    schema_mapping = generate_schema_mapping(
        problem.source_schema, problem.target_schema, problem.correspondences
    ).schema_mapping
    skolemized = skolemize_schema_mapping(list(schema_mapping), problem.target_schema)
    return rewrite_to_unitary(skolemized)


def test_example_6_1_unitary_rewriting(benchmark):
    problem = _figure1()
    schema_mapping = generate_schema_mapping(
        problem.source_schema, problem.target_schema, problem.correspondences
    ).schema_mapping

    def run():
        skolemized = skolemize_schema_mapping(
            list(schema_mapping), problem.target_schema
        )
        return rewrite_to_unitary(skolemized)

    unitary = benchmark(run)
    assert len(unitary) == 4  # Example 6.1's four unitary mappings


def test_example_6_3_conflict_identification(benchmark):
    problem = _figure1()
    unitary = _unitary(problem)

    def run():
        return find_all_conflicts(unitary, problem.source_schema, problem.target_schema)

    conflicts = benchmark(run)
    assert len(conflicts) == 1  # the soft conflict on C2.person
    assert conflicts[0].attribute == "person"


def test_example_6_4_resolution(benchmark):
    problem = _figure1()
    unitary = _unitary(problem)

    def run():
        return resolve_key_conflicts(
            unitary, problem.source_schema, problem.target_schema
        )

    final, report = benchmark(run)
    disabled = [m for m in final if m.premise.negated]
    assert len(disabled) == 1  # only the null-producing mapping is rewritten


def test_example_6_8_full_query_generation(benchmark):
    problem = _figure1()
    schema_mapping = generate_schema_mapping(
        problem.source_schema, problem.target_schema, problem.correspondences
    ).schema_mapping

    def run():
        return generate_queries(schema_mapping)

    result = benchmark(run)
    heads = sorted(r.head_relation for r in result.program.rules)
    assert heads == ["C2", "C2", "OCtmp", "P2"]  # the paper's final program
