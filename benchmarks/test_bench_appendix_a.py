"""Appendix A: the ten nullable-attribute micro-scenarios."""

import pytest

from repro.core.pipeline import MappingSystem
from repro.model.instance import instance_from_dict
from repro.model.validation import validate_instance
from repro.model.values import NULL
from repro.scenarios.appendix_a import ALL_EXAMPLES, EXPECTED_MAPPINGS


@pytest.mark.parametrize("name", sorted(ALL_EXAMPLES))
def test_appendix_a_pipeline(benchmark, name):
    problem_factory = ALL_EXAMPLES[name]

    def run():
        return MappingSystem(problem_factory()).schema_mapping

    schema_mapping = benchmark(run)
    benchmark.extra_info["mappings"] = len(schema_mapping)
    benchmark.extra_info["expected"] = EXPECTED_MAPPINGS[name]
    assert len(schema_mapping) == EXPECTED_MAPPINGS[name]


def test_appendix_a_transformations_valid(benchmark):
    """All ten desired transformations, on mixed null/non-null data."""

    def run():
        outputs = {}
        for name, factory in ALL_EXAMPLES.items():
            problem = factory()
            system = MappingSystem(problem)
            ps = problem.source_schema.relation("Ps")
            rows = [("p1", "n1", "e1")[: ps.arity], ("p2", "n2", "e2")[: ps.arity]]
            if ps.has_attribute("email") and ps.is_nullable("email"):
                rows.append(("p3", "n3", NULL))
            source = instance_from_dict(problem.source_schema, {"Ps": rows})
            outputs[name] = system.transform(source)
        return outputs

    outputs = benchmark(run)
    for name, output in outputs.items():
        assert validate_instance(output).ok, name
