"""SQL backend: SQLite execution vs the built-in Datalog engine."""

import pytest

from repro.core.pipeline import MappingSystem
from repro.scenarios.cars import figure1_problem
from repro.scenarios.synthetic import cars3_instance
from repro.sqlgen import run_on_sqlite


@pytest.mark.parametrize("size", [100, 400, 1600])
def test_sqlite_execution_scaling(benchmark, size):
    system = MappingSystem(figure1_problem())
    program = system.transformation
    source = cars3_instance(n_persons=size // 2, n_cars=size, seed=size)
    expected = system.transform(source)

    def run():
        return run_on_sqlite(program, source)

    output = benchmark(run)
    benchmark.extra_info["source_tuples"] = source.total_size()
    assert output == expected


def test_sqlite_with_enforced_constraints(benchmark):
    system = MappingSystem(figure1_problem())
    program = system.transformation
    source = cars3_instance(n_persons=200, n_cars=400, seed=17)
    expected = system.transform(source)

    def run():
        return run_on_sqlite(program, source, enforce_constraints=True)

    output = benchmark(run)
    assert output == expected


def test_engine_execution_baseline(benchmark):
    system = MappingSystem(figure1_problem())
    system.transformation
    source = cars3_instance(n_persons=200, n_cars=400, seed=17)

    def run():
        return system.transform(source)

    output = benchmark(run)
    assert output.total_size() > 0
