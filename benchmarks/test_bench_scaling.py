"""Scaling: basic vs novel pipelines on synthetic CARS instances.

The paper reports no measurements; these benchmarks characterize the
implementation: transformation runtime against instance size, and the
quality gap (target size, invented values, key violations) that the novel
algorithms eliminate at every scale.
"""

import pytest

from repro.core.pipeline import MappingSystem
from repro.core.schema_mapping import BASIC, NOVEL
from repro.exchange.metrics import measure_instance
from repro.scenarios.cars import figure1_problem, figure12_problem, figure14_problem
from repro.scenarios.synthetic import cars2_instance, cars3_instance, cars4_instance

SIZES = [100, 400, 1600]


@pytest.mark.parametrize("size", SIZES)
@pytest.mark.parametrize("algorithm", [BASIC, NOVEL])
def test_figure1_transform_scaling(benchmark, size, algorithm):
    system = MappingSystem(figure1_problem(), algorithm=algorithm)
    system.transformation  # exclude generation from the timing
    source = cars3_instance(n_persons=size // 2, n_cars=size, ownership=0.6, seed=size)

    def run():
        return system.transform(source)

    output = benchmark(run)
    metrics = measure_instance(output)
    benchmark.extra_info.update(
        {
            "source_tuples": source.total_size(),
            "target_tuples": metrics.total_tuples,
            "invented": metrics.distinct_invented,
            "key_violations": metrics.key_violations,
        }
    )
    if algorithm == NOVEL:
        assert metrics.ok
        assert metrics.distinct_invented == 0
    else:
        # The basic pipeline invents an owner/person pair per car and
        # violates the key for every owned car.
        assert metrics.distinct_invented == 3 * size
        assert metrics.key_violations > 0


@pytest.mark.parametrize("size", SIZES)
def test_figure12_owner_driver_scaling(benchmark, size):
    system = MappingSystem(figure12_problem())
    system.transformation
    source = cars4_instance(n_persons=size // 2, n_cars=size, seed=size)

    def run():
        return system.transform(source)

    output = benchmark(run)
    metrics = measure_instance(output)
    benchmark.extra_info["target_tuples"] = metrics.total_tuples
    assert metrics.ok
    assert metrics.total_tuples == size  # exactly one tuple per car


@pytest.mark.parametrize("size", SIZES)
def test_figure14_nullable_source_scaling(benchmark, size):
    system = MappingSystem(figure14_problem())
    system.transformation
    source = cars2_instance(n_persons=size // 2, n_cars=size, seed=size)

    def run():
        return system.transform(source)

    output = benchmark(run)
    assert measure_instance(output).ok
    owned = sum(
        1 for row in source.relation("C2") if not repr(row[2]) == "null"
    )
    assert len(output.relation("O3")) == owned


def test_generation_cost_is_data_independent(benchmark):
    """Pipeline generation runs once, independent of instance size."""

    def run():
        system = MappingSystem(figure1_problem())
        return system.transformation

    program = benchmark(run)
    assert len(program.rules) == 4
